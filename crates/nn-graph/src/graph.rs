//! The operator graph: nodes, edges, topological iteration and validation.
//!
//! Graphs are append-only DAGs: a node may only consume outputs of nodes
//! created before it, so insertion order *is* a topological order. This
//! matches how mobile frameworks ingest frozen TensorFlow graphs and keeps
//! scheduling in the simulator trivially correct.

use crate::cost::{op_cost, OpCost};
use crate::op::{Op, OpClass};
use crate::tensor::{DataType, TensorDesc};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node within one [`Graph`]. Indexes are dense and stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Errors raised while constructing a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A referenced input node does not exist (yet).
    UnknownNode(NodeId),
    /// The operator received an incompatible number of inputs.
    ArityMismatch {
        /// Offending op mnemonic.
        op: &'static str,
        /// Expected input count.
        expected: usize,
        /// Received input count.
        got: usize,
    },
    /// Input shapes are incompatible with the operator.
    ShapeMismatch {
        /// Offending op mnemonic.
        op: &'static str,
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(id) => write!(f, "unknown input node {id}"),
            GraphError::ArityMismatch { op, expected, got } => {
                write!(f, "op {op} expects {expected} inputs, got {got}")
            }
            GraphError::ShapeMismatch { op, detail } => {
                write!(f, "shape mismatch in op {op}: {detail}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// One operator instance in the graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Dense id of this node.
    pub id: NodeId,
    /// Descriptive name (layer path, e.g. `"block3/expand"`).
    pub name: String,
    /// The operator and its attributes.
    pub op: Op,
    /// Producer nodes whose outputs feed this node, in argument order.
    pub inputs: Vec<NodeId>,
    /// Output tensor descriptor.
    pub output: TensorDesc,
    /// Pre-computed execution cost for one invocation.
    pub cost: OpCost,
}

impl Node {
    /// The coarse operator class.
    #[must_use]
    pub fn class(&self) -> OpClass {
        self.op.class()
    }
}

/// An operator DAG with shape-inferred, cost-annotated nodes.
///
/// Create graphs through [`GraphBuilder`](crate::builder::GraphBuilder) or
/// the model zoo in [`models`](crate::models).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    name: String,
    input: Option<TensorDesc>,
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph. Used by the builder.
    #[must_use]
    pub(crate) fn empty(name: &str, input: TensorDesc) -> Self {
        Graph { name: name.to_owned(), input: Some(input), nodes: Vec::new() }
    }

    /// Model/graph name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The graph's primary input descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the graph was deserialized without an input (never the case
    /// for graphs produced by this crate).
    #[must_use]
    pub fn input(&self) -> &TensorDesc {
        self.input.as_ref().expect("graph has an input descriptor")
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node lookup.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Nodes in topological (insertion) order.
    pub fn iter(&self) -> std::slice::Iter<'_, Node> {
        self.nodes.iter()
    }

    /// The final node — the graph output.
    ///
    /// # Panics
    ///
    /// Panics on an empty graph.
    #[must_use]
    pub fn output_node(&self) -> &Node {
        self.nodes.last().expect("graph is non-empty")
    }

    /// Total cost of one inference (sum over nodes).
    #[must_use]
    pub fn total_cost(&self) -> OpCost {
        self.nodes.iter().fold(OpCost::default(), |acc, n| acc.combine(n.cost))
    }

    /// Total parameter count (weight elements summed over nodes).
    #[must_use]
    pub fn parameter_count(&self) -> u64 {
        self.nodes.iter().map(|n| n.cost.weight_elements).sum()
    }

    /// Giga-MACs for one inference — the figure of merit vendor marketing
    /// quotes against engine TOPS.
    #[must_use]
    pub fn gmacs(&self) -> f64 {
        self.total_cost().macs as f64 / 1e9
    }

    /// Consumers of each node's output, indexed by producer.
    ///
    /// Used by backends to find partition cut points and live tensors.
    #[must_use]
    pub fn consumers(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for n in &self.nodes {
            for &inp in &n.inputs {
                out[inp.index()].push(n.id);
            }
        }
        out
    }

    /// Count of nodes per op class.
    #[must_use]
    pub fn class_histogram(&self) -> Vec<(OpClass, usize)> {
        let mut map = std::collections::BTreeMap::new();
        for n in &self.nodes {
            *map.entry(n.class()).or_insert(0usize) += 1;
        }
        map.into_iter().collect()
    }

    /// Appends a node with pre-inferred output shape; validates input ids.
    pub(crate) fn push(
        &mut self,
        name: String,
        op: Op,
        inputs: Vec<NodeId>,
        output: TensorDesc,
    ) -> Result<NodeId, GraphError> {
        for &i in &inputs {
            if i.index() >= self.nodes.len() {
                return Err(GraphError::UnknownNode(i));
            }
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("graph under 2^32 nodes"));
        let input_descs: Vec<&TensorDesc> = inputs
            .iter()
            .map(|&i| &self.nodes[i.index()].output)
            .collect();
        let effective_inputs: Vec<&TensorDesc> = if input_descs.is_empty() {
            vec![self.input()]
        } else {
            input_descs
        };
        let cost = op_cost(&op, &effective_inputs, &output.shape);
        self.nodes.push(Node { id, name, op, inputs, output, cost });
        Ok(id)
    }
}

impl<'a> IntoIterator for &'a Graph {
    type Item = &'a Node;
    type IntoIter = std::slice::Iter<'a, Node>;

    fn into_iter(self) -> Self::IntoIter {
        self.nodes.iter()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "graph {} ({} nodes, {:.2} GMACs, {:.1}M params)",
            self.name,
            self.len(),
            self.gmacs(),
            self.parameter_count() as f64 / 1e6
        )?;
        for n in &self.nodes {
            writeln!(f, "  {}: {} {} -> {}", n.id, n.op, n.name, n.output)?;
        }
        Ok(())
    }
}

/// Ensures the graph is internally consistent.
///
/// Checks performed:
/// - every node's inputs reference earlier nodes (DAG property),
/// - element types are consistent along edges,
/// - the graph is connected to its output (no trailing dead nodes other
///   than intentional multi-headed outputs).
///
/// # Errors
///
/// Returns the first inconsistency found.
pub fn validate(graph: &Graph) -> Result<(), GraphError> {
    for node in graph {
        for &inp in &node.inputs {
            if inp.index() >= node.id.index() {
                return Err(GraphError::UnknownNode(inp));
            }
        }
    }
    Ok(())
}

/// Convenience: retype every tensor in the graph to `dtype`, as a vendor
/// toolchain does when deploying a quantized or half-precision model.
///
/// Costs are element-count based so they are unchanged; only byte traffic
/// (derived at simulation time) differs.
#[must_use]
pub fn retype(graph: &Graph, dtype: DataType) -> Graph {
    let mut g = graph.clone();
    if let Some(inp) = g.input.as_mut() {
        inp.dtype = dtype;
    }
    for n in &mut g.nodes {
        n.output.dtype = dtype;
    }
    g
}

/// Returns the largest intermediate activation in elements — a proxy for
/// peak memory, which matters on memory-tiered devices (paper Section 2.1).
#[must_use]
pub fn peak_activation_elements(graph: &Graph) -> u64 {
    graph
        .iter()
        .map(|n| n.output.shape.elements() as u64)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::op::Activation;
    use crate::tensor::Shape;

    fn tiny_graph() -> Graph {
        let mut b = GraphBuilder::new("tiny", Shape::nhwc(8, 8, 3), DataType::F32);
        let c = b.conv2d("c1", b.input_id(), 3, 1, 16, Activation::Relu6);
        let d = b.depthwise_conv2d("d1", c, 3, 1, Activation::Relu6);
        let p = b.global_avg_pool("gap", d);
        let _fc = b.fully_connected("fc", p, 10, Activation::None);
        b.finish()
    }

    #[test]
    fn topo_order_is_insertion_order() {
        let g = tiny_graph();
        assert!(validate(&g).is_ok());
        let ids: Vec<usize> = g.iter().map(|n| n.id.index()).collect();
        // Implicit input node plus four layers.
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn total_cost_sums_nodes() {
        let g = tiny_graph();
        let total = g.total_cost();
        let manual = g.iter().fold(OpCost::default(), |a, n| a.combine(n.cost));
        assert_eq!(total, manual);
        assert!(total.macs > 0);
    }

    #[test]
    fn consumers_inverts_edges() {
        let g = tiny_graph();
        let cons = g.consumers();
        // c1 (node 1, after the implicit input) is consumed by d1.
        assert_eq!(cons[1], vec![NodeId(2)]);
        // final fc consumed by nobody.
        assert!(cons[4].is_empty());
    }

    #[test]
    fn retype_preserves_costs_changes_bytes() {
        let g = tiny_graph();
        let q = retype(&g, DataType::I8);
        assert_eq!(g.total_cost(), q.total_cost());
        assert_eq!(q.input().dtype, DataType::I8);
        let n = q.output_node();
        assert_eq!(n.output.dtype, DataType::I8);
        assert_eq!(
            g.output_node().output.byte_size(),
            4 * n.output.byte_size()
        );
    }

    #[test]
    fn class_histogram_counts() {
        let g = tiny_graph();
        let hist = g.class_histogram();
        let conv = hist.iter().find(|(c, _)| *c == OpClass::Conv).unwrap();
        assert_eq!(conv.1, 1);
        assert_eq!(hist.iter().map(|(_, n)| n).sum::<usize>(), g.len());
    }

    #[test]
    fn display_contains_name_and_nodes() {
        let g = tiny_graph();
        let s = g.to_string();
        assert!(s.contains("graph tiny"));
        assert!(s.contains("conv2d"));
    }

    #[test]
    fn peak_activation_reasonable() {
        let g = tiny_graph();
        // Largest tensor is the first conv output 8*8*16.
        assert_eq!(peak_activation_elements(&g), 8 * 8 * 16);
    }
}
