//! Arithmetic and memory cost model for graph operators.
//!
//! Costs are computed once at graph-construction time from op attributes and
//! input shapes. Element counts (not bytes) are stored for activations and
//! weights so the same graph can be costed under any [`DataType`]: byte
//! traffic scales with precision, arithmetic count does not.

use crate::op::{Op, PoolKind};
use crate::tensor::{DataType, Shape, TensorDesc};
use serde::{Deserialize, Serialize};

/// Cost of executing one operator once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OpCost {
    /// Multiply-accumulate count (0 for non-MAC ops).
    pub macs: u64,
    /// Total floating/fixed point operations (2·MACs for MAC ops, otherwise
    /// an op-specific estimate).
    pub flops: u64,
    /// Activation elements read (sum over inputs).
    pub input_elements: u64,
    /// Activation elements written.
    pub output_elements: u64,
    /// Parameter elements read (weights + biases).
    pub weight_elements: u64,
}

impl OpCost {
    /// Bytes of activation traffic (read + write) at the given precision.
    #[must_use]
    pub fn activation_bytes(&self, dtype: DataType) -> u64 {
        (self.input_elements + self.output_elements) * dtype.size_bytes() as u64
    }

    /// Bytes of parameter traffic at the given precision.
    #[must_use]
    pub fn weight_bytes(&self, dtype: DataType) -> u64 {
        self.weight_elements * dtype.size_bytes() as u64
    }

    /// Total memory traffic in bytes at the given precision.
    #[must_use]
    pub fn total_bytes(&self, dtype: DataType) -> u64 {
        self.activation_bytes(dtype) + self.weight_bytes(dtype)
    }

    /// Arithmetic intensity in ops per byte at the given precision.
    ///
    /// Values below an engine's ridge point mean the op is memory-bound on
    /// that engine — typical for depthwise convolutions, which is why they
    /// underutilize NPUs (one of the motivations for MobileDets re-adding
    /// regular convolutions, per the paper's Section 3.2).
    #[must_use]
    pub fn arithmetic_intensity(&self, dtype: DataType) -> f64 {
        let bytes = self.total_bytes(dtype);
        if bytes == 0 {
            return 0.0;
        }
        self.flops as f64 / bytes as f64
    }

    /// Component-wise sum of two costs.
    #[must_use]
    pub fn combine(self, other: OpCost) -> OpCost {
        OpCost {
            macs: self.macs + other.macs,
            flops: self.flops + other.flops,
            input_elements: self.input_elements + other.input_elements,
            output_elements: self.output_elements + other.output_elements,
            weight_elements: self.weight_elements + other.weight_elements,
        }
    }
}

/// Computes the cost of `op` given its input descriptors and the output
/// shape the graph assigned to it.
///
/// # Panics
///
/// Panics if the inputs are inconsistent with the operator (e.g. a
/// convolution applied to a non-rank-4 tensor); the graph builder validates
/// shapes before calling this, so a panic indicates an IR construction bug.
#[must_use]
pub fn op_cost(op: &Op, inputs: &[&TensorDesc], output: &Shape) -> OpCost {
    let input_elements: u64 = inputs.iter().map(|d| d.shape.elements() as u64).sum();
    let output_elements = output.elements() as u64;
    match *op {
        Op::Conv2d { kernel, out_channels, .. } => {
            let in_c = inputs[0].shape.channels() as u64;
            let spatial = (output.height() * output.width()) as u64;
            let macs = spatial * out_channels as u64 * in_c * (kernel * kernel) as u64;
            let weights = (kernel * kernel) as u64 * in_c * out_channels as u64 + out_channels as u64;
            OpCost { macs, flops: 2 * macs, input_elements, output_elements, weight_elements: weights }
        }
        Op::DepthwiseConv2d { kernel, .. } => {
            let in_c = inputs[0].shape.channels() as u64;
            let spatial = (output.height() * output.width()) as u64;
            let macs = spatial * in_c * (kernel * kernel) as u64;
            let weights = (kernel * kernel) as u64 * in_c + in_c;
            OpCost { macs, flops: 2 * macs, input_elements, output_elements, weight_elements: weights }
        }
        Op::FullyConnected { out_features, .. } => {
            // Rank-3 inputs are time-distributed dense layers (TFLite
            // fully_connected broadcast over the sequence axis); the weight
            // is shared across tokens.
            let in_shape = &inputs[0].shape;
            let (tokens, in_features) = if in_shape.rank() == 3 {
                (in_shape.dims()[1] as u64, in_shape.channels() as u64)
            } else {
                (1, in_shape.elements() as u64)
            };
            let macs = tokens * in_features * out_features as u64;
            let weights = in_features * out_features as u64 + out_features as u64;
            OpCost { macs, flops: 2 * macs, input_elements, output_elements, weight_elements: weights }
        }
        Op::MatMul { k, n } => {
            // Batched: every output element costs k MACs.
            let macs = output_elements * k as u64;
            debug_assert_eq!(output.channels(), n, "MatMul output last dim must be n");
            OpCost { macs, flops: 2 * macs, input_elements, output_elements, weight_elements: 0 }
        }
        Op::Pool { kernel, kind, .. } => {
            let per_elem = match kind {
                PoolKind::Average => (kernel * kernel) as u64,
                PoolKind::Max => (kernel * kernel) as u64,
            };
            OpCost {
                macs: 0,
                flops: output_elements * per_elem,
                input_elements,
                output_elements,
                weight_elements: 0,
            }
        }
        Op::Softmax => OpCost {
            macs: 0,
            // exp + sub + div + two reductions, roughly.
            flops: 5 * output_elements,
            input_elements,
            output_elements,
            weight_elements: 0,
        },
        Op::LayerNorm => {
            let hidden = output.channels() as u64;
            OpCost {
                macs: 0,
                // mean, variance, normalize, scale+shift.
                flops: 8 * output_elements,
                input_elements,
                output_elements,
                weight_elements: 2 * hidden,
            }
        }
        Op::Eltwise { .. } => OpCost {
            macs: 0,
            flops: output_elements,
            input_elements,
            output_elements,
            weight_elements: 0,
        },
        Op::Concat | Op::Reshape { .. } => OpCost {
            macs: 0,
            flops: 0,
            input_elements,
            output_elements,
            weight_elements: 0,
        },
        Op::ResizeBilinear { .. } => OpCost {
            macs: 0,
            // 4 taps + 3 lerps per output element.
            flops: 8 * output_elements,
            input_elements,
            output_elements,
            weight_elements: 0,
        },
        Op::Embedding { vocab, hidden, seq } => OpCost {
            macs: 0,
            flops: 0,
            input_elements: seq as u64,
            output_elements,
            weight_elements: vocab as u64 * hidden as u64,
        },
        Op::Lstm { hidden } => {
            let in_shape = &inputs[0].shape;
            assert_eq!(in_shape.rank(), 3, "LSTM expects [1, seq, features]");
            let seq = in_shape.dims()[1] as u64;
            let in_features = in_shape.channels() as u64;
            let h = hidden as u64;
            // Input + recurrent projections into 4 gates, every timestep.
            let macs = seq * (in_features + h) * 4 * h;
            // Gate nonlinearities and the cell update: ~30 ops per cell.
            let flops = 2 * macs + 30 * seq * h;
            let weights = (in_features + h) * 4 * h + 4 * h;
            OpCost { macs, flops, input_elements, output_elements, weight_elements: weights }
        }
        Op::Nms { anchors, max_detections } => {
            // Per-class score sort + suppression over all anchors: the
            // notoriously slow TFLite-style detection post-processing
            // (cf. the AI-tax analysis the paper cites). The class count
            // comes from the decoded-box input layout [1, anchors, 4+C].
            let classes = inputs[0].shape.channels().saturating_sub(4).max(1) as u64;
            OpCost {
                macs: 0,
                flops: anchors as u64 * classes * 200
                    + (max_detections * max_detections) as u64 * 16,
                input_elements,
                output_elements,
                weight_elements: 0,
            }
        }
        Op::BoxDecode { anchors, classes } => OpCost {
            macs: 0,
            flops: anchors as u64 * (32 + classes as u64),
            input_elements,
            output_elements,
            weight_elements: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Activation, Padding};

    fn desc(dims: &[usize]) -> TensorDesc {
        TensorDesc::new(Shape::new(dims), DataType::F32)
    }

    #[test]
    fn conv_cost() {
        // 3x3 conv, 16 in -> 32 out channels, 112x112 output.
        let op = Op::Conv2d {
            kernel: 3,
            stride: 1,
            out_channels: 32,
            dilation: 1,
            padding: Padding::Same,
            activation: Activation::Relu6,
        };
        let input = desc(&[1, 112, 112, 16]);
        let out = Shape::nhwc(112, 112, 32);
        let c = op_cost(&op, &[&input], &out);
        assert_eq!(c.macs, 112 * 112 * 32 * 16 * 9);
        assert_eq!(c.flops, 2 * c.macs);
        assert_eq!(c.weight_elements, 9 * 16 * 32 + 32);
    }

    #[test]
    fn dwconv_cost_is_channel_linear() {
        let op = Op::DepthwiseConv2d {
            kernel: 3,
            stride: 1,
            dilation: 1,
            padding: Padding::Same,
            activation: Activation::Relu6,
        };
        let input = desc(&[1, 56, 56, 144]);
        let out = Shape::nhwc(56, 56, 144);
        let c = op_cost(&op, &[&input], &out);
        assert_eq!(c.macs, 56 * 56 * 144 * 9);
        // Depthwise conv has far lower arithmetic intensity than dense conv.
        assert!(c.arithmetic_intensity(DataType::F32) < 5.0);
    }

    #[test]
    fn fc_cost() {
        let op = Op::FullyConnected { out_features: 1000, activation: Activation::None };
        let input = desc(&[1, 1280]);
        let out = Shape::new(&[1, 1000]);
        let c = op_cost(&op, &[&input], &out);
        assert_eq!(c.macs, 1280 * 1000);
        assert_eq!(c.weight_elements, 1280 * 1000 + 1000);
    }

    #[test]
    fn matmul_cost() {
        // 4 heads, 384x384 attention scores over head dim 64.
        let op = Op::MatMul { k: 64, n: 384 };
        let a = desc(&[4, 384, 64]);
        let b = desc(&[4, 64, 384]);
        let out = Shape::new(&[4, 384, 384]);
        let c = op_cost(&op, &[&a, &b], &out);
        assert_eq!(c.macs, 4 * 384 * 384 * 64);
        assert_eq!(c.weight_elements, 0);
    }

    #[test]
    fn reshape_moves_data_only() {
        let op = Op::Reshape { shape: Shape::new(&[1, 49, 1280]) };
        let input = desc(&[1, 7, 7, 1280]);
        let out = Shape::new(&[1, 49, 1280]);
        let c = op_cost(&op, &[&input], &out);
        assert_eq!(c.flops, 0);
        assert_eq!(c.input_elements, 7 * 7 * 1280);
        assert!(c.arithmetic_intensity(DataType::F32) < f64::EPSILON);
    }

    #[test]
    fn embedding_weights_dominate() {
        let op = Op::Embedding { vocab: 30522, hidden: 128, seq: 384 };
        let ids = desc(&[1, 384]);
        let out = Shape::seq(384, 128);
        let c = op_cost(&op, &[&ids], &out);
        assert_eq!(c.weight_elements, 30522 * 128);
        assert_eq!(c.output_elements, 384 * 128);
    }

    #[test]
    fn bytes_scale_with_precision() {
        let op = Op::Eltwise { kind: crate::op::EltwiseKind::Add };
        let a = desc(&[1, 8, 8, 8]);
        let b = desc(&[1, 8, 8, 8]);
        let out = Shape::nhwc(8, 8, 8);
        let c = op_cost(&op, &[&a, &b], &out);
        assert_eq!(c.total_bytes(DataType::F32), 4 * c.total_bytes(DataType::I8));
        assert_eq!(c.total_bytes(DataType::F16), 2 * c.total_bytes(DataType::U8));
    }

    #[test]
    fn combine_adds_componentwise() {
        let a = OpCost { macs: 1, flops: 2, input_elements: 3, output_elements: 4, weight_elements: 5 };
        let b = OpCost { macs: 10, flops: 20, input_elements: 30, output_elements: 40, weight_elements: 50 };
        let c = a.combine(b);
        assert_eq!(c.macs, 11);
        assert_eq!(c.flops, 22);
        assert_eq!(c.input_elements, 33);
        assert_eq!(c.output_elements, 44);
        assert_eq!(c.weight_elements, 55);
    }
}
