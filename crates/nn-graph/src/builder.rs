//! Ergonomic construction of operator graphs with shape inference.
//!
//! [`GraphBuilder`] infers every output shape from the op attributes and
//! input shapes, so model definitions read like the layer tables in the
//! papers the reference models come from.

use crate::graph::{Graph, GraphError, NodeId};
use crate::op::{Activation, EltwiseKind, Op, Padding, PoolKind};
use crate::tensor::{DataType, Shape, TensorDesc};

/// Builder for [`Graph`]s.
///
/// The graph input is materialized as an implicit identity node (id 0) so
/// downstream code has a uniform producer for every edge; backends treat it
/// as the input-DMA stage.
///
/// # Examples
///
/// ```
/// use nn_graph::builder::GraphBuilder;
/// use nn_graph::op::Activation;
/// use nn_graph::tensor::{DataType, Shape};
///
/// let mut b = GraphBuilder::new("demo", Shape::nhwc(32, 32, 3), DataType::F32);
/// let c = b.conv2d("stem", b.input_id(), 3, 2, 16, Activation::Relu6);
/// let p = b.global_avg_pool("gap", c);
/// b.fully_connected("head", p, 10, Activation::None);
/// let graph = b.finish();
/// assert_eq!(graph.len(), 4); // input + 3 layers
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    graph: Graph,
    input_id: NodeId,
}

impl GraphBuilder {
    /// Starts a graph with the given input shape and element type.
    #[must_use]
    pub fn new(name: &str, input_shape: Shape, dtype: DataType) -> Self {
        let input = TensorDesc::new(input_shape.clone(), dtype);
        let mut graph = Graph::empty(name, input.clone());
        let input_id = graph
            .push(
                "input".to_owned(),
                Op::Reshape { shape: input_shape },
                Vec::new(),
                input,
            )
            .expect("input node insertion is infallible");
        GraphBuilder { graph, input_id }
    }

    /// Id of the implicit input node.
    #[must_use]
    pub fn input_id(&self) -> NodeId {
        self.input_id
    }

    /// Element type of the graph under construction.
    #[must_use]
    pub fn dtype(&self) -> DataType {
        self.graph.input().dtype
    }

    /// Output descriptor of a previously added node.
    #[must_use]
    pub fn output_of(&self, id: NodeId) -> &TensorDesc {
        &self.graph.node(id).output
    }

    fn push(&mut self, name: &str, op: Op, inputs: Vec<NodeId>, shape: Shape) -> NodeId {
        let dtype = self.dtype();
        self.try_push(name, op, inputs, shape, dtype)
            .unwrap_or_else(|e| panic!("graph construction failed at {name}: {e}"))
    }

    fn try_push(
        &mut self,
        name: &str,
        op: Op,
        inputs: Vec<NodeId>,
        shape: Shape,
        dtype: DataType,
    ) -> Result<NodeId, GraphError> {
        self.graph
            .push(name.to_owned(), op, inputs, TensorDesc::new(shape, dtype))
    }

    /// Adds a 2-D convolution (SAME padding, dilation 1).
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank 4.
    pub fn conv2d(
        &mut self,
        name: &str,
        input: NodeId,
        kernel: usize,
        stride: usize,
        out_channels: usize,
        activation: Activation,
    ) -> NodeId {
        self.conv2d_dilated(name, input, kernel, stride, out_channels, 1, activation)
    }

    /// Adds a dilated (atrous) 2-D convolution with SAME padding.
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d_dilated(
        &mut self,
        name: &str,
        input: NodeId,
        kernel: usize,
        stride: usize,
        out_channels: usize,
        dilation: usize,
        activation: Activation,
    ) -> NodeId {
        let in_shape = &self.output_of(input).shape;
        let h = Padding::Same.output_extent(in_shape.height(), kernel, stride, dilation);
        let w = Padding::Same.output_extent(in_shape.width(), kernel, stride, dilation);
        let op = Op::Conv2d {
            kernel,
            stride,
            out_channels,
            dilation,
            padding: Padding::Same,
            activation,
        };
        self.push(name, op, vec![input], Shape::nhwc(h, w, out_channels))
    }

    /// Adds a depthwise 2-D convolution with SAME padding.
    pub fn depthwise_conv2d(
        &mut self,
        name: &str,
        input: NodeId,
        kernel: usize,
        stride: usize,
        activation: Activation,
    ) -> NodeId {
        let in_shape = self.output_of(input).shape.clone();
        let h = Padding::Same.output_extent(in_shape.height(), kernel, stride, 1);
        let w = Padding::Same.output_extent(in_shape.width(), kernel, stride, 1);
        let op = Op::DepthwiseConv2d {
            kernel,
            stride,
            dilation: 1,
            padding: Padding::Same,
            activation,
        };
        self.push(name, op, vec![input], Shape::nhwc(h, w, in_shape.channels()))
    }

    /// Adds a fully connected layer; flattens the input implicitly.
    pub fn fully_connected(
        &mut self,
        name: &str,
        input: NodeId,
        out_features: usize,
        activation: Activation,
    ) -> NodeId {
        let op = Op::FullyConnected { out_features, activation };
        self.push(name, op, vec![input], Shape::new(&[1, out_features]))
    }

    /// Adds a per-token dense projection for sequence tensors
    /// `[1, seq, in] -> [1, seq, out]` — TFLite's fully-connected broadcast
    /// over the time axis, sharing one weight matrix across tokens.
    pub fn seq_dense(
        &mut self,
        name: &str,
        input: NodeId,
        out_features: usize,
        activation: Activation,
    ) -> NodeId {
        let in_shape = self.output_of(input).shape.clone();
        assert_eq!(in_shape.rank(), 3, "seq_dense expects [1, seq, hidden]");
        let seq = in_shape.dims()[1];
        let op = Op::FullyConnected { out_features, activation };
        self.push(name, op, vec![input], Shape::new(&[1, seq, out_features]))
    }

    /// Adds a batched matrix multiply between two sequence tensors.
    ///
    /// `a: [b, m, k]`, `b: [b, k, n]` -> `[b, m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&mut self, name: &str, a: NodeId, b: NodeId) -> NodeId {
        let sa = self.output_of(a).shape.clone();
        let sb = self.output_of(b).shape.clone();
        assert!(sa.rank() >= 2 && sb.rank() >= 2, "matmul requires rank >= 2");
        let k = sa.channels();
        let kb = sb.dims()[sb.rank() - 2];
        assert_eq!(k, kb, "matmul inner dims disagree: {k} vs {kb}");
        let n = sb.channels();
        let mut out: Vec<usize> = sa.dims().to_vec();
        let rank = out.len();
        out[rank - 1] = n;
        let op = Op::MatMul { k, n };
        self.push(name, op, vec![a, b], Shape::new(&out))
    }

    /// Adds a pooling layer with SAME padding.
    pub fn pool(
        &mut self,
        name: &str,
        input: NodeId,
        kind: PoolKind,
        kernel: usize,
        stride: usize,
    ) -> NodeId {
        let in_shape = self.output_of(input).shape.clone();
        let h = Padding::Same.output_extent(in_shape.height(), kernel, stride, 1);
        let w = Padding::Same.output_extent(in_shape.width(), kernel, stride, 1);
        let op = Op::Pool { kind, kernel, stride };
        self.push(name, op, vec![input], Shape::nhwc(h, w, in_shape.channels()))
    }

    /// Global average pooling to `1x1` spatial extent.
    pub fn global_avg_pool(&mut self, name: &str, input: NodeId) -> NodeId {
        let in_shape = self.output_of(input).shape.clone();
        let k = in_shape.height().max(in_shape.width());
        let op = Op::Pool { kind: PoolKind::Average, kernel: k, stride: k };
        self.push(name, op, vec![input], Shape::nhwc(1, 1, in_shape.channels()))
    }

    /// Softmax over the last dimension.
    pub fn softmax(&mut self, name: &str, input: NodeId) -> NodeId {
        let shape = self.output_of(input).shape.clone();
        self.push(name, Op::Softmax, vec![input], shape)
    }

    /// Layer normalization over the last dimension.
    pub fn layer_norm(&mut self, name: &str, input: NodeId) -> NodeId {
        let shape = self.output_of(input).shape.clone();
        self.push(name, Op::LayerNorm, vec![input], shape)
    }

    /// Element-wise add (residual connection).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&mut self, name: &str, a: NodeId, b: NodeId) -> NodeId {
        let sa = self.output_of(a).shape.clone();
        let sb = self.output_of(b).shape.clone();
        assert_eq!(sa, sb, "eltwise add requires matching shapes");
        self.push(name, Op::Eltwise { kind: EltwiseKind::Add }, vec![a, b], sa)
    }

    /// Element-wise multiply.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul(&mut self, name: &str, a: NodeId, b: NodeId) -> NodeId {
        let sa = self.output_of(a).shape.clone();
        let sb = self.output_of(b).shape.clone();
        assert_eq!(sa, sb, "eltwise mul requires matching shapes");
        self.push(name, Op::Eltwise { kind: EltwiseKind::Mul }, vec![a, b], sa)
    }

    /// Channel-wise concatenation.
    ///
    /// # Panics
    ///
    /// Panics if the inputs disagree on non-channel dimensions.
    pub fn concat(&mut self, name: &str, inputs: &[NodeId]) -> NodeId {
        assert!(!inputs.is_empty(), "concat needs at least one input");
        let first = self.output_of(inputs[0]).shape.clone();
        let mut channels = 0usize;
        for &i in inputs {
            let s = &self.output_of(i).shape;
            assert_eq!(s.rank(), first.rank(), "concat rank mismatch");
            assert_eq!(
                &s.dims()[..s.rank() - 1],
                &first.dims()[..first.rank() - 1],
                "concat non-channel dims must match"
            );
            channels += s.channels();
        }
        let mut dims = first.dims().to_vec();
        let r = dims.len();
        dims[r - 1] = channels;
        self.push(name, Op::Concat, inputs.to_vec(), Shape::new(&dims))
    }

    /// Reshape to an explicit shape.
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn reshape(&mut self, name: &str, input: NodeId, shape: Shape) -> NodeId {
        let in_elems = self.output_of(input).shape.elements();
        assert_eq!(in_elems, shape.elements(), "reshape must preserve element count");
        self.push(name, Op::Reshape { shape: shape.clone() }, vec![input], shape)
    }

    /// Bilinear resize to a new spatial extent.
    pub fn resize_bilinear(
        &mut self,
        name: &str,
        input: NodeId,
        out_h: usize,
        out_w: usize,
    ) -> NodeId {
        let c = self.output_of(input).shape.channels();
        let op = Op::ResizeBilinear { out_h, out_w };
        self.push(name, op, vec![input], Shape::nhwc(out_h, out_w, c))
    }

    /// Embedding lookup from token ids (the implicit graph input) to
    /// `[1, seq, hidden]`.
    pub fn embedding(
        &mut self,
        name: &str,
        input: NodeId,
        vocab: usize,
        hidden: usize,
        seq: usize,
    ) -> NodeId {
        let op = Op::Embedding { vocab, hidden, seq };
        self.push(name, op, vec![input], Shape::seq(seq, hidden))
    }

    /// SSD box decoding producing `[1, anchors, 4 + classes]`.
    pub fn box_decode(
        &mut self,
        name: &str,
        input: NodeId,
        anchors: usize,
        classes: usize,
    ) -> NodeId {
        let op = Op::BoxDecode { anchors, classes };
        self.push(name, op, vec![input], Shape::new(&[1, anchors, 4 + classes]))
    }

    /// Non-maximum suppression producing `[1, max_detections, 6]`
    /// (class, score, 4 box coordinates).
    pub fn nms(
        &mut self,
        name: &str,
        input: NodeId,
        anchors: usize,
        max_detections: usize,
    ) -> NodeId {
        let op = Op::Nms { max_detections, anchors };
        self.push(name, op, vec![input], Shape::new(&[1, max_detections, 6]))
    }

    /// Adds an arbitrary operator with an explicit output shape — the
    /// escape hatch graph-rewrite passes use to rebuild graphs node by
    /// node. The output shape is taken on trust (the op's cost is still
    /// recomputed from the real inputs).
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] when an input id does not exist.
    pub fn push_raw(
        &mut self,
        name: &str,
        op: Op,
        inputs: Vec<NodeId>,
        shape: Shape,
    ) -> Result<NodeId, GraphError> {
        let dtype = self.dtype();
        self.try_push(name, op, inputs, shape, dtype)
    }

    /// Adds an LSTM layer over a `[1, seq, in]` sequence, producing
    /// `[1, seq, hidden]`.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank 3.
    pub fn lstm(&mut self, name: &str, input: NodeId, hidden: usize) -> NodeId {
        let in_shape = self.output_of(input).shape.clone();
        assert_eq!(in_shape.rank(), 3, "lstm expects [1, seq, features]");
        let seq = in_shape.dims()[1];
        self.push(name, Op::Lstm { hidden }, vec![input], Shape::seq(seq, hidden))
    }

    /// Finalizes and returns the graph.
    ///
    /// # Panics
    ///
    /// Panics if only the implicit input node exists (an empty model).
    #[must_use]
    pub fn finish(self) -> Graph {
        assert!(self.graph.len() > 1, "graph must contain at least one operator");
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::validate;

    #[test]
    fn builder_infers_conv_shapes() {
        let mut b = GraphBuilder::new("t", Shape::nhwc(224, 224, 3), DataType::F32);
        let c = b.conv2d("stem", b.input_id(), 3, 2, 32, Activation::Relu6);
        assert_eq!(b.output_of(c).shape, Shape::nhwc(112, 112, 32));
        let d = b.depthwise_conv2d("dw", c, 3, 2, Activation::Relu6);
        assert_eq!(b.output_of(d).shape, Shape::nhwc(56, 56, 32));
        let g = b.finish();
        assert!(validate(&g).is_ok());
    }

    #[test]
    fn concat_sums_channels() {
        let mut b = GraphBuilder::new("t", Shape::nhwc(16, 16, 8), DataType::F32);
        let a = b.conv2d("a", b.input_id(), 1, 1, 4, Activation::None);
        let c = b.conv2d("c", b.input_id(), 1, 1, 12, Activation::None);
        let cat = b.concat("cat", &[a, c]);
        assert_eq!(b.output_of(cat).shape.channels(), 16);
        let _ = b.finish();
    }

    #[test]
    fn matmul_shape_inference() {
        let mut b = GraphBuilder::new("t", Shape::seq(4, 8), DataType::F32);
        let q = b.seq_dense("q", b.input_id(), 16, Activation::None);
        let kx = b.seq_dense("k", b.input_id(), 16, Activation::None);
        let kt = b.reshape("kt", kx, Shape::new(&[1, 16, 4]));
        let scores = b.matmul("scores", q, kt);
        assert_eq!(b.output_of(scores).shape.dims(), &[1, 4, 4]);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "matching shapes")]
    fn add_rejects_mismatched() {
        let mut b = GraphBuilder::new("t", Shape::nhwc(8, 8, 4), DataType::F32);
        let a = b.conv2d("a", b.input_id(), 1, 1, 4, Activation::None);
        let c = b.conv2d("c", b.input_id(), 1, 2, 4, Activation::None);
        let _ = b.add("bad", a, c);
    }

    #[test]
    #[should_panic(expected = "preserve element count")]
    fn reshape_rejects_bad_count() {
        let mut b = GraphBuilder::new("t", Shape::nhwc(4, 4, 4), DataType::F32);
        let _ = b.reshape("bad", b.input_id(), Shape::new(&[1, 5]));
    }

    #[test]
    fn global_pool_reduces_to_1x1() {
        let mut b = GraphBuilder::new("t", Shape::nhwc(7, 7, 1280), DataType::F32);
        let p = b.global_avg_pool("gap", b.input_id());
        assert_eq!(b.output_of(p).shape, Shape::nhwc(1, 1, 1280));
        let _ = b.finish();
    }

    #[test]
    fn resize_changes_spatial_only() {
        let mut b = GraphBuilder::new("t", Shape::nhwc(64, 64, 19), DataType::F32);
        let r = b.resize_bilinear("up", b.input_id(), 512, 512, );
        assert_eq!(b.output_of(r).shape, Shape::nhwc(512, 512, 19));
        let _ = b.finish();
    }

    #[test]
    fn detection_head_shapes() {
        let mut b = GraphBuilder::new("t", Shape::nhwc(19, 19, 576), DataType::F32);
        let raw = b.conv2d("head", b.input_id(), 3, 1, 24, Activation::None);
        let flat = b.reshape("flat", raw, Shape::new(&[1, 19 * 19 * 24]));
        let dec = b.box_decode("decode", flat, 1917, 91);
        assert_eq!(b.output_of(dec).shape.dims(), &[1, 1917, 95]);
        let det = b.nms("nms", dec, 1917, 100);
        assert_eq!(b.output_of(det).shape.dims(), &[1, 100, 6]);
        let _ = b.finish();
    }

    #[test]
    fn dtype_propagates() {
        let mut b = GraphBuilder::new("t", Shape::nhwc(8, 8, 3), DataType::U8);
        let c = b.conv2d("c", b.input_id(), 3, 1, 8, Activation::Relu6);
        assert_eq!(b.output_of(c).dtype, DataType::U8);
        let _ = b.finish();
    }
}
