use nn_graph::models::ModelId;
use std::collections::BTreeMap;

fn main() {
    for id in ModelId::ALL {
        let g = id.build();
        let c = g.total_cost();
        println!("== {:28} nodes={:4} gmacs={:7.3} params={:6.2}M act={:6.1}M flops={:.2}G",
            id.name(), g.len(), g.gmacs(), g.parameter_count() as f64/1e6,
            (c.input_elements+c.output_elements) as f64/1e6, c.flops as f64/1e9);
        let mut by: BTreeMap<_, (u64,u64)> = BTreeMap::new();
        for n in &g {
            let e = by.entry(n.class()).or_insert((0,0));
            e.0 += n.cost.flops;
            e.1 += n.cost.input_elements + n.cost.output_elements + n.cost.weight_elements;
        }
        for (cl,(f,b)) in by {
            println!("   {:16} flops={:8.3}G  elems={:8.2}M", format!("{cl}"), f as f64/1e9, b as f64/1e6);
        }
    }
}
