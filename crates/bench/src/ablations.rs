//! Ablation studies over the design choices DESIGN.md calls out, plus the
//! extension experiments (Appendix E): end-to-end AI tax, energy/battery,
//! and the extended suite.

use crate::cache;
use mlperf_mobile::ai_tax::{host_stage_time, EndToEndSut};
use mlperf_mobile::harness::RunRules;
use mlperf_mobile::report::render_table;
use mlperf_mobile::sut_impl::{DatasetScale, DeviceSut};
use mlperf_mobile::task::{suite, SuiteVersion, Task};
use mobile_backend::backend::{Backend, BackendId};
use mobile_backend::backends::{Enn, Neuron};
use mobile_backend::partition::{partition, FallbackPolicy, PartitionPlan, Target};
use mobile_backend::registry::vendor_backend;
use nn_graph::graph::retype;
use nn_graph::models::ModelId;
use nn_graph::DataType;
use soc_sim::catalog::ChipId;
use soc_sim::engine::EngineKind;
use soc_sim::executor::{estimate_query_secs, run_offline};

/// Ablation 1: the NNAPI HAL cost — per-stage sync overhead swept on the
/// Dimensity 1100 classification deployment (Table 3's mechanism).
#[must_use]
pub fn ablation_sync_overhead() -> String {
    let soc = ChipId::Dimensity1100.build();
    let graph = retype(&ModelId::MobileNetEdgeTpu.build(), DataType::U8);
    let npu = soc.engine_of_kind(EngineKind::Npu).expect("has NPU");
    let mut rows = Vec::new();
    for sync_us in [0.0, 10.0, 40.0, 130.0, 300.0] {
        let plan = PartitionPlan {
            primary: Target { engine: npu, dtype: DataType::U8 },
            fallbacks: vec![Target { engine: soc.cpu(), dtype: DataType::U8 }],
            policy: FallbackPolicy::Merge { window: 2 },
            primary_blocked: Vec::new(),
            sync_overhead_us: sync_us,
            query_overhead_us: 0.0,
        };
        let sched = partition(&graph, &soc, &plan).expect("partitions");
        let ms = estimate_query_secs(&soc, &graph, &sched) * 1e3;
        rows.push(vec![
            format!("{sync_us:.0} us"),
            format!("{}", sched.num_stages()),
            format!("{ms:.3} ms"),
        ]);
    }
    format!(
        "Ablation — per-stage framework sync overhead (classification, Dimensity 1100)\n{}",
        render_table(&["Sync/stage", "Stages", "Latency"], &rows)
    )
}

/// Ablation 2: partition-merge window swept on DeepLab (Exynos 2100) —
/// the scheduler maturity knob behind the ENN 2.0 uplift.
#[must_use]
pub fn ablation_merge_window() -> String {
    let soc = ChipId::Exynos2100.build();
    let graph = retype(&ModelId::DeepLabV3Plus.build(), DataType::I8);
    let npu = soc.engine_of_kind(EngineKind::Npu).expect("has NPU");
    let gpu = soc.engine_of_kind(EngineKind::Gpu).expect("has GPU");
    let mut rows = Vec::new();
    for window in [0usize, 1, 2, 3, 4, 8] {
        let plan = PartitionPlan {
            primary: Target { engine: npu, dtype: DataType::I8 },
            fallbacks: vec![
                Target { engine: gpu, dtype: DataType::F16 },
                Target { engine: soc.cpu(), dtype: DataType::I8 },
            ],
            policy: FallbackPolicy::Merge { window },
            primary_blocked: Vec::new(),
            sync_overhead_us: 10.0,
            query_overhead_us: 0.0,
        };
        let sched = partition(&graph, &soc, &plan).expect("partitions");
        let ms = estimate_query_secs(&soc, &graph, &sched) * 1e3;
        rows.push(vec![
            window.to_string(),
            sched.num_transitions().to_string(),
            format!("{ms:.2} ms"),
        ]);
    }
    format!(
        "Ablation — merge window (segmentation, Exynos 2100)\n{}",
        render_table(&["Window", "Engine transitions", "Latency"], &rows)
    )
}

/// Ablation 3: sticky-fallback depth on the Exynos 990 segmentation split
/// — decomposing the 12x generational story into its scheduling component.
#[must_use]
pub fn ablation_sticky_fallback() -> String {
    let soc = ChipId::Exynos990.build();
    let graph = retype(&ModelId::DeepLabV3Plus.build(), DataType::I8);
    let npu = soc.engine_of_kind(EngineKind::Npu).expect("has NPU");
    let gpu = soc.engine_of_kind(EngineKind::Gpu).expect("has GPU");
    let mut rows = Vec::new();
    for sticky in [0usize, 2, 4, 6, 10, 20] {
        let plan = PartitionPlan {
            primary: Target { engine: npu, dtype: DataType::I8 },
            fallbacks: vec![
                Target { engine: gpu, dtype: DataType::F32 },
                Target { engine: soc.cpu(), dtype: DataType::I8 },
            ],
            policy: FallbackPolicy::PingPong { sticky },
            primary_blocked: Vec::new(),
            sync_overhead_us: 10.0,
            query_overhead_us: 0.0,
        };
        let sched = partition(&graph, &soc, &plan).expect("partitions");
        let gpu_ops: usize = sched
            .stages
            .iter()
            .filter(|s| s.engine == gpu)
            .map(|s| s.nodes.len())
            .sum();
        let ms = estimate_query_secs(&soc, &graph, &sched) * 1e3;
        rows.push(vec![
            sticky.to_string(),
            gpu_ops.to_string(),
            sched.num_transitions().to_string(),
            format!("{ms:.1} ms"),
        ]);
    }
    format!(
        "Ablation — sticky fallback depth (segmentation, Exynos 990, GPU at FP32)\n{}",
        render_table(&["Sticky ops", "Ops dragged to GPU", "Transitions", "Latency"], &rows)
    )
}

/// Ablation 4: inter-IP interconnect bandwidth on the Exynos 990
/// segmentation deployment — the hardware component of the 12x story.
#[must_use]
pub fn ablation_interconnect() -> String {
    let base = ChipId::Exynos990.build();
    let reference = ModelId::DeepLabV3Plus.build();
    let mut rows = Vec::new();
    for gbps in [0.18, 0.5, 2.0, 10.0] {
        let mut soc = base.clone();
        soc.interconnect.transfer_gbps = gbps;
        let dep = Enn.compile(&reference, &soc).expect("compiles");
        rows.push(vec![
            format!("{gbps:.2} GB/s"),
            format!("{:.1} ms", dep.estimate_ms(&soc)),
        ]);
    }
    format!(
        "Ablation — inter-IP transfer bandwidth (segmentation, Exynos 990)\n{}",
        render_table(&["Bandwidth", "Latency"], &rows)
    )
}

/// Ablation 5: offline batch size (overhead amortization) on the Exynos
/// 990 classification ALP configuration.
#[must_use]
pub fn ablation_batch_size() -> String {
    let soc = ChipId::Exynos990.build();
    let dep = Enn
        .compile(&ModelId::MobileNetEdgeTpu.build(), &soc)
        .expect("compiles");
    let mut rows = Vec::new();
    for batch in [1usize, 2, 8, 32, 128] {
        let mut state = soc.new_state(22.0);
        let r = run_offline(&soc, &dep.graph, &dep.offline_streams, &mut state, 8192, batch);
        rows.push(vec![batch.to_string(), format!("{:.1} FPS", r.throughput_fps)]);
    }
    format!(
        "Ablation — offline batch size (classification, Exynos 990, NPU+CPU)\n{}",
        render_table(&["Batch", "Throughput"], &rows)
    )
}

/// End-to-end "AI tax" (Appendix E): fraction of user-perceived latency
/// spent outside the model graph.
#[must_use]
pub fn end_to_end_tax() -> String {
    let mut rows = Vec::new();
    for chip in [ChipId::Dimensity1100, ChipId::Snapdragon888] {
        let soc = cache().soc(chip);
        for def in suite(SuiteVersion::V1_0) {
            let backend =
                mlperf_mobile::app::submission_backend(chip, SuiteVersion::V1_0, def.task);
            let Ok(dep) = cache().deployment(chip, backend, def.model) else {
                continue;
            };
            let model_ms = dep.estimate_ms(&soc);
            let (pre, post) = host_stage_time(def.task, &soc);
            let host_ms = (pre + post).as_millis_f64();
            rows.push(vec![
                chip.to_string(),
                def.task.to_string(),
                format!("{model_ms:.2} ms"),
                format!("{host_ms:.2} ms"),
                format!("{:.1}%", 100.0 * host_ms / (host_ms + model_ms)),
            ]);
        }
    }
    format!(
        "End-to-end AI tax (Appendix E extension; cf. Buch et al.)\n{}",
        render_table(&["Chipset", "Task", "Model", "Pre+post", "Tax"], &rows)
    )
}

/// The extended suite (Appendix E): speech RNN-T and super-resolution on
/// the v1.0 flagships.
#[must_use]
pub fn extensions_report() -> String {
    let mut rows = Vec::new();
    for chip in [ChipId::Dimensity1100, ChipId::Exynos2100, ChipId::Snapdragon888] {
        let soc = cache().soc(chip);
        let backend = vendor_backend(&soc).expect("vendor backend");
        for def in mlperf_mobile::extensions::extension_defs() {
            let Ok(dep) = cache().deployment(chip, backend, def.model) else {
                continue;
            };
            rows.push(vec![
                chip.to_string(),
                def.task.to_string(),
                format!("{:.2} ms", dep.estimate_ms(&soc)),
                dep.scheme.to_string(),
                dep.accelerator_summary(&soc),
                format!("{:.3} {}", def.quality_target(), def.task.metric_name()),
            ]);
        }
    }
    format!(
        "Suite extensions (Appendix E): speech RNN-T + 2x super-resolution\n{}\nspeech lands on the GPU at FP16 (LSTMs unsupported by the NPUs — the Insight 5 mechanism); super-resolution stays INT8 on the accelerators\n",
        render_table(&["Chipset", "Task", "Latency", "Numerics", "Engines", "Quality gate"], &rows)
    )
}

/// Power / battery (Appendix E): energy per query and the power-saving
/// hazard the full-charge run rule avoids.
#[must_use]
pub fn power_report() -> String {
    let mut rows = Vec::new();
    for chip in [ChipId::Exynos2100, ChipId::Snapdragon888] {
        for def in suite(SuiteVersion::V1_0) {
            let backend =
                mlperf_mobile::app::submission_backend(chip, SuiteVersion::V1_0, def.task);
            let Ok(dep) = cache().deployment(chip, backend, def.model) else {
                continue;
            };
            let score = crate::run_scored(
                chip,
                cache().soc(chip),
                dep,
                &def,
                &RunRules::smoke_test(),
                DatasetScale::Reduced(48),
                false,
            );
            rows.push(vec![
                chip.to_string(),
                def.task.to_string(),
                format!("{:.2} mJ", score.joules_per_query * 1e3),
                format!("{:.2} ms", score.latency_ms()),
                format!("{:.2} W avg", score.joules_per_query / (score.latency_ms() / 1e3)),
            ]);
        }
    }
    // Low-battery comparison on one configuration.
    let mut low_rules = RunRules::smoke_test();
    low_rules.battery_soc = Some(0.15);
    let def = suite(SuiteVersion::V1_0).remove(0);
    let soc = cache().soc(ChipId::Snapdragon888);
    let dep = cache()
        .deployment(ChipId::Snapdragon888, BackendId::Snpe, def.model)
        .expect("SNPE compiles classification");
    let full = crate::run_scored(
        ChipId::Snapdragon888,
        soc.clone(),
        dep.clone(),
        &def,
        &RunRules::smoke_test(),
        DatasetScale::Reduced(48),
        false,
    );
    let low = crate::run_scored(
        ChipId::Snapdragon888,
        soc,
        dep,
        &def,
        &low_rules,
        DatasetScale::Reduced(48),
        false,
    );
    format!(
        "Power / energy (Appendix E extension; most chipsets cap at ~3 W TDP)\n{}\nbattery hazard: classification p90 on a full charge {:.2} ms vs {:.2} ms at 15% charge (power-saving mode entered: {}) — why the rules recommend a full charge\n",
        render_table(&["Chipset", "Task", "Energy/query", "p90", "Avg power"], &rows),
        full.latency_ms(),
        low.latency_ms(),
        low.power_saving_entered,
    )
}

/// Every ablation and extension artifact.
#[must_use]
pub fn all_ablations() -> String {
    [
        ablation_sync_overhead(),
        ablation_merge_window(),
        ablation_sticky_fallback(),
        ablation_interconnect(),
        ablation_batch_size(),
        end_to_end_tax(),
        extensions_report(),
        power_report(),
    ]
    .join("\n")
}

// Referenced for the doc table; avoids an unused-import lint when the
// harness-only path is compiled without tests.
#[allow(dead_code)]
fn _uses(_: &DeviceSut, _: &EndToEndSut, _: Neuron, _: Task) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_sweep_is_monotone() {
        let text = ablation_sync_overhead();
        assert!(text.contains("0 us"));
        assert!(text.contains("300 us"));
    }

    #[test]
    fn sticky_sweep_renders() {
        let text = ablation_sticky_fallback();
        assert!(text.lines().count() > 6, "{text}");
    }

    #[test]
    fn extensions_report_shows_fp16_speech() {
        let text = extensions_report();
        assert!(text.contains("Speech recognition"));
        assert!(text.contains("FP16"));
        assert!(text.contains("Super-resolution"));
    }

    #[test]
    fn tax_report_has_percentages() {
        let text = end_to_end_tax();
        assert!(text.contains('%'));
    }
}
