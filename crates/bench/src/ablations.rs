//! Ablation studies over the design choices DESIGN.md calls out, plus the
//! extension experiments (Appendix E): end-to-end AI tax, energy/battery,
//! and the extended suite.
//!
//! Every report here runs through the *sweep engine*: knob sweeps re-lower
//! only the affected plan arrays ([`SweepPlan`]/[`PlanDelta`]), equal
//! schedules at adjacent knob values share one lowering, batched sweeps
//! reuse one [`OfflinePlan`], and independent cells evaluate under
//! [`par_map`] with order-preserving assembly. The [`serial`] module keeps
//! the straight-line full-recompile implementations as the oracle: the
//! byte-identity tests below assert every report's output matches them
//! exactly, and `bench_ablations` measures the speedup against them.

use crate::{cache, worker_threads};
use mlperf_mobile::ai_tax::host_stage_time;
use mlperf_mobile::harness::RunRules;
use mlperf_mobile::metrics::metrics;
use mlperf_mobile::report::render_table;
use mlperf_mobile::runner::par_map;
use mlperf_mobile::sut_impl::DatasetScale;
use mlperf_mobile::task::{suite, BenchmarkDef, SuiteVersion};
use mobile_backend::backend::{Backend, BackendId};
use mobile_backend::backends::Enn;
use mobile_backend::partition::{partition, FallbackPolicy, PartitionPlan, Target};
use mobile_backend::registry::vendor_backend;
use nn_graph::graph::retype;
use nn_graph::models::ModelId;
use nn_graph::{DataType, Graph};
use soc_sim::catalog::ChipId;
use soc_sim::engine::EngineKind;
use soc_sim::executor::estimate_query_secs;
use soc_sim::plan::{OfflinePlan, PlanDelta, SweepPlan};
use soc_sim::schedule::Schedule;
use soc_sim::soc::Soc;
use std::sync::Mutex;

/// Estimates each schedule's single-query latency (ms), lowering each
/// *distinct* schedule once: adjacent knob values often saturate to the
/// same placement, and an equal schedule on the same `(soc, graph)` is
/// bit-identical to re-lower, so its estimate is reused outright. Hits
/// and misses feed the sweep-cache counters in the [`metrics`] registry.
fn sweep_estimates(soc: &Soc, graph: &Graph, scheds: &[Schedule]) -> Vec<f64> {
    let mut seen: Vec<(usize, f64)> = Vec::new();
    let mut out = Vec::with_capacity(scheds.len());
    for (i, sched) in scheds.iter().enumerate() {
        let ms = match seen.iter().find(|&&(j, _)| scheds[j] == *sched) {
            Some(&(_, ms)) => {
                metrics().record_sweep_hit();
                ms
            }
            None => {
                metrics().record_sweep_miss();
                let ms = estimate_query_secs(soc, graph, sched) * 1e3;
                seen.push((i, ms));
                ms
            }
        };
        out.push(ms);
    }
    out
}

/// Ablation 1: the NNAPI HAL cost — per-stage sync overhead swept on the
/// Dimensity 1100 classification deployment (Table 3's mechanism).
#[must_use]
pub fn ablation_sync_overhead() -> String {
    let soc = ChipId::Dimensity1100.build();
    let graph = retype(&ModelId::MobileNetEdgeTpu.build(), DataType::U8);
    let npu = soc.engine_of_kind(EngineKind::Npu).expect("has NPU");
    let sync_values = [0.0, 10.0, 40.0, 130.0, 300.0];
    // The sync knob is a per-stage *annotation*: the partitioner never
    // reads it when placing ops, so one partition serves the whole sweep
    // and each knob re-lowers the overhead arrays in O(stages).
    let plan = PartitionPlan {
        primary: Target { engine: npu, dtype: DataType::U8 },
        fallbacks: vec![Target { engine: soc.cpu(), dtype: DataType::U8 }],
        policy: FallbackPolicy::Merge { window: 2 },
        primary_blocked: Vec::new(),
        sync_overhead_us: sync_values[0],
        query_overhead_us: 0.0,
    };
    let sched = partition(&graph, &soc, &plan).expect("partitions");
    let sweep = SweepPlan::new(&soc, &graph, &sched);
    metrics().record_sweep_miss();
    let rows = par_map(&sync_values, worker_threads(), |&sync_us| {
        metrics().record_sweep_hit();
        let ms = sweep.estimate_query_secs(PlanDelta::SyncOverheadUs(sync_us)) * 1e3;
        vec![
            format!("{sync_us:.0} us"),
            format!("{}", sched.num_stages()),
            format!("{ms:.3} ms"),
        ]
    });
    format!(
        "Ablation — per-stage framework sync overhead (classification, Dimensity 1100)\n{}",
        render_table(&["Sync/stage", "Stages", "Latency"], &rows)
    )
}

/// Ablation 2: partition-merge window swept on DeepLab (Exynos 2100) —
/// the scheduler maturity knob behind the ENN 2.0 uplift.
#[must_use]
pub fn ablation_merge_window() -> String {
    let soc = ChipId::Exynos2100.build();
    let graph = retype(&ModelId::DeepLabV3Plus.build(), DataType::I8);
    let npu = soc.engine_of_kind(EngineKind::Npu).expect("has NPU");
    let gpu = soc.engine_of_kind(EngineKind::Gpu).expect("has GPU");
    let windows = [0usize, 1, 2, 3, 4, 8];
    // The window changes placement, so each knob partitions — in
    // parallel — but equal schedules share one lowering.
    let scheds = par_map(&windows, worker_threads(), |&window| {
        let plan = PartitionPlan {
            primary: Target { engine: npu, dtype: DataType::I8 },
            fallbacks: vec![
                Target { engine: gpu, dtype: DataType::F16 },
                Target { engine: soc.cpu(), dtype: DataType::I8 },
            ],
            policy: FallbackPolicy::Merge { window },
            primary_blocked: Vec::new(),
            sync_overhead_us: 10.0,
            query_overhead_us: 0.0,
        };
        partition(&graph, &soc, &plan).expect("partitions")
    });
    let estimates = sweep_estimates(&soc, &graph, &scheds);
    let rows: Vec<Vec<String>> = windows
        .iter()
        .zip(&scheds)
        .zip(&estimates)
        .map(|((window, sched), ms)| {
            vec![
                window.to_string(),
                sched.num_transitions().to_string(),
                format!("{ms:.2} ms"),
            ]
        })
        .collect();
    format!(
        "Ablation — merge window (segmentation, Exynos 2100)\n{}",
        render_table(&["Window", "Engine transitions", "Latency"], &rows)
    )
}

/// Ablation 3: sticky-fallback depth on the Exynos 990 segmentation split
/// — decomposing the 12x generational story into its scheduling component.
#[must_use]
pub fn ablation_sticky_fallback() -> String {
    let soc = ChipId::Exynos990.build();
    let graph = retype(&ModelId::DeepLabV3Plus.build(), DataType::I8);
    let npu = soc.engine_of_kind(EngineKind::Npu).expect("has NPU");
    let gpu = soc.engine_of_kind(EngineKind::Gpu).expect("has GPU");
    let stickies = [0usize, 2, 4, 6, 10, 20];
    let scheds = par_map(&stickies, worker_threads(), |&sticky| {
        let plan = PartitionPlan {
            primary: Target { engine: npu, dtype: DataType::I8 },
            fallbacks: vec![
                Target { engine: gpu, dtype: DataType::F32 },
                Target { engine: soc.cpu(), dtype: DataType::I8 },
            ],
            policy: FallbackPolicy::PingPong { sticky },
            primary_blocked: Vec::new(),
            sync_overhead_us: 10.0,
            query_overhead_us: 0.0,
        };
        partition(&graph, &soc, &plan).expect("partitions")
    });
    let estimates = sweep_estimates(&soc, &graph, &scheds);
    let rows: Vec<Vec<String>> = stickies
        .iter()
        .zip(&scheds)
        .zip(&estimates)
        .map(|((sticky, sched), ms)| {
            let gpu_ops: usize = sched
                .stages
                .iter()
                .filter(|s| s.engine == gpu)
                .map(|s| s.nodes.len())
                .sum();
            vec![
                sticky.to_string(),
                gpu_ops.to_string(),
                sched.num_transitions().to_string(),
                format!("{ms:.1} ms"),
            ]
        })
        .collect();
    format!(
        "Ablation — sticky fallback depth (segmentation, Exynos 990, GPU at FP32)\n{}",
        render_table(&["Sticky ops", "Ops dragged to GPU", "Transitions", "Latency"], &rows)
    )
}

/// Ablation 4: inter-IP interconnect bandwidth on the Exynos 990
/// segmentation deployment — the hardware component of the 12x story.
#[must_use]
pub fn ablation_interconnect() -> String {
    let base = ChipId::Exynos990.build();
    let reference = ModelId::DeepLabV3Plus.build();
    let gbps_values = [0.18, 0.5, 2.0, 10.0];
    // Bandwidth changes which candidate placement *wins* (the backends
    // rank candidates by estimated latency), so each knob still compiles
    // — in parallel. But when two knobs choose the same schedule, the
    // later estimate is a bandwidth delta on the earlier lowering.
    let compiled = par_map(&gbps_values, worker_threads(), |&gbps| {
        let mut soc = base.clone();
        soc.interconnect.transfer_gbps = gbps;
        let dep = Enn.compile(&reference, &soc).expect("compiles");
        (soc, dep)
    });
    let mut lowered: Vec<(usize, SweepPlan)> = Vec::new();
    let mut rows = Vec::new();
    for (i, ((soc, dep), &gbps)) in compiled.iter().zip(&gbps_values).enumerate() {
        let hit = lowered
            .iter()
            .find(|(j, _)| compiled[*j].1.schedule == dep.schedule)
            .map(|(_, sweep)| sweep);
        let ms = if let Some(sweep) = hit {
            metrics().record_sweep_hit();
            sweep.estimate_query_secs(PlanDelta::InterconnectGbps(gbps)) * 1e3
        } else {
            metrics().record_sweep_miss();
            let sweep = SweepPlan::new(soc, &dep.graph, &dep.schedule);
            let ms = sweep.estimate_query_secs(PlanDelta::InterconnectGbps(gbps)) * 1e3;
            lowered.push((i, sweep));
            ms
        };
        rows.push(vec![format!("{gbps:.2} GB/s"), format!("{ms:.1} ms")]);
    }
    format!(
        "Ablation — inter-IP transfer bandwidth (segmentation, Exynos 990)\n{}",
        render_table(&["Bandwidth", "Latency"], &rows)
    )
}

/// Ablation 5: offline batch size (overhead amortization) on the Exynos
/// 990 classification ALP configuration.
#[must_use]
pub fn ablation_batch_size() -> String {
    let soc = ChipId::Exynos990.build();
    let dep = Enn
        .compile(&ModelId::MobileNetEdgeTpu.build(), &soc)
        .expect("compiles");
    // The batch size is an execution argument, not a lowering input: one
    // offline plan serves the whole sweep (the serial path re-lowered
    // every stream per knob), and the independent knobs run in parallel
    // on their own thermal states.
    let plan = OfflinePlan::new(&soc, &dep.graph, &dep.offline_streams);
    metrics().record_sweep_miss();
    let rows = par_map(&[1usize, 2, 8, 32, 128], worker_threads(), |&batch| {
        metrics().record_sweep_hit();
        let mut state = soc.new_state(22.0);
        let r = plan.execute(&mut state, 8192, batch);
        vec![batch.to_string(), format!("{:.1} FPS", r.throughput_fps)]
    });
    format!(
        "Ablation — offline batch size (classification, Exynos 990, NPU+CPU)\n{}",
        render_table(&["Batch", "Throughput"], &rows)
    )
}

/// End-to-end "AI tax" (Appendix E): fraction of user-perceived latency
/// spent outside the model graph.
#[must_use]
pub fn end_to_end_tax() -> String {
    let chips = [ChipId::Dimensity1100, ChipId::Snapdragon888];
    let cells: Vec<(ChipId, BenchmarkDef)> = chips
        .iter()
        .flat_map(|&chip| suite(SuiteVersion::V1_0).into_iter().map(move |def| (chip, def)))
        .collect();
    let rows: Vec<Vec<String>> = par_map(
        &cells,
        worker_threads(),
        |(chip, def): &(ChipId, BenchmarkDef)| -> Option<Vec<String>> {
            let soc = cache().soc(*chip);
            let backend =
                mlperf_mobile::app::submission_backend(*chip, SuiteVersion::V1_0, def.task);
            let dep = cache().deployment(*chip, backend, def.model).ok()?;
            let model_ms = dep.estimate_ms(&soc);
            let (pre, post) = host_stage_time(def.task, &soc);
            let host_ms = (pre + post).as_millis_f64();
            Some(vec![
                chip.to_string(),
                def.task.to_string(),
                format!("{model_ms:.2} ms"),
                format!("{host_ms:.2} ms"),
                format!("{:.1}%", 100.0 * host_ms / (host_ms + model_ms)),
            ])
        },
    )
    .into_iter()
    .flatten()
    .collect();
    format!(
        "End-to-end AI tax (Appendix E extension; cf. Buch et al.)\n{}",
        render_table(&["Chipset", "Task", "Model", "Pre+post", "Tax"], &rows)
    )
}

/// The extended suite (Appendix E): speech RNN-T and super-resolution on
/// the v1.0 flagships.
#[must_use]
pub fn extensions_report() -> String {
    let chips = [ChipId::Dimensity1100, ChipId::Exynos2100, ChipId::Snapdragon888];
    let cells: Vec<(ChipId, BenchmarkDef)> = chips
        .iter()
        .flat_map(|&chip| {
            mlperf_mobile::extensions::extension_defs().into_iter().map(move |def| (chip, def))
        })
        .collect();
    let rows: Vec<Vec<String>> = par_map(
        &cells,
        worker_threads(),
        |(chip, def): &(ChipId, BenchmarkDef)| -> Option<Vec<String>> {
            let soc = cache().soc(*chip);
            let backend = vendor_backend(&soc).expect("vendor backend");
            let dep = cache().deployment(*chip, backend, def.model).ok()?;
            Some(vec![
                chip.to_string(),
                def.task.to_string(),
                format!("{:.2} ms", dep.estimate_ms(&soc)),
                dep.scheme.to_string(),
                dep.accelerator_summary(&soc),
                format!("{:.3} {}", def.quality_target(), def.task.metric_name()),
            ])
        },
    )
    .into_iter()
    .flatten()
    .collect();
    format!(
        "Suite extensions (Appendix E): speech RNN-T + 2x super-resolution\n{}\nspeech lands on the GPU at FP16 (LSTMs unsupported by the NPUs — the Insight 5 mechanism); super-resolution stays INT8 on the accelerators\n",
        render_table(&["Chipset", "Task", "Latency", "Numerics", "Engines", "Quality gate"], &rows)
    )
}

/// Power / battery (Appendix E): energy per query and the power-saving
/// hazard the full-charge run rule avoids.
#[must_use]
pub fn power_report() -> String {
    let chips = [ChipId::Exynos2100, ChipId::Snapdragon888];
    let cells: Vec<(ChipId, BenchmarkDef)> = chips
        .iter()
        .flat_map(|&chip| suite(SuiteVersion::V1_0).into_iter().map(move |def| (chip, def)))
        .collect();
    // Independent (chip, task) cells run in parallel through the shared
    // plan cache; the accuracy half of each run hits the process-wide
    // sweep cache whenever another cell already scored the same
    // (task, scale, seed, quality) input.
    let rows: Vec<Vec<String>> = par_map(
        &cells,
        worker_threads(),
        |(chip, def): &(ChipId, BenchmarkDef)| -> Option<Vec<String>> {
            let backend =
                mlperf_mobile::app::submission_backend(*chip, SuiteVersion::V1_0, def.task);
            let planned = cache().planned(*chip, backend, def.model).ok()?;
            let score = crate::run_scored_planned(
                *chip,
                cache().soc(*chip),
                planned,
                def,
                &RunRules::smoke_test(),
                DatasetScale::Reduced(48),
                false,
            );
            Some(vec![
                chip.to_string(),
                def.task.to_string(),
                format!("{:.2} mJ", score.joules_per_query * 1e3),
                format!("{:.2} ms", score.latency_ms()),
                format!("{:.2} W avg", score.joules_per_query / (score.latency_ms() / 1e3)),
            ])
        },
    )
    .into_iter()
    .flatten()
    .collect();
    // Low-battery comparison on one configuration.
    let mut low_rules = RunRules::smoke_test();
    low_rules.battery_soc = Some(0.15);
    let def = suite(SuiteVersion::V1_0).remove(0);
    let soc = cache().soc(ChipId::Snapdragon888);
    let planned = cache()
        .planned(ChipId::Snapdragon888, BackendId::Snpe, def.model)
        .expect("SNPE compiles classification");
    let full = crate::run_scored_planned(
        ChipId::Snapdragon888,
        soc.clone(),
        planned.clone(),
        &def,
        &RunRules::smoke_test(),
        DatasetScale::Reduced(48),
        false,
    );
    let low = crate::run_scored_planned(
        ChipId::Snapdragon888,
        soc,
        planned,
        &def,
        &low_rules,
        DatasetScale::Reduced(48),
        false,
    );
    format!(
        "Power / energy (Appendix E extension; most chipsets cap at ~3 W TDP)\n{}\nbattery hazard: classification p90 on a full charge {:.2} ms vs {:.2} ms at 15% charge (power-saving mode entered: {}) — why the rules recommend a full charge\n",
        render_table(&["Chipset", "Task", "Energy/query", "p90", "Avg power"], &rows),
        full.latency_ms(),
        low.latency_ms(),
        low.power_saving_entered,
    )
}

/// Per-sub-report wall-clock of the most recent [`all_ablations`] call,
/// drained by `reproduce` into `BENCH_suite.json`'s ablation breakdown.
static BREAKDOWN: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Removes and returns the per-sub-report wall-clock entries the last
/// [`all_ablations`] call recorded (report order).
///
/// # Panics
///
/// Panics if the breakdown mutex was poisoned by a panicking worker.
#[must_use]
pub fn take_ablation_breakdown() -> Vec<(String, f64)> {
    std::mem::take(&mut *BREAKDOWN.lock().unwrap())
}

/// Every ablation and extension artifact, each sub-report individually
/// timed (see [`take_ablation_breakdown`]) and evaluated in parallel with
/// order-preserving assembly.
#[must_use]
pub fn all_ablations() -> String {
    type SubReport = (&'static str, fn() -> String);
    let parts: [SubReport; 8] = [
        ("sync_overhead", ablation_sync_overhead),
        ("merge_window", ablation_merge_window),
        ("sticky_fallback", ablation_sticky_fallback),
        ("interconnect", ablation_interconnect),
        ("batch_size", ablation_batch_size),
        ("end_to_end_tax", end_to_end_tax),
        ("extensions", extensions_report),
        ("power", power_report),
    ];
    let timed = par_map(&parts, worker_threads(), |&(name, f)| {
        let t = std::time::Instant::now();
        let text = f();
        (name.to_owned(), text, t.elapsed().as_secs_f64() * 1e3)
    });
    let mut breakdown = Vec::with_capacity(timed.len());
    let mut texts = Vec::with_capacity(timed.len());
    for (name, text, wall_ms) in timed {
        breakdown.push((name, wall_ms));
        texts.push(text);
    }
    *BREAKDOWN.lock().unwrap() = breakdown;
    texts.join("\n")
}

/// The pre-sweep-engine implementations, verbatim: every knob fully
/// re-partitions and re-lowers, every cell evaluates in sequence, and
/// every harness run recompiles its plans.
///
/// Kept as the reference the sweep engine is held to: the byte-identity
/// tests assert each parallel/delta-lowered report above renders the
/// exact same string, and `bench_ablations` measures the speedup against
/// these.
pub mod serial {
    use super::{
        cache, host_stage_time, partition, render_table, retype, suite, vendor_backend, Backend,
        BackendId, ChipId, DataType, DatasetScale, Enn, EngineKind, FallbackPolicy, ModelId,
        PartitionPlan, RunRules, SuiteVersion, Target,
    };
    use soc_sim::executor::{estimate_query_secs, run_offline};

    /// Serial [`super::ablation_sync_overhead`]: partitions and lowers per
    /// knob.
    #[must_use]
    pub fn ablation_sync_overhead() -> String {
        let soc = ChipId::Dimensity1100.build();
        let graph = retype(&ModelId::MobileNetEdgeTpu.build(), DataType::U8);
        let npu = soc.engine_of_kind(EngineKind::Npu).expect("has NPU");
        let mut rows = Vec::new();
        for sync_us in [0.0, 10.0, 40.0, 130.0, 300.0] {
            let plan = PartitionPlan {
                primary: Target { engine: npu, dtype: DataType::U8 },
                fallbacks: vec![Target { engine: soc.cpu(), dtype: DataType::U8 }],
                policy: FallbackPolicy::Merge { window: 2 },
                primary_blocked: Vec::new(),
                sync_overhead_us: sync_us,
                query_overhead_us: 0.0,
            };
            let sched = partition(&graph, &soc, &plan).expect("partitions");
            let ms = estimate_query_secs(&soc, &graph, &sched) * 1e3;
            rows.push(vec![
                format!("{sync_us:.0} us"),
                format!("{}", sched.num_stages()),
                format!("{ms:.3} ms"),
            ]);
        }
        format!(
            "Ablation — per-stage framework sync overhead (classification, Dimensity 1100)\n{}",
            render_table(&["Sync/stage", "Stages", "Latency"], &rows)
        )
    }

    /// Serial [`super::ablation_merge_window`].
    #[must_use]
    pub fn ablation_merge_window() -> String {
        let soc = ChipId::Exynos2100.build();
        let graph = retype(&ModelId::DeepLabV3Plus.build(), DataType::I8);
        let npu = soc.engine_of_kind(EngineKind::Npu).expect("has NPU");
        let gpu = soc.engine_of_kind(EngineKind::Gpu).expect("has GPU");
        let mut rows = Vec::new();
        for window in [0usize, 1, 2, 3, 4, 8] {
            let plan = PartitionPlan {
                primary: Target { engine: npu, dtype: DataType::I8 },
                fallbacks: vec![
                    Target { engine: gpu, dtype: DataType::F16 },
                    Target { engine: soc.cpu(), dtype: DataType::I8 },
                ],
                policy: FallbackPolicy::Merge { window },
                primary_blocked: Vec::new(),
                sync_overhead_us: 10.0,
                query_overhead_us: 0.0,
            };
            let sched = partition(&graph, &soc, &plan).expect("partitions");
            let ms = estimate_query_secs(&soc, &graph, &sched) * 1e3;
            rows.push(vec![
                window.to_string(),
                sched.num_transitions().to_string(),
                format!("{ms:.2} ms"),
            ]);
        }
        format!(
            "Ablation — merge window (segmentation, Exynos 2100)\n{}",
            render_table(&["Window", "Engine transitions", "Latency"], &rows)
        )
    }

    /// Serial [`super::ablation_sticky_fallback`].
    #[must_use]
    pub fn ablation_sticky_fallback() -> String {
        let soc = ChipId::Exynos990.build();
        let graph = retype(&ModelId::DeepLabV3Plus.build(), DataType::I8);
        let npu = soc.engine_of_kind(EngineKind::Npu).expect("has NPU");
        let gpu = soc.engine_of_kind(EngineKind::Gpu).expect("has GPU");
        let mut rows = Vec::new();
        for sticky in [0usize, 2, 4, 6, 10, 20] {
            let plan = PartitionPlan {
                primary: Target { engine: npu, dtype: DataType::I8 },
                fallbacks: vec![
                    Target { engine: gpu, dtype: DataType::F32 },
                    Target { engine: soc.cpu(), dtype: DataType::I8 },
                ],
                policy: FallbackPolicy::PingPong { sticky },
                primary_blocked: Vec::new(),
                sync_overhead_us: 10.0,
                query_overhead_us: 0.0,
            };
            let sched = partition(&graph, &soc, &plan).expect("partitions");
            let gpu_ops: usize = sched
                .stages
                .iter()
                .filter(|s| s.engine == gpu)
                .map(|s| s.nodes.len())
                .sum();
            let ms = estimate_query_secs(&soc, &graph, &sched) * 1e3;
            rows.push(vec![
                sticky.to_string(),
                gpu_ops.to_string(),
                sched.num_transitions().to_string(),
                format!("{ms:.1} ms"),
            ]);
        }
        format!(
            "Ablation — sticky fallback depth (segmentation, Exynos 990, GPU at FP32)\n{}",
            render_table(&["Sticky ops", "Ops dragged to GPU", "Transitions", "Latency"], &rows)
        )
    }

    /// Serial [`super::ablation_interconnect`]: compiles *and* fully
    /// re-lowers per knob.
    #[must_use]
    pub fn ablation_interconnect() -> String {
        let base = ChipId::Exynos990.build();
        let reference = ModelId::DeepLabV3Plus.build();
        let mut rows = Vec::new();
        for gbps in [0.18, 0.5, 2.0, 10.0] {
            let mut soc = base.clone();
            soc.interconnect.transfer_gbps = gbps;
            let dep = Enn.compile(&reference, &soc).expect("compiles");
            rows.push(vec![
                format!("{gbps:.2} GB/s"),
                format!("{:.1} ms", dep.estimate_ms(&soc)),
            ]);
        }
        format!(
            "Ablation — inter-IP transfer bandwidth (segmentation, Exynos 990)\n{}",
            render_table(&["Bandwidth", "Latency"], &rows)
        )
    }

    /// Serial [`super::ablation_batch_size`]: re-lowers every stream per
    /// knob through [`run_offline`].
    #[must_use]
    pub fn ablation_batch_size() -> String {
        let soc = ChipId::Exynos990.build();
        let dep = Enn
            .compile(&ModelId::MobileNetEdgeTpu.build(), &soc)
            .expect("compiles");
        let mut rows = Vec::new();
        for batch in [1usize, 2, 8, 32, 128] {
            let mut state = soc.new_state(22.0);
            let r = run_offline(&soc, &dep.graph, &dep.offline_streams, &mut state, 8192, batch);
            rows.push(vec![batch.to_string(), format!("{:.1} FPS", r.throughput_fps)]);
        }
        format!(
            "Ablation — offline batch size (classification, Exynos 990, NPU+CPU)\n{}",
            render_table(&["Batch", "Throughput"], &rows)
        )
    }

    /// Serial [`super::end_to_end_tax`].
    #[must_use]
    pub fn end_to_end_tax() -> String {
        let mut rows = Vec::new();
        for chip in [ChipId::Dimensity1100, ChipId::Snapdragon888] {
            let soc = cache().soc(chip);
            for def in suite(SuiteVersion::V1_0) {
                let backend =
                    mlperf_mobile::app::submission_backend(chip, SuiteVersion::V1_0, def.task);
                let Ok(dep) = cache().deployment(chip, backend, def.model) else {
                    continue;
                };
                let model_ms = dep.estimate_ms(&soc);
                let (pre, post) = host_stage_time(def.task, &soc);
                let host_ms = (pre + post).as_millis_f64();
                rows.push(vec![
                    chip.to_string(),
                    def.task.to_string(),
                    format!("{model_ms:.2} ms"),
                    format!("{host_ms:.2} ms"),
                    format!("{:.1}%", 100.0 * host_ms / (host_ms + model_ms)),
                ]);
            }
        }
        format!(
            "End-to-end AI tax (Appendix E extension; cf. Buch et al.)\n{}",
            render_table(&["Chipset", "Task", "Model", "Pre+post", "Tax"], &rows)
        )
    }

    /// Serial [`super::extensions_report`].
    #[must_use]
    pub fn extensions_report() -> String {
        let mut rows = Vec::new();
        for chip in [ChipId::Dimensity1100, ChipId::Exynos2100, ChipId::Snapdragon888] {
            let soc = cache().soc(chip);
            let backend = vendor_backend(&soc).expect("vendor backend");
            for def in mlperf_mobile::extensions::extension_defs() {
                let Ok(dep) = cache().deployment(chip, backend, def.model) else {
                    continue;
                };
                rows.push(vec![
                    chip.to_string(),
                    def.task.to_string(),
                    format!("{:.2} ms", dep.estimate_ms(&soc)),
                    dep.scheme.to_string(),
                    dep.accelerator_summary(&soc),
                    format!("{:.3} {}", def.quality_target(), def.task.metric_name()),
                ]);
            }
        }
        format!(
            "Suite extensions (Appendix E): speech RNN-T + 2x super-resolution\n{}\nspeech lands on the GPU at FP16 (LSTMs unsupported by the NPUs — the Insight 5 mechanism); super-resolution stays INT8 on the accelerators\n",
            render_table(&["Chipset", "Task", "Latency", "Numerics", "Engines", "Quality gate"], &rows)
        )
    }

    /// Serial [`super::power_report`]: every run recompiles its plans.
    #[must_use]
    pub fn power_report() -> String {
        let mut rows = Vec::new();
        for chip in [ChipId::Exynos2100, ChipId::Snapdragon888] {
            for def in suite(SuiteVersion::V1_0) {
                let backend =
                    mlperf_mobile::app::submission_backend(chip, SuiteVersion::V1_0, def.task);
                let Ok(dep) = cache().deployment(chip, backend, def.model) else {
                    continue;
                };
                let score = crate::run_scored(
                    chip,
                    cache().soc(chip),
                    dep,
                    &def,
                    &RunRules::smoke_test(),
                    DatasetScale::Reduced(48),
                    false,
                );
                rows.push(vec![
                    chip.to_string(),
                    def.task.to_string(),
                    format!("{:.2} mJ", score.joules_per_query * 1e3),
                    format!("{:.2} ms", score.latency_ms()),
                    format!("{:.2} W avg", score.joules_per_query / (score.latency_ms() / 1e3)),
                ]);
            }
        }
        // Low-battery comparison on one configuration.
        let mut low_rules = RunRules::smoke_test();
        low_rules.battery_soc = Some(0.15);
        let def = suite(SuiteVersion::V1_0).remove(0);
        let soc = cache().soc(ChipId::Snapdragon888);
        let dep = cache()
            .deployment(ChipId::Snapdragon888, BackendId::Snpe, def.model)
            .expect("SNPE compiles classification");
        let full = crate::run_scored(
            ChipId::Snapdragon888,
            soc.clone(),
            dep.clone(),
            &def,
            &RunRules::smoke_test(),
            DatasetScale::Reduced(48),
            false,
        );
        let low = crate::run_scored(
            ChipId::Snapdragon888,
            soc,
            dep,
            &def,
            &low_rules,
            DatasetScale::Reduced(48),
            false,
        );
        format!(
            "Power / energy (Appendix E extension; most chipsets cap at ~3 W TDP)\n{}\nbattery hazard: classification p90 on a full charge {:.2} ms vs {:.2} ms at 15% charge (power-saving mode entered: {}) — why the rules recommend a full charge\n",
            render_table(&["Chipset", "Task", "Energy/query", "p90", "Avg power"], &rows),
            full.latency_ms(),
            low.latency_ms(),
            low.power_saving_entered,
        )
    }

    /// Every ablation and extension artifact, serially.
    #[must_use]
    pub fn all_ablations() -> String {
        [
            ablation_sync_overhead(),
            ablation_merge_window(),
            ablation_sticky_fallback(),
            ablation_interconnect(),
            ablation_batch_size(),
            end_to_end_tax(),
            extensions_report(),
            power_report(),
        ]
        .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_sweep_is_monotone() {
        let text = ablation_sync_overhead();
        assert!(text.contains("0 us"));
        assert!(text.contains("300 us"));
    }

    #[test]
    fn sticky_sweep_renders() {
        let text = ablation_sticky_fallback();
        assert!(text.lines().count() > 6, "{text}");
    }

    #[test]
    fn extensions_report_shows_fp16_speech() {
        let text = extensions_report();
        assert!(text.contains("Speech recognition"));
        assert!(text.contains("FP16"));
        assert!(text.contains("Super-resolution"));
    }

    #[test]
    fn tax_report_has_percentages() {
        let text = end_to_end_tax();
        assert!(text.contains('%'));
    }

    /// The sweep engine's bit-identity contract at the report level:
    /// every delta-lowered, schedule-deduplicated, parallel-evaluated
    /// report renders the exact same bytes as the pre-sweep serial
    /// full-recompile implementation.
    #[test]
    fn sweep_reports_match_serial_byte_for_byte() {
        for (name, sweep, serial) in [
            ("sync", ablation_sync_overhead as fn() -> String, serial::ablation_sync_overhead as fn() -> String),
            ("merge", ablation_merge_window, serial::ablation_merge_window),
            ("sticky", ablation_sticky_fallback, serial::ablation_sticky_fallback),
            ("interconnect", ablation_interconnect, serial::ablation_interconnect),
            ("batch", ablation_batch_size, serial::ablation_batch_size),
            ("tax", end_to_end_tax, serial::end_to_end_tax),
            ("extensions", extensions_report, serial::extensions_report),
        ] {
            assert_eq!(sweep(), serial(), "{name} diverged from the serial oracle");
        }
    }

    /// [`power_report`] runs the full harness, so it gets its own case:
    /// the parallel planned-deployment path must match the serial
    /// recompile-per-run path byte for byte — same scores, same thermal
    /// trajectories, same rendering.
    #[test]
    fn power_report_matches_serial_byte_for_byte() {
        assert_eq!(power_report(), serial::power_report());
    }

    #[test]
    fn all_ablations_records_breakdown() {
        let text = all_ablations();
        assert!(text.contains("Ablation"));
        let breakdown = take_ablation_breakdown();
        assert_eq!(breakdown.len(), 8);
        assert_eq!(breakdown[0].0, "sync_overhead");
        assert!(breakdown.iter().all(|(_, ms)| *ms >= 0.0));
        assert!(take_ablation_breakdown().is_empty(), "drain empties the sink");
    }
}
