//! The paper's five insights (Section 7), each *computed* from the
//! simulation rather than asserted — the narrative the benchmark data is
//! supposed to support.

use crate::cache;
use mlperf_mobile::report::render_table;
use mlperf_mobile::task::{suite, SuiteVersion, Task};
use mobile_backend::backend::{Backend, BackendId};
use mobile_backend::backends::Nnapi;
use mobile_backend::registry::vendor_backend;
use nn_graph::models::ModelId;
use quant::{nominal_retention, Scheme, Sensitivity};
use soc_sim::catalog::ChipId;
use soc_sim::executor::run_offline;

/// Insight 1: benchmarking drives generational improvements (~2x in six
/// months).
#[must_use]
pub fn insight1() -> String {
    let pairs = [
        (ChipId::Dimensity820, ChipId::Dimensity1100),
        (ChipId::Exynos990, ChipId::Exynos2100),
        (ChipId::Snapdragon865Plus, ChipId::Snapdragon888),
    ];
    let mut ratios = Vec::new();
    for (old, new) in pairs {
        for (m_old, m_new) in [
            (ModelId::MobileNetEdgeTpu, ModelId::MobileNetEdgeTpu),
            (ModelId::SsdMobileNetV2, ModelId::MobileDetSsd),
            (ModelId::DeepLabV3Plus, ModelId::DeepLabV3Plus),
        ] {
            let a = vendor_latency(old, m_old);
            let b = vendor_latency(new, m_new);
            ratios.push(a / b);
        }
    }
    let geo = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    let max = ratios.iter().copied().fold(0.0f64, f64::max);
    format!(
        "Insight 1 — benchmarking drives improvement: across the three\n\
         smartphone families and vision tasks, v0.7 -> v1.0 improved latency\n\
         {geo:.2}x on average and up to {max:.1}x (paper: ~2x average, 12x max).\n"
    )
}

fn vendor_latency(chip: ChipId, model: ModelId) -> f64 {
    let soc = cache().soc(chip);
    let backend = vendor_backend(&soc).expect("vendor");
    cache().deployment(chip, backend, model).expect("compiles").estimate_ms(&soc)
}

/// Insight 2: no one size fits all — per-task winners differ.
#[must_use]
pub fn insight2() -> String {
    let chips = [ChipId::Dimensity820, ChipId::Exynos990, ChipId::Snapdragon865Plus];
    let mut rows = Vec::new();
    for task in Task::ALL {
        let model = suite(SuiteVersion::V0_7)
            .into_iter()
            .find(|d| d.task == task)
            .expect("in suite")
            .model;
        let mut best: Option<(ChipId, f64)> = None;
        for chip in chips {
            let soc = cache().soc(chip);
            let ms = if task == Task::QuestionAnswering {
                let backend = if soc.vendor == "Samsung" {
                    BackendId::Enn
                } else {
                    BackendId::TfliteGpu
                };
                cache().deployment(chip, backend, model).expect("NLP path").estimate_ms(&soc)
            } else {
                vendor_latency(chip, model)
            };
            if best.as_ref().is_none_or(|&(_, b)| ms < b) {
                best = Some((chip, ms));
            }
        }
        let (chip, ms) = best.expect("three chips");
        rows.push(vec![task.to_string(), chip.to_string(), format!("{ms:.2} ms")]);
    }
    let winners: std::collections::BTreeSet<String> =
        rows.iter().map(|r| r[1].clone()).collect();
    format!(
        "Insight 2 — no one size fits all: {} distinct winners across the\n\
         four v0.7 tasks.\n{}",
        winners.len(),
        render_table(&["Task", "Winner (v0.7)", "Latency"], &rows)
    )
}

/// Insight 3: accelerator-level parallelism is here — offline throughput
/// from concurrent engines.
#[must_use]
pub fn insight3() -> String {
    let mut rows = Vec::new();
    for chip in [ChipId::Exynos990, ChipId::Snapdragon865Plus, ChipId::CoreI7_1165G7] {
        let soc = cache().soc(chip);
        let backend = vendor_backend(&soc).expect("vendor");
        let dep = cache()
            .deployment(chip, backend, ModelId::MobileNetEdgeTpu)
            .expect("compiles");
        let mut s1 = soc.new_state(22.0);
        let solo =
            run_offline(&soc, &dep.graph, &dep.offline_streams[..1], &mut s1, 8192, 32);
        let mut s2 = soc.new_state(22.0);
        let alp = run_offline(&soc, &dep.graph, &dep.offline_streams, &mut s2, 8192, 32);
        rows.push(vec![
            chip.to_string(),
            format!("{:.0} FPS", solo.throughput_fps),
            format!("{:.0} FPS", alp.throughput_fps),
            format!("{:+.0}%", (alp.throughput_fps / solo.throughput_fps - 1.0) * 100.0),
        ]);
    }
    format!(
        "Insight 3 — accelerator-level parallelism: offline classification\n\
         with one stream vs concurrent engines.\n{}",
        render_table(&["Platform", "Single engine", "ALP", "Gain"], &rows)
    )
}

/// Insight 4: frameworks matter — vendor delegates beat NNAPI; buggy
/// drivers are catastrophic.
#[must_use]
pub fn insight4() -> String {
    let chip = ChipId::Dimensity1100;
    let soc = cache().soc(chip);
    let model = ModelId::MobileNetEdgeTpu;
    let neuron = cache()
        .deployment(chip, BackendId::Neuron, model)
        .expect("neuron")
        .estimate_ms(&soc);
    let nnapi = cache()
        .deployment(chip, BackendId::Nnapi, model)
        .expect("nnapi")
        .estimate_ms(&soc);
    // A buggy driver is a one-off hypothetical, not a catalogued backend —
    // it deliberately bypasses the compile cache.
    let buggy = Nnapi::buggy(vec![nn_graph::OpClass::DepthwiseConv, nn_graph::OpClass::Pool])
        .compile(&model.build(), &soc)
        .expect("buggy nnapi")
        .estimate_ms(&soc);
    format!(
        "Insight 4 — ML frameworks play a crucial role: classification on the\n\
         Dimensity 1100 runs {neuron:.2} ms through the vendor delegate,\n\
         {nnapi:.2} ms through NNAPI ({:+.1}%), and {buggy:.2} ms through a\n\
         buggy NNAPI driver ({:.1}x slower) — the paper reports >10% and up\n\
         to 7x respectively.\n",
        (nnapi / neuron - 1.0) * 100.0,
        buggy / neuron,
    )
}

/// Insight 5: numerics still matter — INT8 margins per task and the FP16
/// refuge for NLP.
#[must_use]
pub fn insight5() -> String {
    let mut rows = Vec::new();
    for def in suite(SuiteVersion::V1_0) {
        let s = Sensitivity::for_model(def.model);
        let int8 = def.fp32_quality * nominal_retention(Scheme::ptq_default(nn_graph::DataType::I8), s);
        let fp16 = def.fp32_quality * nominal_retention(Scheme::Fp16, s);
        let margin = (int8 - def.quality_target()) / def.quality_target() * 100.0;
        rows.push(vec![
            def.task.to_string(),
            format!("{:.4}", def.quality_target()),
            format!("{int8:.4} ({margin:+.1}%)"),
            format!("{fp16:.4}"),
        ]);
    }
    format!(
        "Insight 5 — numerics still matter: INT8 PTQ clears the vision gates\n\
         comfortably but NLP only barely; FP16 is the safe harbour, which is\n\
         why every phone submission ran MobileBERT at FP16.\n{}",
        render_table(&["Task", "Gate", "INT8 PTQ (margin)", "FP16"], &rows)
    )
}

/// All five insights, computed in parallel and joined in insight order
/// (each insight reads only the shared compile cache, so the join is
/// byte-identical to the serial concatenation — locked by a test below).
#[must_use]
pub fn all_insights() -> String {
    let insights: [fn() -> String; 5] = [insight1, insight2, insight3, insight4, insight5];
    mlperf_mobile::runner::par_map(&insights, crate::worker_threads(), |f| f()).join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insight2_has_multiple_winners() {
        let text = insight2();
        assert!(
            text.contains("2 distinct winners") || text.contains("3 distinct winners"),
            "{text}"
        );
    }

    #[test]
    fn insight4_orders_frameworks() {
        let text = insight4();
        assert!(text.contains("buggy"));
    }

    #[test]
    fn all_insights_render() {
        let text = all_insights();
        assert!(text.contains("Insight 1"));
        assert!(text.contains("Insight 5"));
    }

    #[test]
    fn parallel_insights_match_serial_byte_for_byte() {
        let serial = [insight1(), insight2(), insight3(), insight4(), insight5()].join("\n");
        assert_eq!(all_insights(), serial);
    }
}
