//! Reproduction harness: regenerates every table and figure from the
//! paper's evaluation (see DESIGN.md's per-experiment index).
//!
//! Each `table*`/`figure*` function runs the benchmark pipeline and
//! renders the same rows/series the paper reports, annotated with the
//! published values where the paper states them. Invoked by the
//! `reproduce` binary and the `reproduce_tables` bench target.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ablations;
pub mod insights;

pub use insights::all_insights;

pub use ablations::{
    ablation_batch_size, ablation_interconnect, ablation_merge_window,
    ablation_sticky_fallback, ablation_sync_overhead, all_ablations, end_to_end_tax,
    extensions_report, power_report, take_ablation_breakdown,
};

use mlperf_mobile::harness::{
    run_benchmark_planned, run_benchmark_planned_scenarios,
    run_benchmark_planned_scenarios_with_trace, run_benchmark_planned_with_trace,
    run_benchmark_with, run_benchmark_with_trace, RunRules, ScenarioMix,
};
use mlperf_mobile::sut_impl::PlannedDeployment;
use mlperf_mobile::metrics::TraceCollector;
use mlperf_mobile::report::render_table;
use mlperf_mobile::runner::CompileCache;
use mlperf_mobile::sut_impl::DatasetScale;
use mlperf_mobile::task::{suite, BenchmarkDef, SuiteVersion, Task};
use mlperf_mobile::BenchmarkScore;
use mobile_backend::backend::{BackendId, Deployment};
use mobile_backend::registry::{available_backends, vendor_backend};
use nn_graph::models::ModelId;
use quant::{nominal_retention, Scheme, Sensitivity};
use soc_sim::catalog::ChipId;
use soc_sim::executor::run_offline;
use soc_sim::soc::Soc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Process-wide compilation cache shared by every table, figure and
/// insight: the same (chip, backend, model) deployments recur across
/// artifacts (Figure 6 alone revisits 16 of them), so `reproduce all`
/// compiles each one exactly once. The `reproduce` binary reports its
/// hit/miss counters in `BENCH_suite.json`.
pub fn cache() -> &'static CompileCache {
    static CACHE: OnceLock<CompileCache> = OnceLock::new();
    CACHE.get_or_init(CompileCache::new)
}

/// Process-wide trace collector: every harness run made while
/// [`set_tracing`]`(true)` is in force deposits its
/// [`mlperf_mobile::BenchmarkTrace`] here. The `reproduce --trace` flag
/// drains it after each artifact to build that artifact's trace file.
pub fn trace_sink() -> &'static TraceCollector {
    static SINK: OnceLock<TraceCollector> = OnceLock::new();
    SINK.get_or_init(TraceCollector::new)
}

static TRACING: AtomicBool = AtomicBool::new(false);

/// Turns per-query run tracing on or off for every subsequent harness run
/// in this process (scores are unaffected either way).
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Whether per-query run tracing is currently enabled.
#[must_use]
pub fn tracing() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Runs one benchmark through the global tracing switch: identical to
/// [`run_benchmark_with`], except that when [`tracing`] is on the run's
/// trace is deposited in [`trace_sink`].
#[must_use]
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_scored(
    chip: ChipId,
    soc: Arc<Soc>,
    deployment: Arc<Deployment>,
    def: &BenchmarkDef,
    rules: &RunRules,
    scale: DatasetScale,
    with_offline: bool,
) -> BenchmarkScore {
    if tracing() {
        let (score, trace) =
            run_benchmark_with_trace(chip, soc, deployment, def, rules, scale, with_offline);
        trace_sink().push(trace);
        score
    } else {
        run_benchmark_with(chip, soc, deployment, def, rules, scale, with_offline)
    }
}

/// [`run_scored`] for an already-planned deployment: skips the per-run
/// plan compilation by reusing the process-wide plan cache's lowering.
/// Scores are bit-identical either way (plan lowering is deterministic).
#[must_use]
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_scored_planned(
    chip: ChipId,
    soc: Arc<Soc>,
    planned: PlannedDeployment,
    def: &BenchmarkDef,
    rules: &RunRules,
    scale: DatasetScale,
    with_offline: bool,
) -> BenchmarkScore {
    if tracing() {
        let (score, trace) = run_benchmark_planned_with_trace(
            chip,
            soc,
            planned,
            def,
            rules,
            scale,
            with_offline,
        );
        trace_sink().push(trace);
        score
    } else {
        run_benchmark_planned(chip, soc, planned, def, rules, scale, with_offline)
    }
}

/// [`run_scored_planned`] with an explicit scenario mix: the path the
/// four-scenario matrix artifact takes, so server and multi-stream search
/// probes also land in [`trace_sink`] when tracing is on.
#[must_use]
pub(crate) fn run_scored_scenarios(
    chip: ChipId,
    soc: Arc<Soc>,
    planned: PlannedDeployment,
    def: &BenchmarkDef,
    rules: &RunRules,
    scale: DatasetScale,
    mix: ScenarioMix,
) -> BenchmarkScore {
    if tracing() {
        let (score, trace) = run_benchmark_planned_scenarios_with_trace(
            chip, soc, planned, def, rules, scale, mix,
        );
        trace_sink().push(trace);
        score
    } else {
        run_benchmark_planned_scenarios(chip, soc, planned, def, rules, scale, mix)
    }
}

/// Worker-thread count for the parallel sweep paths: one per available
/// core, overridable with `MLPERF_WORKERS`.
pub(crate) fn worker_threads() -> usize {
    mlperf_mobile::runner::default_threads()
}

/// Vendor-path single-stream latency estimate in ms.
fn vendor_ms(chip: ChipId, model: ModelId) -> f64 {
    let soc = cache().soc(chip);
    let backend = vendor_backend(&soc).expect("vendor path exists");
    cache()
        .deployment(chip, backend, model)
        .expect("vendor backend compiles")
        .estimate_ms(&soc)
}

/// NLP latency via the Table 2 path (TFLite GPU delegate; ENN on Samsung).
fn nlp_ms(chip: ChipId) -> f64 {
    let soc = cache().soc(chip);
    let backend = if soc.vendor == "Samsung" {
        BackendId::Enn
    } else if soc.is_laptop {
        BackendId::OpenVino
    } else {
        BackendId::TfliteGpu
    };
    cache()
        .deployment(chip, backend, ModelId::MobileBert)
        .expect("NLP path compiles")
        .estimate_ms(&soc)
}

fn task_model(version: SuiteVersion, task: Task) -> ModelId {
    suite(version)
        .into_iter()
        .find(|d| d.task == task)
        .expect("task in suite")
        .model
}

fn task_ms(chip: ChipId, version: SuiteVersion, task: Task) -> f64 {
    if task == Task::QuestionAnswering {
        nlp_ms(chip)
    } else {
        vendor_ms(chip, task_model(version, task))
    }
}

/// Table 1: the benchmark suite with quality targets, plus the achieved
/// PTQ-INT8 quality from the quant model (showing each gate passes).
#[must_use]
pub fn table1() -> String {
    let mut rows = Vec::new();
    for version in SuiteVersion::ALL {
        for def in suite(version) {
            if version == SuiteVersion::V1_0 && def.task != Task::ObjectDetection {
                continue; // only detection changed between versions
            }
            let graph = def.model.build();
            let scheme = Scheme::ptq_default(nn_graph::DataType::I8);
            let retained = def.fp32_quality
                * nominal_retention(scheme, Sensitivity::for_model(def.model));
            rows.push(vec![
                version.to_string(),
                def.task.to_string(),
                format!("{} ({:.1}M params)", def.model, graph.parameter_count() as f64 / 1e6),
                def.dataset.clone(),
                format!(
                    "{:.0}% of FP32 ({:.4} {})",
                    def.target_fraction * 100.0,
                    def.fp32_quality,
                    def.task.metric_name()
                ),
                format!(
                    "{:.4} ({})",
                    retained,
                    if retained >= def.quality_target() { "passes INT8 PTQ" } else { "needs FP16" }
                ),
            ]);
        }
    }
    format!(
        "Table 1 — benchmark suite and quality targets\n{}",
        render_table(
            &["Version", "Task", "Reference model", "Data set", "Quality target", "INT8 PTQ quality"],
            &rows,
        )
    )
}

/// Table 2: per-SoC per-task configuration matrix (numerics / framework /
/// accelerator), v0.7, plus the offline classification column.
#[must_use]
pub fn table2() -> String {
    let chips = [
        ChipId::Dimensity820,
        ChipId::Exynos990,
        ChipId::Snapdragon865Plus,
        ChipId::CoreI7_1165G7,
    ];
    let version = SuiteVersion::V0_7;
    let mut rows = Vec::new();
    for chip in chips {
        let soc = cache().soc(chip);
        let mut row = vec![format!("{} {}", soc.vendor, chip)];
        // Single-stream columns per task + offline classification.
        for task in Task::ALL {
            let backend_id = mlperf_mobile::app::submission_backend(chip, version, task);
            let model = task_model(version, task);
            match cache().deployment(chip, backend_id, model) {
                Ok(dep) => row.push(format!(
                    "{}, {}, {}",
                    dep.scheme,
                    backend_id,
                    dep.accelerator_summary(&soc)
                )),
                Err(_) => row.push("n/a".into()),
            }
        }
        // Offline classification configuration (ALP engines).
        let backend_id =
            mlperf_mobile::app::submission_backend(chip, version, Task::ImageClassification);
        let dep = cache()
            .deployment(chip, backend_id, ModelId::MobileNetEdgeTpu)
            .expect("classification compiles");
        if dep.offline_streams.len() < 2 {
            // MediaTek did not submit offline in v0.7 — the paper's cell
            // reads "Not applicable".
            row.push("not submitted".into());
        } else {
            let mut engines: Vec<String> = Vec::new();
            for s in &dep.offline_streams {
                let k = soc.engine(s.stages[0].engine).kind.to_string();
                if !engines.contains(&k) {
                    engines.push(k);
                }
            }
            row.push(engines.join("+"));
        }
        rows.push(row);
    }
    format!(
        "Table 2 — numerics / framework / accelerator per task (v0.7)\n{}",
        render_table(
            &[
                "SoC",
                "Classification (single-stream)",
                "Detection (single-stream)",
                "Segmentation (single-stream)",
                "NLP (single-stream)",
                "Classification offline (ALP)",
            ],
            &rows,
        )
    )
}

/// Table 3: NNAPI vs Neuron delegate on the Dimensity 1100.
#[must_use]
pub fn table3() -> String {
    let chip = ChipId::Dimensity1100;
    let soc = cache().soc(chip);
    let cases = [
        (ModelId::MobileNetEdgeTpu, "Image Classification", 2.48, 2.23, 10.08),
        (ModelId::MobileDetSsd, "Object Detection", 5.05, 4.77, 5.54),
        (ModelId::DeepLabV3Plus, "Image Segmentation", 20.56, 20.02, 2.70),
    ];
    let mut rows = Vec::new();
    for (model, name, paper_nnapi, paper_neuron, paper_pct) in cases {
        let nnapi =
            cache().deployment(chip, BackendId::Nnapi, model).unwrap().estimate_ms(&soc);
        let neuron =
            cache().deployment(chip, BackendId::Neuron, model).unwrap().estimate_ms(&soc);
        rows.push(vec![
            name.to_owned(),
            format!("{nnapi:.2} ms (paper {paper_nnapi})"),
            format!("{neuron:.2} ms (paper {paper_neuron})"),
            format!("{:.2}% (paper {paper_pct}%)", (nnapi / neuron - 1.0) * 100.0),
        ]);
    }
    format!(
        "Table 3 — MediaTek Dimensity 1100: generic NNAPI vs vendor Neuron delegate\n{}",
        render_table(&["Task", "NNAPI Delegate", "Neuron Delegate", "% Improvement"], &rows)
    )
}

/// Table 4: requirement matrix vs other mobile AI benchmarks.
#[must_use]
pub fn table4() -> String {
    let mut rows = Vec::new();
    for cmp in mlperf_mobile::related::table4() {
        let mut row = vec![cmp.name.to_owned()];
        for s in cmp.satisfies {
            row.push(if s { "yes" } else { "X" }.to_owned());
        }
        rows.push(row);
    }
    format!(
        "Table 4 — requirement comparison with other mobile ML benchmarks\n{}",
        render_table(&["Benchmark", "Req.1", "Req.2", "Req.3", "Req.4", "Req.5"], &rows)
    )
}

/// Figure 6: v0.7 -> v1.0 latency improvement per task per SoC family.
#[must_use]
pub fn figure6() -> String {
    let pairs = [
        (ChipId::Dimensity820, ChipId::Dimensity1100),
        (ChipId::Exynos990, ChipId::Exynos2100),
        (ChipId::Snapdragon865Plus, ChipId::Snapdragon888),
        (ChipId::CoreI7_1165G7, ChipId::CoreI7_11375H),
    ];
    let mut rows = Vec::new();
    let mut all_ratios = Vec::new();
    for (old, new) in pairs {
        for task in Task::ALL {
            let a = task_ms(old, SuiteVersion::V0_7, task);
            let b = task_ms(new, SuiteVersion::V1_0, task);
            let ratio = a / b;
            all_ratios.push(ratio);
            rows.push(vec![
                format!("{old} -> {new}"),
                task.to_string(),
                format!("{a:.2} ms"),
                format!("{b:.2} ms"),
                format!("{ratio:.2}x"),
            ]);
        }
    }
    let geo = (all_ratios.iter().map(|r| r.ln()).sum::<f64>() / all_ratios.len() as f64).exp();
    let max = all_ratios.iter().copied().fold(0.0f64, f64::max);
    format!(
        "Figure 6 — generational latency improvement (v0.7 -> v1.0)\n{}\naverage improvement {geo:.2}x (paper ~2x); largest {max:.1}x on Exynos segmentation (paper 12.7x)\n",
        render_table(&["SoC family", "Task", "v0.7", "v1.0", "Improvement"], &rows)
    )
}

/// Figure 7: v0.7 single-stream latency and throughput per smartphone
/// chipset per task.
#[must_use]
pub fn figure7() -> String {
    let chips = [ChipId::Dimensity820, ChipId::Exynos990, ChipId::Snapdragon865Plus];
    let mut rows = Vec::new();
    for task in Task::ALL {
        for chip in chips {
            let ms = task_ms(chip, SuiteVersion::V0_7, task);
            rows.push(vec![
                task.to_string(),
                chip.to_string(),
                format!("{ms:.2} ms"),
                format!("{:.1} qps", 1000.0 / ms),
            ]);
        }
    }
    format!(
        "Figure 7 — v0.7 single-stream results (vendor code paths)\n{}\npaper orderings: Exynos wins classification & NLP; Dimensity wins detection & segmentation; Snapdragon competitive in segmentation & NLP\n",
        render_table(&["Task", "Chipset", "Latency", "Throughput"], &rows)
    )
}

/// Section 7.2 offline text: classification offline throughput.
#[must_use]
pub fn offline_throughput() -> String {
    let cases = [
        (ChipId::Exynos990, Some(674.4)),
        (ChipId::Snapdragon865Plus, Some(605.37)),
        (ChipId::Dimensity820, None),
        (ChipId::CoreI7_1165G7, None),
    ];
    let mut rows = Vec::new();
    for (chip, paper) in cases {
        let soc = cache().soc(chip);
        let backend = vendor_backend(&soc).unwrap();
        let dep = cache().deployment(chip, backend, ModelId::MobileNetEdgeTpu).unwrap();
        let mut state = soc.new_state(22.0);
        let r = run_offline(&soc, &dep.graph, &dep.offline_streams, &mut state, 24_576, 32);
        rows.push(vec![
            chip.to_string(),
            format!("{:.1} FPS", r.throughput_fps),
            paper.map_or("not published".to_owned(), |p| format!("{p} FPS")),
            format!("{} streams", dep.offline_streams.len()),
            format!("{:.0}% throttled", r.throttled_fraction * 100.0),
        ]);
    }
    format!(
        "Offline classification throughput (24576 samples, Section 7.2)\n{}",
        render_table(&["Chipset", "Simulated", "Paper", "ALP", "Thermal"], &rows)
    )
}

/// Section 7.1 laptop results: engine choice and generational deltas.
#[must_use]
pub fn laptop() -> String {
    let mut rows = Vec::new();
    for task in Task::ALL {
        let old_soc = cache().soc(ChipId::CoreI7_1165G7);
        let new_soc = cache().soc(ChipId::CoreI7_11375H);
        let model_old = task_model(SuiteVersion::V0_7, task);
        let model_new = task_model(SuiteVersion::V1_0, task);
        let dep_old =
            cache().deployment(ChipId::CoreI7_1165G7, BackendId::OpenVino, model_old).unwrap();
        let dep_new =
            cache().deployment(ChipId::CoreI7_11375H, BackendId::OpenVino, model_new).unwrap();
        let a = dep_old.estimate_ms(&old_soc);
        let b = dep_new.estimate_ms(&new_soc);
        rows.push(vec![
            task.to_string(),
            format!("{a:.2} ms on {}", dep_old.accelerator_summary(&old_soc)),
            format!("{b:.2} ms on {}", dep_new.accelerator_summary(&new_soc)),
            format!("{:.2}x", a / b),
        ]);
    }
    format!(
        "Laptop results (OpenVINO, all INT8; Section 7.1)\n{}\npaper: classification/detection on CPU (~1.1x gain from frequency); segmentation/NLP on iGPU; NLP gains most from the quantized GPU kernel\n",
        render_table(&["Task", "i7-1165G7 (v0.7)", "i7-11375H (v1.0)", "Gain"], &rows)
    )
}

/// Figures 1/5: the code-path matrix — which backends exist per SoC.
#[must_use]
pub fn codepaths() -> String {
    let mut rows = Vec::new();
    for chip in ChipId::ALL {
        let soc: Soc = chip.build();
        let paths: Vec<String> =
            available_backends(&soc).iter().map(ToString::to_string).collect();
        rows.push(vec![
            chip.to_string(),
            paths.join(", "),
            vendor_backend(&soc).map(|b| b.to_string()).unwrap_or_default(),
        ]);
    }
    format!(
        "Figures 1 & 5 — code paths per platform\n{}",
        render_table(&["Platform", "Available code paths", "Vendor path"], &rows)
    )
}

/// The four-scenario matrix (paper Section 4.2): single-stream, offline,
/// server, and multi-stream classification results per v1.0 flagship, all
/// driven by the discrete-event LoadGen executor. Server reports the
/// highest Poisson offered load whose p90 stays under 3x the single-stream
/// p90; multi-stream reports the widest frame that fits the 50 ms budget.
#[must_use]
pub fn scenarios() -> String {
    let version = SuiteVersion::V1_0;
    let def = suite(version)
        .into_iter()
        .find(|d| d.task == Task::ImageClassification)
        .expect("classification is in the suite");
    let chips = [
        ChipId::Dimensity1100,
        ChipId::Exynos2100,
        ChipId::Snapdragon888,
        ChipId::CoreI7_11375H,
    ];
    let cells: Vec<(ChipId, BenchmarkDef)> =
        chips.iter().map(|&chip| (chip, def.clone())).collect();
    let rows: Vec<Vec<String>> = mlperf_mobile::runner::par_map(
        &cells,
        worker_threads(),
        |(chip, def): &(ChipId, BenchmarkDef)| -> Option<Vec<String>> {
            let backend = mlperf_mobile::app::submission_backend(*chip, version, def.task);
            let planned = cache().planned(*chip, backend, def.model).ok()?;
            let score = run_scored_scenarios(
                *chip,
                cache().soc(*chip),
                planned,
                def,
                &RunRules::smoke_test(),
                DatasetScale::Reduced(32),
                ScenarioMix::all(),
            );
            let srv = score.server.as_ref()?;
            let ms = score.multi_stream.as_ref()?;
            Some(vec![
                chip.to_string(),
                backend.to_string(),
                format!("{:.2} ms p90", score.latency_ms()),
                score
                    .offline
                    .as_ref()
                    .map_or("n/a".to_owned(), |o| format!("{:.1} FPS", o.throughput_fps)),
                format!(
                    "{:.1} QPS (p90 <= {:.2} ms, {} probes)",
                    srv.max_qps,
                    srv.target_latency_ns as f64 / 1e6,
                    srv.probes
                ),
                format!(
                    "{} streams / {:.0} ms frame ({} probes)",
                    ms.streams,
                    ms.interval_ns as f64 / 1e6,
                    ms.probes
                ),
            ])
        },
    )
    .into_iter()
    .flatten()
    .collect();
    format!(
        "Scenario matrix — classification under all four LoadGen scenarios (v1.0 flagships)\n{}\nserver bound is 3x the measured single-stream p90; multi-stream frame budget is 50 ms\n",
        render_table(
            &["Chipset", "Code path", "Single-stream", "Offline", "Server", "Multi-stream"],
            &rows,
        )
    )
}

/// The fleet field-performance artifact (`reproduce fleet`): a
/// population sweep of 20 000 sampled field devices across the whole
/// catalog through the batched lockstep executor, reported as
/// per-(chip, path) population percentiles with the p99.9 deep tail.
///
/// Byte-identical for the fixed seed regardless of `MLPERF_WORKERS` —
/// `make fleet` diffs this text across worker counts. Deliberately not
/// part of [`all_reports`], so `reproduce all` goldens are unaffected.
#[must_use]
pub fn fleet() -> String {
    let config = mlperf_mobile::fleet::FleetConfig::new(20_000, 7);
    mlperf_mobile::fleet::fleet_report_text(cache(), &config)
        .expect("catalog submission paths compile")
}

/// The scheduling-gap artifact (`reproduce tuning`): the schedule
/// auto-tuner run over every catalog chip's submission cells under both
/// the latency and the energy objective, reporting heuristic-vs-optimal
/// gaps per (chip, backend, model) — a quantified extension of the
/// paper's Insights 2–5 about vendor-SDK scheduling advantages.
///
/// Byte-identical regardless of `MLPERF_WORKERS` — `make tune` diffs
/// this text across worker counts. Deliberately not part of
/// [`all_reports`], so `reproduce all` goldens are unaffected.
#[must_use]
pub fn tuning() -> String {
    let config = mlperf_mobile::tuning::TuningConfig::new();
    mlperf_mobile::tuning::tuning_report_text(cache(), &config)
        .expect("catalog submission paths compile")
}

/// Every reproduction artifact, concatenated (the `reproduce all` output).
#[must_use]
pub fn all_reports() -> String {
    [
        table1(),
        table2(),
        table3(),
        table4(),
        figure6(),
        figure7(),
        offline_throughput(),
        laptop(),
        codepaths(),
        scenarios(),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_report_renders() {
        for (name, text) in [
            ("table1", table1()),
            ("table3", table3()),
            ("table4", table4()),
            ("figure7", figure7()),
            ("codepaths", codepaths()),
        ] {
            assert!(text.lines().count() > 4, "{name} too short:\n{text}");
        }
    }

    #[test]
    fn fleet_artifact_renders_population_percentiles() {
        let t = fleet();
        assert!(t.contains("20000 devices, seed 7"), "headline missing:\n{t}");
        assert!(t.contains("p99.9 ms"), "deep-tail column missing:\n{t}");
        assert!(t.contains("fleet-wide single-stream latency"), "summary missing:\n{t}");
        assert!(t.contains("lane dedup:"), "dedup stats missing:\n{t}");
    }

    #[test]
    fn table3_contains_paper_values() {
        let t = table3();
        assert!(t.contains("paper 2.23"));
        assert!(t.contains("paper 10.08%"));
    }

    #[test]
    fn table2_shows_fp16_nlp_and_alp() {
        let t = table2();
        assert!(t.contains("FP16"));
        assert!(t.contains("+"), "offline column should show ALP combos:\n{t}");
    }
}
