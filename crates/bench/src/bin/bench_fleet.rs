//! `bench_fleet` — measure fleet-sweep throughput and write
//! `BENCH_fleet.json`.
//!
//! ```sh
//! cargo run --release -p mlperf-bench --bin bench_fleet
//! ```
//!
//! Runs the default mixed-catalog field population (every chip, the
//! consumer [`soc_sim::fleet::FleetProfile`]) through
//! [`mlperf_mobile::fleet::run_fleet`] and reports fully-simulated
//! devices per minute — each device is 24 thermally-coupled queries
//! through the batched K=8 lockstep executor, not a closed-form
//! estimate. The acceptance headline is the mixed-population rate
//! (`target`: >= 1M devices/min); a uniform-population run shows the
//! dedup + unit-memo fast path the executor was built around.

use mlperf_mobile::fleet::{run_fleet, FleetConfig, FleetReport};
use mlperf_mobile::runner::CompileCache;
use serde::Serialize;
use soc_sim::fleet::FleetProfile;
use std::time::Instant;

/// Devices in each timed run.
const DEVICES: u64 = 400_000;
/// Warmup population (compiles the sweeps, faults in the pool).
const WARMUP_DEVICES: u64 = 20_000;
/// The acceptance bar: one million fully-simulated devices per minute.
const TARGET_PER_MIN: f64 = 1.0e6;

#[derive(Serialize)]
struct Measured {
    devices: u64,
    seed: u64,
    lanes: usize,
    queries_per_device: u32,
    workers: usize,
    wall_secs: f64,
    devices_per_min: f64,
    /// Fraction of lane-queries that shared another lane's op-array walk.
    lane_dedup_fraction: f64,
    /// Devices replayed from the per-shard unit memo instead of executed.
    memo_hits: u64,
}

#[derive(Serialize)]
struct Report {
    /// The acceptance headline: mixed-population devices/min at K=8.
    devices_per_min_mixed: f64,
    target_devices_per_min: f64,
    meets_target: bool,
    /// The mixed consumer population (every chip, default profile).
    mixed: Measured,
    /// A single-bin fleet: every unit bit-identical, dedup + memo hot.
    uniform: Measured,
}

fn measure(cache: &CompileCache, config: &FleetConfig) -> (Measured, FleetReport) {
    let t = Instant::now();
    let report = run_fleet(cache, config).expect("catalog submission paths compile");
    let wall_secs = t.elapsed().as_secs_f64();
    let m = Measured {
        devices: config.devices,
        seed: config.seed,
        lanes: config.lanes,
        queries_per_device: config.queries_per_device,
        workers: config.threads,
        wall_secs,
        devices_per_min: config.devices as f64 / wall_secs * 60.0,
        lane_dedup_fraction: if report.lane_queries > 0 {
            report.lanes_deduped as f64 / report.lane_queries as f64
        } else {
            0.0
        },
        memo_hits: report.memo_hits,
    };
    (m, report)
}

fn main() {
    let cache = CompileCache::new();

    let mut warmup = FleetConfig::new(WARMUP_DEVICES, 7);
    let _ = measure(&cache, &warmup);
    warmup.profile = FleetProfile::uniform(22.0);
    let _ = measure(&cache, &warmup);

    let mixed_config = FleetConfig::new(DEVICES, 7);
    let (mixed, _) = measure(&cache, &mixed_config);
    eprintln!(
        "mixed:   {} devices in {:.2} s on {} workers = {:.0} devices/min \
         (dedup {:.1}%, {} memo replays)",
        mixed.devices,
        mixed.wall_secs,
        mixed.workers,
        mixed.devices_per_min,
        mixed.lane_dedup_fraction * 100.0,
        mixed.memo_hits,
    );

    let mut uniform_config = FleetConfig::new(DEVICES, 7);
    uniform_config.profile = FleetProfile::uniform(22.0);
    let (uniform, _) = measure(&cache, &uniform_config);
    eprintln!(
        "uniform: {} devices in {:.2} s on {} workers = {:.0} devices/min \
         (dedup {:.1}%, {} memo replays)",
        uniform.devices,
        uniform.wall_secs,
        uniform.workers,
        uniform.devices_per_min,
        uniform.lane_dedup_fraction * 100.0,
        uniform.memo_hits,
    );

    let report = Report {
        devices_per_min_mixed: mixed.devices_per_min,
        target_devices_per_min: TARGET_PER_MIN,
        meets_target: mixed.devices_per_min >= TARGET_PER_MIN,
        mixed,
        uniform,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializes") + "\n";
    match std::fs::write("BENCH_fleet.json", &json) {
        Ok(()) => eprintln!(
            "wrote BENCH_fleet.json ({:.2}M devices/min mixed, target {:.0}M: {})",
            report.devices_per_min_mixed / 1e6,
            TARGET_PER_MIN / 1e6,
            if report.meets_target { "met" } else { "MISSED" },
        ),
        Err(e) => eprintln!("could not write BENCH_fleet.json: {e}"),
    }
}
