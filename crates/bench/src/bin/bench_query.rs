//! `bench_query` — measure the compiled-query-plan speedup and write
//! `BENCH_query.json`.
//!
//! ```sh
//! cargo run --release -p mlperf-bench --bin bench_query
//! ```
//!
//! Two measurements, one file:
//!
//! 1. **Hot loop**: for each single-stream cell (chip x model), simulated
//!    queries per second with the historical per-query path
//!    ([`soc_sim::executor::run_query`] — re-validates and re-walks the
//!    graph every call) and with a once-compiled
//!    [`soc_sim::plan::QueryPlan`] replayed per query. Both paths produce
//!    bit-identical results (`crates/soc-sim/tests/plan_equivalence.rs`);
//!    the qps ratio is the speedup the plan buys.
//! 2. **End to end**: wall-clock of the full `reproduce all` artifact
//!    sweep on the planned harness, against a recorded pre-plan baseline.
//!    Override the baseline with `BENCH_QUERY_BASELINE_MS` when
//!    re-baselining on different hardware.
//!
//! Results land in `BENCH_query.json` in the current directory.

use mobile_backend::registry::{create, vendor_backend};
use nn_graph::models::ModelId;
use serde::Serialize;
use soc_sim::catalog::ChipId;
use soc_sim::executor::run_query;
use soc_sim::plan::QueryPlan;
use soc_sim::soc::{Soc, SocState};
use std::hint::black_box;
use std::time::Instant;

/// `reproduce all` total wall-clock on the reference host immediately
/// before the plan refactor (from `BENCH_suite.json` at that commit).
const PRE_PLAN_BASELINE_MS: f64 = 45.857689;

/// Warmup iterations before each timed series.
const WARMUP_ITERS: u32 = 1_000;
/// Each series runs until at least this much wall-clock has elapsed.
const MIN_MEASURE_SECS: f64 = 0.25;

#[derive(Serialize)]
struct Cell {
    chip: String,
    model: &'static str,
    unplanned_qps: f64,
    planned_qps: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct ReproduceAll {
    baseline_total_wall_ms: f64,
    total_wall_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    cells: Vec<Cell>,
    min_speedup: f64,
    geomean_speedup: f64,
    reproduce_all: ReproduceAll,
}

/// Runs `f` in a timed loop (after warmup) and returns iterations/sec.
fn measure_qps(mut f: impl FnMut()) -> f64 {
    for _ in 0..WARMUP_ITERS {
        f();
    }
    let mut iters: u64 = 0;
    let t = Instant::now();
    loop {
        // Batches keep the clock off the hot path.
        for _ in 0..256 {
            f();
        }
        iters += 256;
        let elapsed = t.elapsed().as_secs_f64();
        if elapsed >= MIN_MEASURE_SECS {
            return iters as f64 / elapsed;
        }
    }
}

fn measure_cell(chip: ChipId, model: ModelId) -> Cell {
    let soc: Soc = chip.build();
    let backend = create(vendor_backend(&soc).unwrap());
    let dep = backend.compile(&model.build(), &soc).unwrap();

    let mut state: SocState = soc.new_state(22.0);
    let unplanned_qps = measure_qps(|| {
        black_box(run_query(&soc, &dep.graph, &dep.schedule, &mut state).latency);
    });

    let plan = QueryPlan::new(&soc, &dep.graph, &dep.schedule);
    let mut state = soc.new_state(22.0);
    let planned_qps = measure_qps(|| {
        black_box(plan.execute(&mut state).latency);
    });

    Cell {
        chip: chip.to_string(),
        model: model.name(),
        unplanned_qps,
        planned_qps,
        speedup: planned_qps / unplanned_qps,
    }
}

/// One pass over every `reproduce all` artifact generator, total wall ms.
fn reproduce_all_wall_ms() -> f64 {
    let generators: &[fn() -> String] = &[
        mlperf_bench::table1,
        mlperf_bench::table2,
        mlperf_bench::table3,
        mlperf_bench::table4,
        mlperf_bench::figure6,
        mlperf_bench::figure7,
        mlperf_bench::offline_throughput,
        mlperf_bench::laptop,
        mlperf_bench::codepaths,
        mlperf_bench::all_insights,
        mlperf_bench::all_ablations,
    ];
    let t = Instant::now();
    for f in generators {
        black_box(f().len());
    }
    t.elapsed().as_secs_f64() * 1e3
}

fn main() {
    // Measure the artifact sweep first: process-cold compile caches and an
    // unheated core match the conditions the baseline was recorded under.
    let baseline_total_wall_ms = std::env::var("BENCH_QUERY_BASELINE_MS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(PRE_PLAN_BASELINE_MS);
    let total_wall_ms = reproduce_all_wall_ms();
    eprintln!(
        "reproduce all: {total_wall_ms:.3} ms (baseline {baseline_total_wall_ms:.3} ms, \
         {:.2}x)",
        baseline_total_wall_ms / total_wall_ms
    );

    let mut cells = Vec::new();
    for chip in [ChipId::Dimensity820, ChipId::Exynos990, ChipId::Snapdragon865Plus] {
        for model in [
            ModelId::MobileNetEdgeTpu,
            ModelId::SsdMobileNetV2,
            ModelId::DeepLabV3Plus,
        ] {
            let cell = measure_cell(chip, model);
            eprintln!(
                "{}/{}: {:.0} qps unplanned, {:.0} qps planned ({:.2}x)",
                cell.chip, cell.model, cell.unplanned_qps, cell.planned_qps, cell.speedup
            );
            cells.push(cell);
        }
    }

    let min_speedup = cells.iter().map(|c| c.speedup).fold(f64::INFINITY, f64::min);
    let geomean_speedup = (cells.iter().map(|c| c.speedup.ln()).sum::<f64>()
        / cells.len() as f64)
        .exp();

    let report = Report {
        cells,
        min_speedup,
        geomean_speedup,
        reproduce_all: ReproduceAll {
            baseline_total_wall_ms,
            total_wall_ms,
            speedup: baseline_total_wall_ms / total_wall_ms,
        },
    };
    let json = serde_json::to_string_pretty(&report).expect("serializes") + "\n";
    match std::fs::write("BENCH_query.json", &json) {
        Ok(()) => eprintln!(
            "wrote BENCH_query.json (min speedup {min_speedup:.2}x, geomean \
             {geomean_speedup:.2}x)"
        ),
        Err(e) => eprintln!("could not write BENCH_query.json: {e}"),
    }
}
