//! `bench_tune` — measure auto-tuner search throughput and write
//! `BENCH_tune.json`.
//!
//! ```sh
//! cargo run --release -p mlperf-bench --bin bench_tune
//! ```
//!
//! Two measurements. First, raw candidate-evaluation throughput on one
//! real submission cell's search space
//! ([`mobile_backend::tune::search_model`]): the same random supported
//! assignments scored one at a time ([`CostModel::evaluate`]) and in
//! K=8 lanes ([`CostModel::evaluate_batch`]), reporting both rates and
//! the batched speedup. The acceptance headline is the batched rate
//! (`target`: >= 100k candidates/sec). Second, the full-catalog gap
//! table ([`mlperf_mobile::tuning::run_tuning`]) on a cold cache,
//! reporting end-to-end search effort: candidates scored, partials
//! pruned by the branch-and-bound bound, and the prune rate.

use mlperf_mobile::app::submission_backend;
use mlperf_mobile::runner::CompileCache;
use mlperf_mobile::task::{suite, SuiteVersion};
use mlperf_mobile::tuning::{run_tuning, TuningConfig};
use mobile_backend::tune::search_model;
use nn_graph::models::ModelId;
use serde::Serialize;
use soc_sim::catalog::ChipId;
use soc_sim::search::CostModel;
use std::hint::black_box;
use std::time::Instant;

/// Candidates in each timed evaluation run.
const CANDIDATES: usize = 400_000;
/// Warmup candidates (faults in caches, settles the clock).
const WARMUP: usize = 20_000;
/// The acceptance bar: 100k candidates scored per second.
const TARGET_PER_SEC: f64 = 100_000.0;
/// The cell whose search space is measured (a real v1.0 submission
/// pair with a deep graph and a multi-engine target set).
const CHIP: ChipId = ChipId::Snapdragon888;
const MODEL: ModelId = ModelId::DeepLabV3Plus;

#[derive(Serialize)]
struct Measured {
    candidates: usize,
    lanes: usize,
    wall_secs: f64,
    candidates_per_sec: f64,
}

#[derive(Serialize)]
struct SearchEffort {
    cells: usize,
    beam_width: usize,
    candidates: u64,
    pruned: u64,
    /// Fraction of the explored frontier eliminated by the
    /// branch-and-bound lower bound before full evaluation.
    prune_rate: f64,
    wall_secs: f64,
    candidates_per_sec: f64,
}

#[derive(Serialize)]
struct Report {
    chip: String,
    backend: String,
    model: String,
    nodes: usize,
    targets: usize,
    /// The acceptance headline: K=8 batched evaluation rate.
    candidates_per_sec: f64,
    target_candidates_per_sec: f64,
    meets_target: bool,
    /// One candidate at a time through the scalar evaluator.
    scalar: Measured,
    /// Eight lanes per op-array pass through the batched evaluator.
    batched: Measured,
    batched_speedup: f64,
    /// Full-catalog `reproduce tuning` search effort, cold cache.
    search: SearchEffort,
}

/// A deterministic xorshift* stream; seeds the random walk over the
/// supported assignment space.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// `count` random assignments, each node drawn uniformly from its
/// supported targets.
fn random_assignments(model: &CostModel, count: usize, seed: u64) -> Vec<Vec<u8>> {
    let per_node: Vec<Vec<u8>> = (0..model.num_nodes())
        .map(|node| {
            (0..model.targets().len())
                .filter(|&t| model.is_supported(node, t))
                .map(|t| u8::try_from(t).expect("target space fits u8"))
                .collect()
        })
        .collect();
    let mut rng = XorShift(seed | 1);
    (0..count)
        .map(|_| {
            per_node
                .iter()
                .map(|options| options[(rng.next() % options.len() as u64) as usize])
                .collect()
        })
        .collect()
}

fn measure_scalar(model: &CostModel, assigns: &[Vec<u8>]) -> Measured {
    let t = Instant::now();
    let mut acc = 0.0f64;
    for a in assigns {
        acc += model.evaluate(a).latency_secs;
    }
    let wall_secs = t.elapsed().as_secs_f64();
    black_box(acc);
    Measured {
        candidates: assigns.len(),
        lanes: 1,
        wall_secs,
        candidates_per_sec: assigns.len() as f64 / wall_secs,
    }
}

fn measure_batched(model: &CostModel, assigns: &[Vec<u8>]) -> Measured {
    let t = Instant::now();
    let mut acc = 0.0f64;
    for chunk in assigns.chunks(soc_sim::search::MAX_LANES) {
        let lanes: Vec<&[u8]> = chunk.iter().map(Vec::as_slice).collect();
        for score in model.evaluate_batch(&lanes) {
            acc += score.latency_secs;
        }
    }
    let wall_secs = t.elapsed().as_secs_f64();
    black_box(acc);
    Measured {
        candidates: assigns.len(),
        lanes: soc_sim::search::MAX_LANES,
        wall_secs,
        candidates_per_sec: assigns.len() as f64 / wall_secs,
    }
}

fn main() {
    let cache = CompileCache::new();
    let version = SuiteVersion::V1_0;
    let defs = suite(version);
    let def = defs
        .iter()
        .find(|d| d.model == MODEL)
        .expect("model is in the v1.0 suite");
    let backend = submission_backend(CHIP, version, def.task);
    let deployment = cache
        .deployment(CHIP, backend, MODEL)
        .expect("catalog submission paths compile");
    let soc = CHIP.build();
    let model = search_model(&soc, &deployment.graph, &deployment.schedule);

    let assigns = random_assignments(&model, CANDIDATES, 0x9e37_79b9);
    let warmup = &assigns[..WARMUP.min(assigns.len())];
    black_box(measure_scalar(&model, warmup));
    black_box(measure_batched(&model, warmup));

    let scalar = measure_scalar(&model, &assigns);
    eprintln!(
        "scalar:  {} candidates in {:.2} s = {:.0} candidates/sec (K=1)",
        scalar.candidates, scalar.wall_secs, scalar.candidates_per_sec,
    );
    let batched = measure_batched(&model, &assigns);
    eprintln!(
        "batched: {} candidates in {:.2} s = {:.0} candidates/sec (K={})",
        batched.candidates, batched.wall_secs, batched.candidates_per_sec, batched.lanes,
    );

    let config = TuningConfig::new();
    let t = Instant::now();
    let report = run_tuning(&cache, &config).expect("catalog submission paths compile");
    let search_secs = t.elapsed().as_secs_f64();
    let candidates: u64 = report.cells.iter().map(|c| c.candidates).sum();
    let pruned: u64 = report.cells.iter().map(|c| c.pruned).sum();
    let search = SearchEffort {
        cells: report.cells.len(),
        beam_width: report.beam_width,
        candidates,
        pruned,
        prune_rate: if candidates + pruned > 0 {
            pruned as f64 / (candidates + pruned) as f64
        } else {
            0.0
        },
        wall_secs: search_secs,
        candidates_per_sec: candidates as f64 / search_secs,
    };
    eprintln!(
        "search:  {} cells, {} candidates + {} pruned in {:.2} s \
         (prune rate {:.1}%, {:.0} candidates/sec end to end)",
        search.cells,
        search.candidates,
        search.pruned,
        search.wall_secs,
        search.prune_rate * 100.0,
        search.candidates_per_sec,
    );

    let report = Report {
        chip: CHIP.to_string(),
        backend: backend.to_string(),
        model: format!("{MODEL:?}"),
        nodes: model.num_nodes(),
        targets: model.targets().len(),
        candidates_per_sec: batched.candidates_per_sec,
        target_candidates_per_sec: TARGET_PER_SEC,
        meets_target: batched.candidates_per_sec >= TARGET_PER_SEC,
        batched_speedup: batched.candidates_per_sec / scalar.candidates_per_sec,
        scalar,
        batched,
        search,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializes") + "\n";
    match std::fs::write("BENCH_tune.json", &json) {
        Ok(()) => eprintln!(
            "wrote BENCH_tune.json ({:.0}k candidates/sec batched, \
             {:.2}x over scalar, target {:.0}k: {})",
            report.candidates_per_sec / 1e3,
            report.batched_speedup,
            TARGET_PER_SEC / 1e3,
            if report.meets_target { "met" } else { "MISSED" },
        ),
        Err(e) => eprintln!("could not write BENCH_tune.json: {e}"),
    }
}
