//! `bench_batch` — measure the batched lockstep executor's aggregate
//! throughput and write `BENCH_batch.json`.
//!
//! ```sh
//! cargo run --release -p mlperf-bench --bin bench_batch
//! ```
//!
//! For each single-stream cell (chip x model) the compiled
//! [`soc_sim::plan::QueryPlan`] is executed three ways:
//!
//! 1. **Scalar** (the K=1 baseline): one device, one
//!    [`QueryPlan::execute`] per query — the planned hot loop
//!    `BENCH_query.json` already measures.
//! 2. **Batched, uniform fleet**: K identical devices stepped in lockstep
//!    through [`soc_sim::plan_batch::BatchPlan::execute_latencies`]. All
//!    lanes share identical frequency bits at every step, so the executor
//!    runs one op-array walk per step regardless of K — the
//!    population-sweep case the batching exists for.
//! 3. **Batched, distinct frequencies**: every lane pinned to its own
//!    single-point DVFS ladder, so no two lanes ever share frequency bits
//!    and every step pays K accumulator lanes through one walk — the
//!    adversarial bound.
//!
//! The reported `speedup` is aggregate lane-queries/sec at K over the
//! scalar K=1 qps. Every batched lane is bit-identical to a scalar run of
//! the same device (`crates/soc-sim/tests/plan_equivalence.rs`), so the
//! speedup is free of accuracy caveats. Results land in
//! `BENCH_batch.json` in the current directory.

use mobile_backend::registry::{create, vendor_backend};
use nn_graph::models::ModelId;
use serde::Serialize;
use soc_sim::catalog::ChipId;
use soc_sim::dvfs::DvfsLadder;
use soc_sim::plan::QueryPlan;
use soc_sim::plan_batch::{BatchPlan, BatchState};
use soc_sim::soc::{Soc, SocState};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Lane counts measured per cell.
const LANE_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
/// Warmup iterations before each timed series.
const WARMUP_ITERS: u32 = 1_000;
/// Each series runs until at least this much wall-clock has elapsed.
const MIN_MEASURE_SECS: f64 = 0.25;

#[derive(Serialize)]
struct LanePoint {
    lanes: usize,
    /// Aggregate simulated lane-queries per second.
    lane_qps: f64,
    /// `lane_qps` over the cell's scalar K=1 qps.
    speedup: f64,
}

#[derive(Serialize)]
struct Cell {
    chip: String,
    model: &'static str,
    scalar_qps: f64,
    /// Uniform fleet: K clones, frequency bits shared every step.
    uniform: Vec<LanePoint>,
    /// Adversarial fleet: every lane at its own frequency, no sharing.
    distinct: Vec<LanePoint>,
}

#[derive(Serialize)]
struct Report {
    /// Minimum uniform-fleet speedup at K=8 across cells — the
    /// acceptance headline (target >= 4x).
    min_uniform_speedup_k8: f64,
    geomean_uniform_speedup_k8: f64,
    min_distinct_speedup_k8: f64,
    cells: Vec<Cell>,
}

/// Runs `f` in a timed loop (after warmup) and returns iterations/sec.
fn measure_ips(mut f: impl FnMut()) -> f64 {
    for _ in 0..WARMUP_ITERS {
        f();
    }
    let mut iters: u64 = 0;
    let t = Instant::now();
    loop {
        // Batches keep the clock off the hot path.
        for _ in 0..256 {
            f();
        }
        iters += 256;
        let elapsed = t.elapsed().as_secs_f64();
        if elapsed >= MIN_MEASURE_SECS {
            return iters as f64 / elapsed;
        }
    }
}

/// K fresh identical devices — the uniform fleet.
fn uniform_states(soc: &Soc, lanes: usize) -> Vec<SocState> {
    (0..lanes).map(|_| soc.new_state(22.0)).collect()
}

/// K devices pinned to distinct single-point DVFS ladders, so no two
/// lanes ever share frequency bits.
fn distinct_states(soc: &Soc, lanes: usize) -> Vec<SocState> {
    (0..lanes)
        .map(|i| {
            let mut state = soc.new_state(22.0);
            state.dvfs = DvfsLadder::new(vec![1.0 - 0.001 * i as f64]);
            state
        })
        .collect()
}

fn measure_lane_points(
    plan: &Arc<QueryPlan>,
    scalar_qps: f64,
    states_for: impl Fn(usize) -> Vec<SocState>,
) -> Vec<LanePoint> {
    LANE_COUNTS
        .iter()
        .map(|&lanes| {
            let batch_plan = BatchPlan::broadcast(Arc::clone(plan), lanes);
            let mut batch = BatchState::gather(&states_for(lanes));
            let steps_per_sec = measure_ips(|| {
                black_box(batch_plan.execute_latencies(&mut batch).len());
            });
            let lane_qps = steps_per_sec * lanes as f64;
            LanePoint { lanes, lane_qps, speedup: lane_qps / scalar_qps }
        })
        .collect()
}

fn measure_cell(chip: ChipId, model: ModelId) -> Cell {
    let soc: Soc = chip.build();
    let backend = create(vendor_backend(&soc).unwrap());
    let dep = backend.compile(&model.build(), &soc).unwrap();
    let plan = Arc::new(QueryPlan::new(&soc, &dep.graph, &dep.schedule));

    let mut state = soc.new_state(22.0);
    let scalar_qps = measure_ips(|| {
        black_box(plan.execute(&mut state).latency);
    });

    let uniform = measure_lane_points(&plan, scalar_qps, |lanes| uniform_states(&soc, lanes));
    let distinct = measure_lane_points(&plan, scalar_qps, |lanes| distinct_states(&soc, lanes));

    Cell { chip: chip.to_string(), model: model.name(), scalar_qps, uniform, distinct }
}

fn speedup_at(points: &[LanePoint], lanes: usize) -> f64 {
    points
        .iter()
        .find(|p| p.lanes == lanes)
        .map_or(f64::NAN, |p| p.speedup)
}

fn main() {
    let mut cells = Vec::new();
    for chip in [ChipId::Dimensity820, ChipId::Exynos990, ChipId::Snapdragon865Plus] {
        for model in [
            ModelId::MobileNetEdgeTpu,
            ModelId::SsdMobileNetV2,
            ModelId::DeepLabV3Plus,
        ] {
            let cell = measure_cell(chip, model);
            eprintln!(
                "{}/{}: scalar {:.0} qps; K=8 uniform {:.2}x, distinct {:.2}x",
                cell.chip,
                cell.model,
                cell.scalar_qps,
                speedup_at(&cell.uniform, 8),
                speedup_at(&cell.distinct, 8),
            );
            cells.push(cell);
        }
    }

    let k8: Vec<f64> = cells.iter().map(|c| speedup_at(&c.uniform, 8)).collect();
    let min_uniform_speedup_k8 = k8.iter().copied().fold(f64::INFINITY, f64::min);
    let geomean_uniform_speedup_k8 =
        (k8.iter().map(|s| s.ln()).sum::<f64>() / k8.len() as f64).exp();
    let min_distinct_speedup_k8 = cells
        .iter()
        .map(|c| speedup_at(&c.distinct, 8))
        .fold(f64::INFINITY, f64::min);

    let report = Report { min_uniform_speedup_k8, geomean_uniform_speedup_k8, min_distinct_speedup_k8, cells };
    let json = serde_json::to_string_pretty(&report).expect("serializes") + "\n";
    match std::fs::write("BENCH_batch.json", &json) {
        Ok(()) => eprintln!(
            "wrote BENCH_batch.json (K=8 uniform min {min_uniform_speedup_k8:.2}x, geomean \
             {geomean_uniform_speedup_k8:.2}x; distinct min {min_distinct_speedup_k8:.2}x)"
        ),
        Err(e) => eprintln!("could not write BENCH_batch.json: {e}"),
    }
}
