//! `reproduce` — regenerate the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p mlperf-bench --bin reproduce            # everything
//! cargo run --release -p mlperf-bench --bin reproduce -- table3  # one artifact
//! ```

use std::env;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let out = match which {
        "table1" => mlperf_bench::table1(),
        "table2" => mlperf_bench::table2(),
        "table3" => mlperf_bench::table3(),
        "table4" => mlperf_bench::table4(),
        "figure6" => mlperf_bench::figure6(),
        "figure7" => mlperf_bench::figure7(),
        "offline" => mlperf_bench::offline_throughput(),
        "laptop" => mlperf_bench::laptop(),
        "codepaths" => mlperf_bench::codepaths(),
        "ablations" => mlperf_bench::all_ablations(),
        "insights" => mlperf_bench::all_insights(),
        "endtoend" => mlperf_bench::end_to_end_tax(),
        "extensions" => mlperf_bench::extensions_report(),
        "power" => mlperf_bench::power_report(),
        "all" => format!("{}\n{}\n{}", mlperf_bench::all_reports(), mlperf_bench::all_insights(), mlperf_bench::all_ablations()),
        other => {
            eprintln!(
                "unknown artifact {other:?}; expected one of: table1 table2 table3 table4 \
                 figure6 figure7 offline laptop codepaths insights ablations endtoend \
                 extensions power all"
            );
            std::process::exit(2);
        }
    };
    println!("{out}");
}
