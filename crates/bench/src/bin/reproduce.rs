//! `reproduce` — regenerate the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p mlperf-bench --bin reproduce            # everything
//! cargo run --release -p mlperf-bench --bin reproduce -- table3  # one artifact
//! ```
//!
//! `reproduce all` (or `reproduce` with no argument) also writes
//! `BENCH_suite.json` to the current directory: the wall-clock spent on
//! each artifact plus the shared compile-cache hit/miss counters, so perf
//! regressions in the sweep are visible run over run.

use serde::Serialize;
use std::env;
use std::time::Instant;

/// Wall-clock for one artifact, as recorded in `BENCH_suite.json`.
#[derive(Serialize)]
struct ArtifactTiming {
    name: &'static str,
    wall_ms: f64,
}

/// Compile-cache counters accumulated over the whole `all` sweep.
#[derive(Serialize)]
struct CacheStats {
    hits: usize,
    misses: usize,
}

/// The `BENCH_suite.json` schema.
#[derive(Serialize)]
struct SuiteTimings {
    artifacts: Vec<ArtifactTiming>,
    total_wall_ms: f64,
    compile_cache: CacheStats,
}

/// An artifact name and its generator.
type Artifact = (&'static str, fn() -> String);

/// Every artifact, in report order. The closure indirection keeps the
/// timing loop uniform.
const ARTIFACTS: &[Artifact] = &[
    ("table1", mlperf_bench::table1),
    ("table2", mlperf_bench::table2),
    ("table3", mlperf_bench::table3),
    ("table4", mlperf_bench::table4),
    ("figure6", mlperf_bench::figure6),
    ("figure7", mlperf_bench::figure7),
    ("offline", mlperf_bench::offline_throughput),
    ("laptop", mlperf_bench::laptop),
    ("codepaths", mlperf_bench::codepaths),
    ("insights", mlperf_bench::all_insights),
    ("ablations", mlperf_bench::all_ablations),
];

fn run_one(which: &str) -> Option<String> {
    match which {
        "endtoend" => Some(mlperf_bench::end_to_end_tax()),
        "extensions" => Some(mlperf_bench::extensions_report()),
        "power" => Some(mlperf_bench::power_report()),
        _ => ARTIFACTS.iter().find(|(name, _)| *name == which).map(|(_, f)| f()),
    }
}

fn run_all() -> String {
    let mut out = String::new();
    let mut timings = Vec::new();
    let total = Instant::now();
    for (name, f) in ARTIFACTS {
        let t = Instant::now();
        out.push_str(&f());
        out.push('\n');
        timings.push(ArtifactTiming { name, wall_ms: t.elapsed().as_secs_f64() * 1e3 });
    }
    let total_ms = total.elapsed().as_secs_f64() * 1e3;
    let cache = mlperf_bench::cache();
    let suite_json = SuiteTimings {
        artifacts: timings,
        total_wall_ms: total_ms,
        compile_cache: CacheStats { hits: cache.hits(), misses: cache.misses() },
    };
    match std::fs::write(
        "BENCH_suite.json",
        serde_json::to_string_pretty(&suite_json).expect("serializes") + "\n",
    ) {
        Ok(()) => eprintln!(
            "wrote BENCH_suite.json ({total_ms:.0} ms total, compile cache {} hits / {} misses)",
            cache.hits(),
            cache.misses()
        ),
        Err(e) => eprintln!("could not write BENCH_suite.json: {e}"),
    }
    out
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let out = if which == "all" {
        run_all()
    } else {
        run_one(which).unwrap_or_else(|| {
            eprintln!(
                "unknown artifact {which:?}; expected one of: table1 table2 table3 table4 \
                 figure6 figure7 offline laptop codepaths insights ablations endtoend \
                 extensions power all"
            );
            std::process::exit(2);
        })
    };
    println!("{out}");
}
