//! `reproduce` — regenerate the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p mlperf-bench --bin reproduce            # everything
//! cargo run --release -p mlperf-bench --bin reproduce -- table3  # one artifact
//! cargo run --release -p mlperf-bench --bin reproduce -- all --trace out/
//! cargo run --release -p mlperf-bench --bin reproduce -- all --profile out/
//! cargo run --release -p mlperf-bench --bin reproduce -- explain out/table3.json
//! ```
//!
//! `reproduce all` (or `reproduce` with no argument) also writes
//! `BENCH_suite.json` to the current directory: the wall-clock spent on
//! each artifact plus the shared compile-cache hit/miss counters, so perf
//! regressions in the sweep are visible run over run.
//!
//! With `--trace <dir>`, per-query run tracing is switched on and one JSON
//! trace file per artifact is written to `<dir>`: the artifact's
//! wall-clock, its metrics-registry delta (compile cache, run/query
//! counts, throttle statistics), per-spec wall-clock timings, and the full
//! [`mlperf_mobile::BenchmarkTrace`] of every harness run the artifact
//! made. Tracing never changes the printed reports.
//!
//! `--profile <dir>` implies `--trace <dir>` and additionally writes, per
//! artifact, `<artifact>.perfetto.json` (a Chrome/Perfetto trace-event
//! timeline — open it in `ui.perfetto.dev`) and `<artifact>.profile.txt`
//! (the per-cell engine-utilization/DVFS/energy report plus a
//! Prometheus-style exposition of the metrics delta).
//!
//! `explain <trace.json>` re-renders the profile report offline from a
//! previously written trace file — no benchmark runs.
//!
//! `--self-profile <dir>` profiles the *harness itself*: wall-clock
//! suite → cell → phase spans of real host execution are recorded into
//! per-thread ring buffers and written as `<dir>/self_profile.perfetto.json`
//! (one timeline track per runner-pool worker) plus
//! `<dir>/self_profile.txt` (phase totals, main-track coverage, the pool
//! report). `--serve <addr>` starts the live observability endpoint
//! (`/metrics`, `/healthz`, `/runs`) for the duration of the run;
//! `--serve-addr-file <path>` writes the bound address (useful with
//! `:0`), and `--serve-hold-ms <n>` keeps serving that long after the
//! artifacts finish so scrapers can catch a short run. None of these
//! change any printed report or score.

use mlperf_mobile::metrics::metrics;
use mlperf_mobile::obs;
use mlperf_mobile::profile::{benchmark_perfetto_json, ArtifactTrace};
use serde::Serialize;
use std::env;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Wall-clock for one artifact, as recorded in `BENCH_suite.json`.
#[derive(Serialize)]
struct ArtifactTiming {
    name: &'static str,
    wall_ms: f64,
}

/// Compile-cache counters accumulated over the whole `all` sweep.
#[derive(Serialize)]
struct CacheStats {
    hits: usize,
    misses: usize,
}

/// Per-sub-report wall-clock inside the `ablations` artifact.
#[derive(Serialize)]
struct AblationTiming {
    name: String,
    wall_ms: f64,
}

/// The `BENCH_suite.json` schema.
#[derive(Serialize)]
struct SuiteTimings {
    artifacts: Vec<ArtifactTiming>,
    /// Wall-clock of each sub-report inside the `ablations` artifact
    /// (sync/merge/sticky/interconnect/batch sweeps, tax, extensions,
    /// power), in report order.
    ablation_breakdown: Vec<AblationTiming>,
    total_wall_ms: f64,
    compile_cache: CacheStats,
    /// Sweep-engine cache counters (delta re-lowerings, schedule-equality
    /// estimate reuse, shared accuracy scores) over the whole sweep.
    sweep_cache: CacheStats,
}

/// An artifact name and its generator.
type Artifact = (&'static str, fn() -> String);

/// Every artifact, in report order. The closure indirection keeps the
/// timing loop uniform.
const ARTIFACTS: &[Artifact] = &[
    ("table1", mlperf_bench::table1),
    ("table2", mlperf_bench::table2),
    ("table3", mlperf_bench::table3),
    ("table4", mlperf_bench::table4),
    ("figure6", mlperf_bench::figure6),
    ("figure7", mlperf_bench::figure7),
    ("offline", mlperf_bench::offline_throughput),
    ("laptop", mlperf_bench::laptop),
    ("codepaths", mlperf_bench::codepaths),
    ("scenarios", mlperf_bench::scenarios),
    ("insights", mlperf_bench::all_insights),
    ("ablations", mlperf_bench::all_ablations),
];

fn generator_for(which: &str) -> Option<fn() -> String> {
    match which {
        "endtoend" => Some(mlperf_bench::end_to_end_tax),
        "extensions" => Some(mlperf_bench::extensions_report),
        "power" => Some(mlperf_bench::power_report),
        "fleet" => Some(mlperf_bench::fleet),
        "tuning" => Some(mlperf_bench::tuning),
        _ => ARTIFACTS.iter().find(|(name, _)| *name == which).map(|&(_, f)| f),
    }
}

fn write_file(path: &Path, contents: &str, what: &str) {
    match std::fs::write(path, contents) {
        Ok(()) => eprintln!("wrote {} ({what})", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Runs one artifact generator and, when tracing, writes its trace file:
/// the metrics delta across the call, the per-spec wall-clock entries it
/// queued, and every harness trace it deposited in the sink. In profile
/// mode the Perfetto timeline and the rendered profile report are written
/// alongside.
fn run_artifact(name: &str, f: fn() -> String, out: Option<(&Path, bool)>) -> (String, f64) {
    // One suite-level span per artifact; covers the generator and the
    // trace-file writes so the self-profile accounts the full wall-clock.
    let _suite_span = obs::span::span(obs::span::Phase::Suite, || name.to_owned());
    let before = metrics().snapshot();
    let pool_before = obs::pool::pool().snapshot();
    let t = Instant::now();
    let text = f();
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    if let Some((dir, profile)) = out {
        let artifact = ArtifactTrace {
            artifact: name.to_owned(),
            wall_ms,
            metrics: metrics().snapshot().since(&before),
            spec_timings: metrics().take_spec_timings(),
            pool: obs::pool::pool().snapshot().since(&pool_before),
            runs: mlperf_bench::trace_sink().drain(),
        };
        let path = dir.join(format!("{name}.json"));
        match std::fs::write(&path, artifact.to_json() + "\n") {
            Ok(()) => eprintln!("wrote {} ({} traced runs)", path.display(), artifact.runs.len()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
        if profile {
            write_file(
                &dir.join(format!("{name}.perfetto.json")),
                &benchmark_perfetto_json(&artifact.runs),
                "perfetto timeline",
            );
            write_file(
                &dir.join(format!("{name}.profile.txt")),
                &artifact.render(),
                "profile report",
            );
        }
    }
    (text, wall_ms)
}

fn run_all(out: Option<(&Path, bool)>) -> String {
    let mut text = String::new();
    let mut timings = Vec::new();
    let total = Instant::now();
    for (name, f) in ARTIFACTS {
        let (artifact_text, wall_ms) = run_artifact(name, *f, out);
        text.push_str(&artifact_text);
        text.push('\n');
        timings.push(ArtifactTiming { name, wall_ms });
    }
    let total_ms = total.elapsed().as_secs_f64() * 1e3;
    let _report_span =
        obs::span::span(obs::span::Phase::Report, || "BENCH_suite.json".to_owned());
    let cache = mlperf_bench::cache();
    let sweep = metrics().snapshot();
    let suite_json = SuiteTimings {
        artifacts: timings,
        ablation_breakdown: mlperf_bench::take_ablation_breakdown()
            .into_iter()
            .map(|(name, wall_ms)| AblationTiming { name, wall_ms })
            .collect(),
        total_wall_ms: total_ms,
        compile_cache: CacheStats { hits: cache.hits(), misses: cache.misses() },
        sweep_cache: CacheStats { hits: sweep.sweep_hits, misses: sweep.sweep_misses },
    };
    match std::fs::write(
        "BENCH_suite.json",
        serde_json::to_string_pretty(&suite_json).expect("serializes") + "\n",
    ) {
        Ok(()) => eprintln!(
            "wrote BENCH_suite.json ({total_ms:.0} ms total, compile cache {} hits / {} misses)",
            cache.hits(),
            cache.misses()
        ),
        Err(e) => eprintln!("could not write BENCH_suite.json: {e}"),
    }
    text
}

/// `explain <trace.json>`: parse a previously written per-artifact trace
/// file and re-render its profile report.
fn explain(path: &str) -> String {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("could not read {path}: {e}");
            std::process::exit(1);
        }
    };
    match ArtifactTrace::from_json(&text) {
        Ok(bundle) => bundle.render(),
        Err(e) => {
            eprintln!("{path} is not a reproduce trace file: {e}");
            std::process::exit(1);
        }
    }
}

/// Drains the recorded harness spans and writes the self-profile pair:
/// the Perfetto timeline of the host run and a plain-text summary with
/// per-phase totals, main-track coverage of `wall_ns`, and the pool
/// report.
fn write_self_profile(dir: &Path, wall_ns: u64) {
    use std::fmt::Write as _;
    obs::span::set_enabled(false);
    let profile = obs::span::drain();
    write_file(
        &dir.join("self_profile.perfetto.json"),
        &obs::span::self_profile_perfetto_json(&profile),
        "harness timeline",
    );
    let coverage = profile.track_coverage(obs::span::MAIN_TRACK, wall_ns) * 100.0;
    let mut text = format!(
        "harness self-profile ({:.2} ms wall)\n\
         main-track span coverage: {coverage:.1}%\n\
         spans: {} recorded, {} dropped\n",
        wall_ns as f64 / 1e6,
        profile.spans.len(),
        profile.dropped,
    );
    let _ = writeln!(text, "  {:<14} {:>7} {:>12}", "phase", "spans", "total_ms");
    for phase in [
        obs::span::Phase::Suite,
        obs::span::Phase::Cell,
        obs::span::Phase::Compile,
        obs::span::Phase::Calibrate,
        obs::span::Phase::Plan,
        obs::span::Phase::Execute,
        obs::span::Phase::SearchProbe,
        obs::span::Phase::Report,
    ] {
        let _ = writeln!(
            text,
            "  {:<14} {:>7} {:>12.3}",
            phase.name(),
            profile.phase_spans(phase).count(),
            profile.phase_total_ns(phase) as f64 / 1e6,
        );
    }
    text.push('\n');
    text.push_str(&obs::pool::pool_report(&obs::pool::pool().snapshot(), &metrics().snapshot()));
    write_file(&dir.join("self_profile.txt"), &text, "harness profile summary");
    eprintln!("self-profile: {coverage:.1}% of wall-clock covered by main-track spans");
}

fn usage_exit() -> ! {
    eprintln!(
        "usage: reproduce [ARTIFACT] [--trace DIR] [--profile DIR] [--self-profile DIR]\n\
         \x20      [--serve ADDR] [--serve-addr-file PATH] [--serve-hold-ms N]\n\
         \x20      reproduce explain <trace.json>\n\
         artifacts: table1 table2 table3 table4 figure6 figure7 offline laptop \
         codepaths scenarios insights ablations endtoend extensions power fleet tuning all"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("explain") {
        let Some(path) = args.get(1) else {
            eprintln!("explain requires a trace-file argument");
            usage_exit();
        };
        if args.len() > 2 {
            eprintln!("unexpected argument {:?}", args[2]);
            usage_exit();
        }
        println!("{}", explain(path));
        return;
    }

    let mut which: Option<String> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut profile = false;
    let mut self_profile_dir: Option<PathBuf> = None;
    let mut serve_addr: Option<String> = None;
    let mut serve_addr_file: Option<PathBuf> = None;
    let mut serve_hold_ms: u64 = 0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--trace" || arg == "--profile" {
            let Some(dir) = it.next() else {
                eprintln!("{arg} requires a directory argument");
                usage_exit();
            };
            out_dir = Some(PathBuf::from(dir));
            profile |= arg == "--profile";
        } else if arg == "--self-profile" {
            let Some(dir) = it.next() else {
                eprintln!("--self-profile requires a directory argument");
                usage_exit();
            };
            self_profile_dir = Some(PathBuf::from(dir));
        } else if arg == "--serve" {
            let Some(addr) = it.next() else {
                eprintln!("--serve requires an address argument (e.g. 127.0.0.1:0)");
                usage_exit();
            };
            serve_addr = Some(addr.clone());
        } else if arg == "--serve-addr-file" {
            let Some(path) = it.next() else {
                eprintln!("--serve-addr-file requires a path argument");
                usage_exit();
            };
            serve_addr_file = Some(PathBuf::from(path));
        } else if arg == "--serve-hold-ms" {
            let Some(n) = it.next().and_then(|n| n.parse().ok()) else {
                eprintln!("--serve-hold-ms requires an integer argument");
                usage_exit();
            };
            serve_hold_ms = n;
        } else if which.is_none() {
            which = Some(arg.clone());
        } else {
            eprintln!("unexpected argument {arg:?}");
            usage_exit();
        }
    }
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("could not create trace directory {}: {e}", dir.display());
            std::process::exit(1);
        }
        mlperf_bench::set_tracing(true);
    }
    if let Some(dir) = &self_profile_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("could not create self-profile directory {}: {e}", dir.display());
            std::process::exit(1);
        }
        obs::span::set_enabled(true);
        obs::span::set_track(obs::span::MAIN_TRACK);
    }
    let server = serve_addr.map(|addr| match obs::ObsServer::start(&addr) {
        Ok(server) => {
            eprintln!("serving /metrics /healthz /runs on http://{}", server.addr());
            if let Some(path) = &serve_addr_file {
                write_file(path, &format!("{}\n", server.addr()), "bound address");
            }
            server
        }
        Err(e) => {
            eprintln!("could not bind {addr}: {e}");
            std::process::exit(1);
        }
    });
    let out = out_dir.as_deref().map(|d| (d, profile));

    let which = which.unwrap_or_else(|| "all".to_owned());
    let profiled = Instant::now();
    let text = if which == "all" {
        run_all(out)
    } else if let Some(f) = generator_for(&which) {
        run_artifact(&which, f, out).0
    } else {
        eprintln!("unknown artifact {which:?}");
        usage_exit();
    };
    let wall_ns = u64::try_from(profiled.elapsed().as_nanos()).unwrap_or(u64::MAX);
    if let Some(dir) = &self_profile_dir {
        write_self_profile(dir, wall_ns);
    }
    if let Some(mut server) = server {
        if serve_hold_ms > 0 {
            eprintln!("holding the observability endpoint for {serve_hold_ms} ms");
            std::thread::sleep(std::time::Duration::from_millis(serve_hold_ms));
        }
        server.stop();
    }
    println!("{text}");
}
