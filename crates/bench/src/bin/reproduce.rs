//! `reproduce` — regenerate the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p mlperf-bench --bin reproduce            # everything
//! cargo run --release -p mlperf-bench --bin reproduce -- table3  # one artifact
//! cargo run --release -p mlperf-bench --bin reproduce -- all --trace out/
//! cargo run --release -p mlperf-bench --bin reproduce -- all --profile out/
//! cargo run --release -p mlperf-bench --bin reproduce -- explain out/table3.json
//! ```
//!
//! `reproduce all` (or `reproduce` with no argument) also writes
//! `BENCH_suite.json` to the current directory: the wall-clock spent on
//! each artifact plus the shared compile-cache hit/miss counters, so perf
//! regressions in the sweep are visible run over run.
//!
//! With `--trace <dir>`, per-query run tracing is switched on and one JSON
//! trace file per artifact is written to `<dir>`: the artifact's
//! wall-clock, its metrics-registry delta (compile cache, run/query
//! counts, throttle statistics), per-spec wall-clock timings, and the full
//! [`mlperf_mobile::BenchmarkTrace`] of every harness run the artifact
//! made. Tracing never changes the printed reports.
//!
//! `--profile <dir>` implies `--trace <dir>` and additionally writes, per
//! artifact, `<artifact>.perfetto.json` (a Chrome/Perfetto trace-event
//! timeline — open it in `ui.perfetto.dev`) and `<artifact>.profile.txt`
//! (the per-cell engine-utilization/DVFS/energy report plus a
//! Prometheus-style exposition of the metrics delta).
//!
//! `explain <trace.json>` re-renders the profile report offline from a
//! previously written trace file — no benchmark runs.

use mlperf_mobile::metrics::metrics;
use mlperf_mobile::profile::{benchmark_perfetto_json, ArtifactTrace};
use serde::Serialize;
use std::env;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Wall-clock for one artifact, as recorded in `BENCH_suite.json`.
#[derive(Serialize)]
struct ArtifactTiming {
    name: &'static str,
    wall_ms: f64,
}

/// Compile-cache counters accumulated over the whole `all` sweep.
#[derive(Serialize)]
struct CacheStats {
    hits: usize,
    misses: usize,
}

/// Per-sub-report wall-clock inside the `ablations` artifact.
#[derive(Serialize)]
struct AblationTiming {
    name: String,
    wall_ms: f64,
}

/// The `BENCH_suite.json` schema.
#[derive(Serialize)]
struct SuiteTimings {
    artifacts: Vec<ArtifactTiming>,
    /// Wall-clock of each sub-report inside the `ablations` artifact
    /// (sync/merge/sticky/interconnect/batch sweeps, tax, extensions,
    /// power), in report order.
    ablation_breakdown: Vec<AblationTiming>,
    total_wall_ms: f64,
    compile_cache: CacheStats,
    /// Sweep-engine cache counters (delta re-lowerings, schedule-equality
    /// estimate reuse, shared accuracy scores) over the whole sweep.
    sweep_cache: CacheStats,
}

/// An artifact name and its generator.
type Artifact = (&'static str, fn() -> String);

/// Every artifact, in report order. The closure indirection keeps the
/// timing loop uniform.
const ARTIFACTS: &[Artifact] = &[
    ("table1", mlperf_bench::table1),
    ("table2", mlperf_bench::table2),
    ("table3", mlperf_bench::table3),
    ("table4", mlperf_bench::table4),
    ("figure6", mlperf_bench::figure6),
    ("figure7", mlperf_bench::figure7),
    ("offline", mlperf_bench::offline_throughput),
    ("laptop", mlperf_bench::laptop),
    ("codepaths", mlperf_bench::codepaths),
    ("scenarios", mlperf_bench::scenarios),
    ("insights", mlperf_bench::all_insights),
    ("ablations", mlperf_bench::all_ablations),
];

fn generator_for(which: &str) -> Option<fn() -> String> {
    match which {
        "endtoend" => Some(mlperf_bench::end_to_end_tax),
        "extensions" => Some(mlperf_bench::extensions_report),
        "power" => Some(mlperf_bench::power_report),
        _ => ARTIFACTS.iter().find(|(name, _)| *name == which).map(|&(_, f)| f),
    }
}

fn write_file(path: &Path, contents: &str, what: &str) {
    match std::fs::write(path, contents) {
        Ok(()) => eprintln!("wrote {} ({what})", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Runs one artifact generator and, when tracing, writes its trace file:
/// the metrics delta across the call, the per-spec wall-clock entries it
/// queued, and every harness trace it deposited in the sink. In profile
/// mode the Perfetto timeline and the rendered profile report are written
/// alongside.
fn run_artifact(name: &str, f: fn() -> String, out: Option<(&Path, bool)>) -> (String, f64) {
    let before = metrics().snapshot();
    let t = Instant::now();
    let text = f();
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    if let Some((dir, profile)) = out {
        let artifact = ArtifactTrace {
            artifact: name.to_owned(),
            wall_ms,
            metrics: metrics().snapshot().since(&before),
            spec_timings: metrics().take_spec_timings(),
            runs: mlperf_bench::trace_sink().drain(),
        };
        let path = dir.join(format!("{name}.json"));
        match std::fs::write(&path, artifact.to_json() + "\n") {
            Ok(()) => eprintln!("wrote {} ({} traced runs)", path.display(), artifact.runs.len()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
        if profile {
            write_file(
                &dir.join(format!("{name}.perfetto.json")),
                &benchmark_perfetto_json(&artifact.runs),
                "perfetto timeline",
            );
            write_file(
                &dir.join(format!("{name}.profile.txt")),
                &artifact.render(),
                "profile report",
            );
        }
    }
    (text, wall_ms)
}

fn run_all(out: Option<(&Path, bool)>) -> String {
    let mut text = String::new();
    let mut timings = Vec::new();
    let total = Instant::now();
    for (name, f) in ARTIFACTS {
        let (artifact_text, wall_ms) = run_artifact(name, *f, out);
        text.push_str(&artifact_text);
        text.push('\n');
        timings.push(ArtifactTiming { name, wall_ms });
    }
    let total_ms = total.elapsed().as_secs_f64() * 1e3;
    let cache = mlperf_bench::cache();
    let sweep = metrics().snapshot();
    let suite_json = SuiteTimings {
        artifacts: timings,
        ablation_breakdown: mlperf_bench::take_ablation_breakdown()
            .into_iter()
            .map(|(name, wall_ms)| AblationTiming { name, wall_ms })
            .collect(),
        total_wall_ms: total_ms,
        compile_cache: CacheStats { hits: cache.hits(), misses: cache.misses() },
        sweep_cache: CacheStats { hits: sweep.sweep_hits, misses: sweep.sweep_misses },
    };
    match std::fs::write(
        "BENCH_suite.json",
        serde_json::to_string_pretty(&suite_json).expect("serializes") + "\n",
    ) {
        Ok(()) => eprintln!(
            "wrote BENCH_suite.json ({total_ms:.0} ms total, compile cache {} hits / {} misses)",
            cache.hits(),
            cache.misses()
        ),
        Err(e) => eprintln!("could not write BENCH_suite.json: {e}"),
    }
    text
}

/// `explain <trace.json>`: parse a previously written per-artifact trace
/// file and re-render its profile report.
fn explain(path: &str) -> String {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("could not read {path}: {e}");
            std::process::exit(1);
        }
    };
    match ArtifactTrace::from_json(&text) {
        Ok(bundle) => bundle.render(),
        Err(e) => {
            eprintln!("{path} is not a reproduce trace file: {e}");
            std::process::exit(1);
        }
    }
}

fn usage_exit() -> ! {
    eprintln!(
        "usage: reproduce [ARTIFACT] [--trace DIR] [--profile DIR]\n\
         \x20      reproduce explain <trace.json>\n\
         artifacts: table1 table2 table3 table4 figure6 figure7 offline laptop \
         codepaths scenarios insights ablations endtoend extensions power all"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("explain") {
        let Some(path) = args.get(1) else {
            eprintln!("explain requires a trace-file argument");
            usage_exit();
        };
        if args.len() > 2 {
            eprintln!("unexpected argument {:?}", args[2]);
            usage_exit();
        }
        println!("{}", explain(path));
        return;
    }

    let mut which: Option<String> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut profile = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--trace" || arg == "--profile" {
            let Some(dir) = it.next() else {
                eprintln!("{arg} requires a directory argument");
                usage_exit();
            };
            out_dir = Some(PathBuf::from(dir));
            profile |= arg == "--profile";
        } else if which.is_none() {
            which = Some(arg.clone());
        } else {
            eprintln!("unexpected argument {arg:?}");
            usage_exit();
        }
    }
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("could not create trace directory {}: {e}", dir.display());
            std::process::exit(1);
        }
        mlperf_bench::set_tracing(true);
    }
    let out = out_dir.as_deref().map(|d| (d, profile));

    let which = which.unwrap_or_else(|| "all".to_owned());
    let text = if which == "all" {
        run_all(out)
    } else if let Some(f) = generator_for(&which) {
        run_artifact(&which, f, out).0
    } else {
        eprintln!("unknown artifact {which:?}");
        usage_exit();
    };
    println!("{text}");
}
