//! `reproduce` — regenerate the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p mlperf-bench --bin reproduce            # everything
//! cargo run --release -p mlperf-bench --bin reproduce -- table3  # one artifact
//! cargo run --release -p mlperf-bench --bin reproduce -- all --trace out/
//! ```
//!
//! `reproduce all` (or `reproduce` with no argument) also writes
//! `BENCH_suite.json` to the current directory: the wall-clock spent on
//! each artifact plus the shared compile-cache hit/miss counters, so perf
//! regressions in the sweep are visible run over run.
//!
//! With `--trace <dir>`, per-query run tracing is switched on and one JSON
//! trace file per artifact is written to `<dir>`: the artifact's
//! wall-clock, its metrics-registry delta (compile cache, run/query
//! counts, throttle statistics), per-spec wall-clock timings, and the full
//! [`mlperf_mobile::BenchmarkTrace`] of every harness run the artifact
//! made. Tracing never changes the printed reports.

use mlperf_mobile::metrics::{metrics, MetricsSnapshot, SpecTiming};
use mlperf_mobile::BenchmarkTrace;
use serde::Serialize;
use std::env;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Wall-clock for one artifact, as recorded in `BENCH_suite.json`.
#[derive(Serialize)]
struct ArtifactTiming {
    name: &'static str,
    wall_ms: f64,
}

/// Compile-cache counters accumulated over the whole `all` sweep.
#[derive(Serialize)]
struct CacheStats {
    hits: usize,
    misses: usize,
}

/// The `BENCH_suite.json` schema.
#[derive(Serialize)]
struct SuiteTimings {
    artifacts: Vec<ArtifactTiming>,
    total_wall_ms: f64,
    compile_cache: CacheStats,
}

/// The per-artifact `--trace` file schema (`<dir>/<artifact>.json`).
#[derive(Serialize)]
struct ArtifactTrace {
    artifact: String,
    wall_ms: f64,
    metrics: MetricsSnapshot,
    spec_timings: Vec<SpecTiming>,
    runs: Vec<BenchmarkTrace>,
}

/// An artifact name and its generator.
type Artifact = (&'static str, fn() -> String);

/// Every artifact, in report order. The closure indirection keeps the
/// timing loop uniform.
const ARTIFACTS: &[Artifact] = &[
    ("table1", mlperf_bench::table1),
    ("table2", mlperf_bench::table2),
    ("table3", mlperf_bench::table3),
    ("table4", mlperf_bench::table4),
    ("figure6", mlperf_bench::figure6),
    ("figure7", mlperf_bench::figure7),
    ("offline", mlperf_bench::offline_throughput),
    ("laptop", mlperf_bench::laptop),
    ("codepaths", mlperf_bench::codepaths),
    ("insights", mlperf_bench::all_insights),
    ("ablations", mlperf_bench::all_ablations),
];

fn generator_for(which: &str) -> Option<fn() -> String> {
    match which {
        "endtoend" => Some(mlperf_bench::end_to_end_tax),
        "extensions" => Some(mlperf_bench::extensions_report),
        "power" => Some(mlperf_bench::power_report),
        _ => ARTIFACTS.iter().find(|(name, _)| *name == which).map(|&(_, f)| f),
    }
}

/// Runs one artifact generator and, when tracing, writes its trace file:
/// the metrics delta across the call, the per-spec wall-clock entries it
/// queued, and every harness trace it deposited in the sink.
fn run_artifact(name: &str, f: fn() -> String, trace_dir: Option<&Path>) -> (String, f64) {
    let before = metrics().snapshot();
    let t = Instant::now();
    let text = f();
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    if let Some(dir) = trace_dir {
        let artifact = ArtifactTrace {
            artifact: name.to_owned(),
            wall_ms,
            metrics: metrics().snapshot().since(&before),
            spec_timings: metrics().take_spec_timings(),
            runs: mlperf_bench::trace_sink().drain(),
        };
        let path = dir.join(format!("{name}.json"));
        let json = serde_json::to_string_pretty(&artifact).expect("trace serializes") + "\n";
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote {} ({} traced runs)", path.display(), artifact.runs.len()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
    (text, wall_ms)
}

fn run_all(trace_dir: Option<&Path>) -> String {
    let mut out = String::new();
    let mut timings = Vec::new();
    let total = Instant::now();
    for (name, f) in ARTIFACTS {
        let (text, wall_ms) = run_artifact(name, *f, trace_dir);
        out.push_str(&text);
        out.push('\n');
        timings.push(ArtifactTiming { name, wall_ms });
    }
    let total_ms = total.elapsed().as_secs_f64() * 1e3;
    let cache = mlperf_bench::cache();
    let suite_json = SuiteTimings {
        artifacts: timings,
        total_wall_ms: total_ms,
        compile_cache: CacheStats { hits: cache.hits(), misses: cache.misses() },
    };
    match std::fs::write(
        "BENCH_suite.json",
        serde_json::to_string_pretty(&suite_json).expect("serializes") + "\n",
    ) {
        Ok(()) => eprintln!(
            "wrote BENCH_suite.json ({total_ms:.0} ms total, compile cache {} hits / {} misses)",
            cache.hits(),
            cache.misses()
        ),
        Err(e) => eprintln!("could not write BENCH_suite.json: {e}"),
    }
    out
}

fn usage_exit() -> ! {
    eprintln!(
        "usage: reproduce [ARTIFACT] [--trace DIR]\n\
         artifacts: table1 table2 table3 table4 figure6 figure7 offline laptop \
         codepaths insights ablations endtoend extensions power all"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut which: Option<String> = None;
    let mut trace_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--trace" {
            let Some(dir) = it.next() else {
                eprintln!("--trace requires a directory argument");
                usage_exit();
            };
            trace_dir = Some(PathBuf::from(dir));
        } else if which.is_none() {
            which = Some(arg.clone());
        } else {
            eprintln!("unexpected argument {arg:?}");
            usage_exit();
        }
    }
    if let Some(dir) = &trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("could not create trace directory {}: {e}", dir.display());
            std::process::exit(1);
        }
        mlperf_bench::set_tracing(true);
    }

    let which = which.unwrap_or_else(|| "all".to_owned());
    let out = if which == "all" {
        run_all(trace_dir.as_deref())
    } else if let Some(f) = generator_for(&which) {
        run_artifact(&which, f, trace_dir.as_deref()).0
    } else {
        eprintln!("unknown artifact {which:?}");
        usage_exit();
    };
    println!("{out}");
}
