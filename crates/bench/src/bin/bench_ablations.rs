//! `bench_ablations` — measure the sweep-engine ablation speedup and
//! write `BENCH_ablations.json`.
//!
//! ```sh
//! cargo run --release -p mlperf-bench --bin bench_ablations
//! ```
//!
//! Three measurements, one file:
//!
//! 1. **Serial cold**: one pass over [`mlperf_bench::ablations::serial`]'s
//!    `all_ablations()` with process-cold caches — the pre-sweep-engine
//!    execution model (every sub-report recompiles its plans, every run
//!    re-scores accuracy, every calibration re-bisects). Measured first so
//!    nothing warms the caches under it.
//! 2. **Warm medians**: serial vs sweep `all_ablations()` after the
//!    caches are populated — the steady-state cost of regenerating the
//!    ablation artifact mid-sweep.
//! 3. **Baseline ratio**: the sweep pass against the recorded pre-PR
//!    `ablations` wall-clock from `BENCH_suite.json`. Override with
//!    `BENCH_ABLATIONS_BASELINE_MS` when re-baselining on other hardware.
//!
//! Both paths are byte-identical in output (locked by the
//! `*_matches_serial_byte_for_byte` tests in `crates/bench/src/ablations.rs`);
//! only the wall-clock differs. Results land in `BENCH_ablations.json` in
//! the current directory.

use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// `reproduce all`'s `ablations` artifact wall-clock on the reference
/// host immediately before the sweep engine (from `BENCH_suite.json` at
/// that commit).
const PRE_SWEEP_BASELINE_MS: f64 = 39.10;

/// Timed iterations per warm series (median reported).
const WARM_ITERS: usize = 9;

#[derive(Serialize)]
struct Report {
    /// Pre-sweep-engine `ablations` wall-clock (ms) this run is compared
    /// against.
    baseline_ms: f64,
    /// One serial pass with process-cold caches: the pre-PR cost model.
    serial_cold_wall_ms: f64,
    /// Median serial pass after cache warmup.
    serial_warm_wall_ms: f64,
    /// Median sweep (parallel + delta re-lowering + shared caches) pass
    /// after cache warmup.
    sweep_warm_wall_ms: f64,
    /// `baseline_ms / sweep_warm_wall_ms` — the headline target (>= 5x).
    speedup_vs_baseline: f64,
    /// `serial_cold_wall_ms / sweep_warm_wall_ms`, measured in-process.
    speedup_vs_serial_cold: f64,
    /// `serial_warm_wall_ms / sweep_warm_wall_ms`: what parallel assembly
    /// buys over serial evaluation once caches are shared.
    speedup_vs_serial_warm: f64,
}

/// Runs `f` `WARM_ITERS` times and returns the median wall-clock in ms.
fn median_wall_ms(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..WARM_ITERS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let baseline_ms = std::env::var("BENCH_ABLATIONS_BASELINE_MS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(PRE_SWEEP_BASELINE_MS);

    // Cold pass first: every cache in the process is empty, matching the
    // pre-sweep-engine execution model.
    let t = Instant::now();
    black_box(mlperf_bench::ablations::serial::all_ablations().len());
    let serial_cold_wall_ms = t.elapsed().as_secs_f64() * 1e3;
    eprintln!("serial cold: {serial_cold_wall_ms:.2} ms");

    let serial_warm_wall_ms = median_wall_ms(|| {
        black_box(mlperf_bench::ablations::serial::all_ablations().len());
    });
    eprintln!("serial warm median: {serial_warm_wall_ms:.2} ms");

    let sweep_warm_wall_ms = median_wall_ms(|| {
        black_box(mlperf_bench::all_ablations().len());
    });
    eprintln!("sweep warm median: {sweep_warm_wall_ms:.2} ms");

    let report = Report {
        baseline_ms,
        serial_cold_wall_ms,
        serial_warm_wall_ms,
        sweep_warm_wall_ms,
        speedup_vs_baseline: baseline_ms / sweep_warm_wall_ms,
        speedup_vs_serial_cold: serial_cold_wall_ms / sweep_warm_wall_ms,
        speedup_vs_serial_warm: serial_warm_wall_ms / sweep_warm_wall_ms,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializes") + "\n";
    match std::fs::write("BENCH_ablations.json", &json) {
        Ok(()) => eprintln!(
            "wrote BENCH_ablations.json ({:.2}x vs baseline, {:.2}x vs serial cold)",
            report.speedup_vs_baseline, report.speedup_vs_serial_cold
        ),
        Err(e) => eprintln!("could not write BENCH_ablations.json: {e}"),
    }
}
