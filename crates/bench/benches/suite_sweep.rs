//! Criterion bench: the full cross-chip suite sweep, serial vs parallel.
//!
//! This measures the tentpole optimisation end-to-end: the same
//! chips x tasks matrix executed by `SuiteRunner::with_threads(1)` (serial,
//! but still compile-cached) and by a per-core worker pool. Smoke-scale
//! rules keep each iteration short; the *ratio* between the two series is
//! the speedup the parallel runner buys on this host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlperf_mobile::app::AppConfig;
use mlperf_mobile::harness::RunRules;
use mlperf_mobile::runner::SuiteRunner;
use mlperf_mobile::sut_impl::DatasetScale;
use mlperf_mobile::task::SuiteVersion;
use soc_sim::catalog::ChipId;
use std::hint::black_box;

const CHIPS: [ChipId; 3] = [ChipId::Dimensity1100, ChipId::Exynos2100, ChipId::Snapdragon888];

fn smoke_config() -> AppConfig {
    AppConfig { rules: RunRules::smoke_test(), offline_classification: true, scenario_matrix: false, tuner: None }
}

fn bench_suite_sweep(c: &mut Criterion) {
    let config = smoke_config();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut group = c.benchmark_group("suite_sweep");
    for (label, threads) in [("serial", 1), ("parallel", cores)] {
        group.bench_function(BenchmarkId::new(label, threads), |b| {
            b.iter(|| {
                // A fresh runner per iteration so compile work is included
                // and both series pay it equally.
                let runner = SuiteRunner::with_threads(threads);
                let reports = runner
                    .sweep(&CHIPS, SuiteVersion::V1_0, &config, DatasetScale::Reduced(48))
                    .expect("sweep compiles");
                black_box(reports.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_suite_sweep);
criterion_main!(benches);
