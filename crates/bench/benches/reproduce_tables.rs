//! `cargo bench` entry point that prints every reproduced table and
//! figure (harness = false: not a criterion bench, a reproduction run).
//!
//! This is the artifact regeneration pass: Table 1-4, Figures 6-7, the
//! offline throughput numbers and the laptop results, each annotated with
//! the paper's published values.

fn main() {
    println!("{}", mlperf_bench::all_reports());
}
