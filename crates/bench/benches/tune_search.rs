//! Criterion bench: auto-tuner candidate evaluation and end-to-end
//! search.
//!
//! `evaluate` compares the scalar (K=1) and batched (K=8) candidate
//! evaluators over the same 4,096 random supported assignments on one
//! real submission cell's search space — the speedup here is the whole
//! point of the lockstep lane design. `search` runs the full beam /
//! branch-and-bound `tune()` of that cell under both objectives, so a
//! regression in pruning or dedup shows up as wall-clock, not just
//! counter drift.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlperf_mobile::app::submission_backend;
use mlperf_mobile::runner::CompileCache;
use mlperf_mobile::task::{suite, SuiteVersion};
use mobile_backend::tune::{search_model, tune, TunerConfig};
use nn_graph::models::ModelId;
use soc_sim::catalog::ChipId;
use soc_sim::search::MAX_LANES;
use std::hint::black_box;

const CANDIDATES: usize = 4_096;
const CHIP: ChipId = ChipId::Snapdragon888;
const MODEL: ModelId = ModelId::DeepLabV3Plus;

/// Deterministic xorshift* stream for the assignment walk.
fn assignments(model: &soc_sim::search::CostModel, count: usize) -> Vec<Vec<u8>> {
    let per_node: Vec<Vec<u8>> = (0..model.num_nodes())
        .map(|node| {
            (0..model.targets().len())
                .filter(|&t| model.is_supported(node, t))
                .map(|t| u8::try_from(t).expect("target space fits u8"))
                .collect()
        })
        .collect();
    let mut state = 0x9e37_79b9_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    (0..count)
        .map(|_| {
            per_node
                .iter()
                .map(|options| options[(next() % options.len() as u64) as usize])
                .collect()
        })
        .collect()
}

fn bench_tune_search(c: &mut Criterion) {
    let cache = CompileCache::new();
    let version = SuiteVersion::V1_0;
    let defs = suite(version);
    let def = defs
        .iter()
        .find(|d| d.model == MODEL)
        .expect("model is in the v1.0 suite");
    let backend = submission_backend(CHIP, version, def.task);
    let deployment = cache
        .deployment(CHIP, backend, MODEL)
        .expect("catalog submission paths compile");
    let soc = CHIP.build();
    let model = search_model(&soc, &deployment.graph, &deployment.schedule);
    let assigns = assignments(&model, CANDIDATES);

    let mut group = c.benchmark_group("tune_search");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("evaluate", "k1"), |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for a in &assigns {
                acc += model.evaluate(a).latency_secs;
            }
            black_box(acc)
        });
    });

    group.bench_function(BenchmarkId::new("evaluate", "k8"), |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for chunk in assigns.chunks(MAX_LANES) {
                let lanes: Vec<&[u8]> = chunk.iter().map(Vec::as_slice).collect();
                for score in model.evaluate_batch(&lanes) {
                    acc += score.latency_secs;
                }
            }
            black_box(acc)
        });
    });

    for config in [TunerConfig::latency(), TunerConfig::energy()] {
        group.bench_function(BenchmarkId::new("search", config.objective.to_string()), |b| {
            b.iter(|| {
                black_box(
                    tune(&soc, &deployment.graph, &deployment.schedule, &config)
                        .stats
                        .candidates,
                )
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_tune_search);
criterion_main!(benches);
