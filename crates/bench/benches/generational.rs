//! Criterion bench: full benchmark runs (accuracy + performance) across
//! generations — the machinery behind Figure 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlperf_mobile::harness::{run_benchmark, RunRules};
use mlperf_mobile::sut_impl::DatasetScale;
use mlperf_mobile::task::{suite, SuiteVersion};
use mobile_backend::registry::{create, vendor_backend};
use soc_sim::catalog::ChipId;
use std::hint::black_box;

fn bench_generational(c: &mut Criterion) {
    let mut group = c.benchmark_group("benchmark_run");
    group.sample_size(10);
    for (chip, version) in [
        (ChipId::Exynos990, SuiteVersion::V0_7),
        (ChipId::Exynos2100, SuiteVersion::V1_0),
    ] {
        let def = suite(version).into_iter().next().unwrap(); // classification
        let backend = create(vendor_backend(&chip.build()).unwrap());
        group.bench_function(BenchmarkId::new("classification", chip.to_string()), |b| {
            b.iter(|| {
                let score = run_benchmark(
                    chip,
                    backend.as_ref(),
                    &def,
                    &RunRules::smoke_test(),
                    DatasetScale::Reduced(128),
                    false,
                )
                .unwrap();
                black_box(score.latency_ms())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generational);
criterion_main!(benches);
