//! Criterion bench: single-stream query simulation across the v0.7
//! chipsets and tasks (the machinery behind Figure 7).
//!
//! Measures host-side simulator throughput; the *simulated* latencies are
//! printed by the `reproduce` binary / `reproduce_tables` bench target.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mobile_backend::registry::{create, vendor_backend};
use nn_graph::models::ModelId;
use soc_sim::catalog::ChipId;
use soc_sim::executor::run_query;
use std::hint::black_box;

fn bench_single_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_stream_query");
    for chip in [ChipId::Dimensity820, ChipId::Exynos990, ChipId::Snapdragon865Plus] {
        for model in [
            ModelId::MobileNetEdgeTpu,
            ModelId::SsdMobileNetV2,
            ModelId::DeepLabV3Plus,
        ] {
            let soc = chip.build();
            let backend = create(vendor_backend(&soc).unwrap());
            let dep = backend.compile(&model.build(), &soc).unwrap();
            let mut state = soc.new_state(22.0);
            group.bench_function(BenchmarkId::new(chip.to_string(), model.name()), |b| {
                b.iter(|| {
                    let r = run_query(&soc, &dep.graph, &dep.schedule, &mut state);
                    black_box(r.latency)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_single_stream);
criterion_main!(benches);
