//! Criterion bench: the batched lockstep executor across lane counts.
//!
//! `scalar` replays one compiled [`soc_sim::plan::QueryPlan`] per query —
//! the K=1 baseline. `uniform/K` steps K identical devices in lockstep
//! (lanes share frequency bits, so each step runs one op-array walk);
//! `distinct/K` pins every lane to its own DVFS point so no walk is ever
//! shared — the adversarial bound. Per-iteration time divided by K gives
//! the per-lane-query cost; every batched lane is bit-identical to its
//! scalar twin (`crates/soc-sim/tests/plan_equivalence.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mobile_backend::registry::{create, vendor_backend};
use nn_graph::models::ModelId;
use soc_sim::catalog::ChipId;
use soc_sim::dvfs::DvfsLadder;
use soc_sim::plan::QueryPlan;
use soc_sim::plan_batch::{BatchPlan, BatchState};
use std::hint::black_box;
use std::sync::Arc;

fn bench_batch_lanes(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_lanes");
    let chip = ChipId::Dimensity820;
    let soc = chip.build();
    let backend = create(vendor_backend(&soc).unwrap());
    let dep = backend.compile(&ModelId::MobileNetEdgeTpu.build(), &soc).unwrap();
    let plan = Arc::new(QueryPlan::new(&soc, &dep.graph, &dep.schedule));
    let cell = format!("{chip}/{}", ModelId::MobileNetEdgeTpu.name());

    let mut state = soc.new_state(22.0);
    group.bench_function(BenchmarkId::new("scalar", &cell), |b| {
        b.iter(|| black_box(plan.execute(&mut state).latency));
    });

    for lanes in [2usize, 4, 8, 16] {
        let batch_plan = BatchPlan::broadcast(Arc::clone(&plan), lanes);

        let uniform: Vec<_> = (0..lanes).map(|_| soc.new_state(22.0)).collect();
        let mut batch = BatchState::gather(&uniform);
        group.bench_function(BenchmarkId::new(format!("uniform/{lanes}"), &cell), |b| {
            b.iter(|| black_box(batch_plan.execute_latencies(&mut batch).len()));
        });

        let distinct: Vec<_> = (0..lanes)
            .map(|i| {
                let mut s = soc.new_state(22.0);
                s.dvfs = DvfsLadder::new(vec![1.0 - 0.001 * i as f64]);
                s
            })
            .collect();
        let mut batch = BatchState::gather(&distinct);
        group.bench_function(BenchmarkId::new(format!("distinct/{lanes}"), &cell), |b| {
            b.iter(|| black_box(batch_plan.execute_latencies(&mut batch).len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_lanes);
criterion_main!(benches);
