//! Criterion bench: the single-stream query hot loop, planned vs unplanned.
//!
//! `unplanned` calls [`soc_sim::executor::run_query`], which re-validates
//! the schedule and re-walks the graph on every query — the historical
//! per-query cost. `planned` compiles a [`soc_sim::plan::QueryPlan`] once
//! and replays its flat op arrays per query, the way the harness now runs.
//! The ratio between the two series is the speedup compiled plans buy on
//! this host; both produce bit-identical results (see
//! `crates/soc-sim/tests/plan_equivalence.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mobile_backend::registry::{create, vendor_backend};
use nn_graph::models::ModelId;
use soc_sim::catalog::ChipId;
use soc_sim::executor::run_query;
use soc_sim::plan::QueryPlan;
use std::hint::black_box;

fn bench_query_hot_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_hot_loop");
    for chip in [ChipId::Dimensity820, ChipId::Exynos990, ChipId::Snapdragon865Plus] {
        for model in [
            ModelId::MobileNetEdgeTpu,
            ModelId::SsdMobileNetV2,
            ModelId::DeepLabV3Plus,
        ] {
            let soc = chip.build();
            let backend = create(vendor_backend(&soc).unwrap());
            let dep = backend.compile(&model.build(), &soc).unwrap();
            let cell = format!("{chip}/{}", model.name());

            let mut state = soc.new_state(22.0);
            group.bench_function(BenchmarkId::new("unplanned", &cell), |b| {
                b.iter(|| {
                    let r = run_query(&soc, &dep.graph, &dep.schedule, &mut state);
                    black_box(r.latency)
                });
            });

            let plan = QueryPlan::new(&soc, &dep.graph, &dep.schedule);
            let mut state = soc.new_state(22.0);
            group.bench_function(BenchmarkId::new("planned", &cell), |b| {
                b.iter(|| {
                    let r = plan.execute(&mut state);
                    black_box(r.latency)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_query_hot_loop);
criterion_main!(benches);
