//! Criterion bench: fleet population sweeps end to end.
//!
//! Each iteration runs a whole [`mlperf_mobile::fleet::run_fleet`]
//! population — sampling, lane packing, batched execution, histogram
//! merge — so throughput here is fully-simulated devices per second.
//! `mixed` is the default consumer profile over the whole catalog (the
//! acceptance case for `BENCH_fleet.json`); `uniform` collapses every
//! unit to one silicon bin, exercising the dedup + unit-memo fast
//! path. `serial` pins one worker to expose the per-shard cost without
//! pool scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlperf_mobile::fleet::{run_fleet, FleetConfig};
use mlperf_mobile::runner::CompileCache;
use soc_sim::fleet::FleetProfile;
use std::hint::black_box;

const DEVICES: u64 = 8_192;

fn bench_fleet_throughput(c: &mut Criterion) {
    let cache = CompileCache::new();
    let mut group = c.benchmark_group("fleet_throughput");
    group.sample_size(10);

    let mixed = FleetConfig::new(DEVICES, 7);
    group.bench_function(BenchmarkId::new("mixed", DEVICES), |b| {
        b.iter(|| black_box(run_fleet(&cache, &mixed).unwrap().lane_queries));
    });

    let mut uniform = FleetConfig::new(DEVICES, 7);
    uniform.profile = FleetProfile::uniform(22.0);
    group.bench_function(BenchmarkId::new("uniform", DEVICES), |b| {
        b.iter(|| black_box(run_fleet(&cache, &uniform).unwrap().lane_queries));
    });

    let mut serial = FleetConfig::new(DEVICES, 7);
    serial.threads = 1;
    group.bench_function(BenchmarkId::new("serial", DEVICES), |b| {
        b.iter(|| black_box(run_fleet(&cache, &serial).unwrap().lane_queries));
    });

    group.finish();
}

criterion_group!(benches, bench_fleet_throughput);
criterion_main!(benches);
