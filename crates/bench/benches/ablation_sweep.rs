//! Criterion bench: the full ablation artifact, serial vs sweep engine.
//!
//! `serial` regenerates every sub-report the historical way — each knob
//! re-partitions and re-lowers its schedule, each harness run re-scores
//! accuracy. `sweep` is the production path: delta re-lowering over a
//! [`soc_sim::plan::SweepPlan`], parallel sub-report evaluation with
//! order-preserving assembly, and the process-wide compile/accuracy
//! caches. Both render byte-identical reports (locked by the
//! `*_matches_serial_byte_for_byte` tests in
//! `crates/bench/src/ablations.rs`); the ratio is the sweep engine's
//! speedup on this host. Caches are warmed before the timed series so the
//! bench measures the steady-state regeneration cost `reproduce all`
//! pays, not one-time compilation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_ablation_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sweep");
    group.sample_size(20);

    // Warm the compile, plan, calibration, and accuracy-score caches.
    black_box(mlperf_bench::ablations::serial::all_ablations().len());
    black_box(mlperf_bench::all_ablations().len());

    group.bench_function("serial", |b| {
        b.iter(|| black_box(mlperf_bench::ablations::serial::all_ablations().len()));
    });
    group.bench_function("sweep", |b| {
        b.iter(|| black_box(mlperf_bench::all_ablations().len()));
    });
    group.finish();
}

criterion_group!(benches, bench_ablation_sweep);
criterion_main!(benches);
