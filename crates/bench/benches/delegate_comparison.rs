//! Criterion bench: compile + estimate through the NNAPI and Neuron code
//! paths on the Dimensity 1100 — the machinery behind Table 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mobile_backend::backend::Backend;
use mobile_backend::backends::{Neuron, Nnapi};
use nn_graph::models::ModelId;
use soc_sim::catalog::ChipId;
use std::hint::black_box;

fn bench_delegates(c: &mut Criterion) {
    let soc = ChipId::Dimensity1100.build();
    let mut group = c.benchmark_group("delegate_compile");
    for model in [ModelId::MobileNetEdgeTpu, ModelId::MobileDetSsd, ModelId::DeepLabV3Plus] {
        let reference = model.build();
        group.bench_function(BenchmarkId::new("nnapi", model.name()), |b| {
            b.iter(|| {
                let dep = Nnapi::default().compile(&reference, &soc).unwrap();
                black_box(dep.estimate_ms(&soc))
            });
        });
        group.bench_function(BenchmarkId::new("neuron", model.name()), |b| {
            b.iter(|| {
                let dep = Neuron.compile(&reference, &soc).unwrap();
                black_box(dep.estimate_ms(&soc))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_delegates);
criterion_main!(benches);
