//! Criterion bench: the substrates themselves — graph construction,
//! partitioning, metric computation, quantization, preprocessing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mobile_data::datasets::{SyntheticCoco, SyntheticImageNet};
use mobile_data::image::Image;
use mobile_data::preprocess::Pipeline;
use nn_graph::models::ModelId;
use quant::{CalibrationMethod, Calibrator};
use soc_sim::catalog::ChipId;
use std::hint::black_box;

fn bench_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_build");
    for model in ModelId::ALL {
        group.bench_function(BenchmarkId::from_parameter(model.name()), |b| {
            b.iter(|| black_box(model.build().len()));
        });
    }
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    use mobile_backend::backend::Backend;
    use mobile_backend::backends::Snpe;
    let soc = ChipId::Snapdragon888.build();
    let reference = ModelId::DeepLabV3Plus.build();
    c.bench_function("partition_deeplab_snpe", |b| {
        b.iter(|| black_box(Snpe.compile(&reference, &soc).unwrap().schedule.num_stages()));
    });
}

fn bench_metrics(c: &mut Criterion) {
    let coco = SyntheticCoco::with_len(1, 200);
    let gts: Vec<_> = (0..200).map(|i| coco.objects(i)).collect();
    let dets: Vec<_> = gts
        .iter()
        .map(|objs| {
            objs.iter()
                .map(|o| mobile_data::types::Detection { class: o.class, score: 0.9, bbox: o.bbox })
                .collect::<Vec<_>>()
        })
        .collect();
    c.bench_function("coco_map_200_images", |b| {
        b.iter(|| black_box(mobile_metrics::map::coco_map(&gts, &dets)));
    });

    let imagenet = SyntheticImageNet::with_len(2, 10_000);
    let labels: Vec<u32> = (0..10_000).map(|i| imagenet.label(i)).collect();
    c.bench_function("top1_10k", |b| {
        b.iter(|| black_box(mobile_metrics::accuracy::top1_accuracy(&labels, &labels)));
    });
}

fn bench_quant_and_preprocess(c: &mut Criterion) {
    let activations: Vec<f32> = (0..100_000).map(|i| (i as f32 * 0.37).sin() * 6.0).collect();
    c.bench_function("ptq_calibration_100k", |b| {
        b.iter(|| {
            let mut cal = Calibrator::new(CalibrationMethod::Percentile(99.9), nn_graph::DataType::U8);
            cal.observe(&activations);
            black_box(cal.finish().unwrap().scale)
        });
    });

    let raw = Image::synthetic(256, 384, 3, 7);
    c.bench_function("preprocess_classification", |b| {
        b.iter(|| black_box(Pipeline::Classification.apply(&raw).mean()));
    });
}

criterion_group!(
    benches,
    bench_graph_build,
    bench_partition,
    bench_metrics,
    bench_quant_and_preprocess
);
criterion_main!(benches);
