//! Criterion bench: offline (accelerator-level-parallel) runs — the
//! machinery behind the Section 7.2 throughput figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mobile_backend::registry::{create, vendor_backend};
use nn_graph::models::ModelId;
use soc_sim::catalog::ChipId;
use soc_sim::executor::run_offline;
use std::hint::black_box;

fn bench_offline(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_run");
    group.sample_size(20);
    for chip in [ChipId::Exynos990, ChipId::Snapdragon865Plus, ChipId::CoreI7_1165G7] {
        let soc = chip.build();
        let backend = create(vendor_backend(&soc).unwrap());
        let dep = backend.compile(&ModelId::MobileNetEdgeTpu.build(), &soc).unwrap();
        group.bench_function(BenchmarkId::new("24576_samples", chip.to_string()), |b| {
            b.iter(|| {
                let mut state = soc.new_state(22.0);
                let r = run_offline(&soc, &dep.graph, &dep.offline_streams, &mut state, 24_576, 32);
                black_box(r.throughput_fps)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_offline);
criterion_main!(benches);
