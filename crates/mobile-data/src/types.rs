//! Ground-truth and prediction types shared between datasets and metrics.

use serde::{Deserialize, Serialize};

/// An axis-aligned box in normalized `[0, 1]` coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    /// Left edge.
    pub x_min: f32,
    /// Top edge.
    pub y_min: f32,
    /// Right edge.
    pub x_max: f32,
    /// Bottom edge.
    pub y_max: f32,
}

impl BBox {
    /// Creates a box, clamping to `[0, 1]` and enforcing min <= max.
    #[must_use]
    pub fn new(x_min: f32, y_min: f32, x_max: f32, y_max: f32) -> Self {
        let x0 = x_min.clamp(0.0, 1.0);
        let y0 = y_min.clamp(0.0, 1.0);
        let x1 = x_max.clamp(0.0, 1.0).max(x0);
        let y1 = y_max.clamp(0.0, 1.0).max(y0);
        BBox { x_min: x0, y_min: y0, x_max: x1, y_max: y1 }
    }

    /// Box area.
    #[must_use]
    pub fn area(&self) -> f32 {
        (self.x_max - self.x_min).max(0.0) * (self.y_max - self.y_min).max(0.0)
    }

    /// Intersection-over-union with another box.
    #[must_use]
    pub fn iou(&self, other: &BBox) -> f32 {
        let ix0 = self.x_min.max(other.x_min);
        let iy0 = self.y_min.max(other.y_min);
        let ix1 = self.x_max.min(other.x_max);
        let iy1 = self.y_max.min(other.y_max);
        let inter = (ix1 - ix0).max(0.0) * (iy1 - iy0).max(0.0);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }
}

/// A ground-truth object annotation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GtObject {
    /// COCO category id (1..=90).
    pub class: u32,
    /// Bounding box.
    pub bbox: BBox,
}

/// A predicted detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Predicted category id.
    pub class: u32,
    /// Confidence score in `[0, 1]`.
    pub score: f32,
    /// Predicted box.
    pub bbox: BBox,
}

/// A dense per-pixel label map (segmentation ground truth or prediction).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelMap {
    /// Height in pixels.
    pub height: usize,
    /// Width in pixels.
    pub width: usize,
    /// Row-major class labels.
    pub labels: Vec<u8>,
}

impl LabelMap {
    /// Allocates a map filled with class 0.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    #[must_use]
    pub fn zeros(height: usize, width: usize) -> Self {
        assert!(height > 0 && width > 0);
        LabelMap { height, width, labels: vec![0; height * width] }
    }

    /// Label accessor.
    ///
    /// # Panics
    ///
    /// Panics out of bounds.
    #[must_use]
    pub fn get(&self, y: usize, x: usize) -> u8 {
        assert!(y < self.height && x < self.width);
        self.labels[y * self.width + x]
    }

    /// Pixel count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the map is empty (never true for constructed maps).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// A SQuAD-style extractive answer span over passage tokens, inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnswerSpan {
    /// First token index of the answer.
    pub start: u32,
    /// Last token index of the answer (inclusive).
    pub end: u32,
}

impl AnswerSpan {
    /// Creates a span.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    #[must_use]
    pub fn new(start: u32, end: u32) -> Self {
        assert!(end >= start, "span end before start");
        AnswerSpan { start, end }
    }

    /// Number of tokens in the span.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.end - self.start + 1
    }

    /// Spans are never empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Token overlap with another span.
    #[must_use]
    pub fn overlap(&self, other: &AnswerSpan) -> u32 {
        let lo = self.start.max(other.start);
        let hi = self.end.min(other.end);
        if hi >= lo {
            hi - lo + 1
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bbox_iou_identical() {
        let b = BBox::new(0.1, 0.1, 0.5, 0.5);
        assert!((b.iou(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bbox_iou_disjoint() {
        let a = BBox::new(0.0, 0.0, 0.2, 0.2);
        let b = BBox::new(0.5, 0.5, 0.9, 0.9);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn bbox_iou_half_overlap() {
        let a = BBox::new(0.0, 0.0, 0.4, 0.4);
        let b = BBox::new(0.2, 0.0, 0.6, 0.4);
        // inter = 0.2*0.4 = 0.08; union = 0.16+0.16-0.08 = 0.24.
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn bbox_clamps_and_orders() {
        let b = BBox::new(0.8, -0.5, 0.2, 2.0);
        assert!(b.x_max >= b.x_min);
        assert!(b.y_min >= 0.0 && b.y_max <= 1.0);
    }

    #[test]
    fn span_overlap() {
        let a = AnswerSpan::new(5, 10);
        let b = AnswerSpan::new(8, 12);
        assert_eq!(a.overlap(&b), 3);
        assert_eq!(a.len(), 6);
        let c = AnswerSpan::new(20, 22);
        assert_eq!(a.overlap(&c), 0);
    }

    #[test]
    fn label_map_indexing() {
        let mut m = LabelMap::zeros(4, 6);
        m.labels[6 + 2] = 9;
        assert_eq!(m.get(1, 2), 9);
        assert_eq!(m.len(), 24);
        assert!(!m.is_empty());
    }
}
