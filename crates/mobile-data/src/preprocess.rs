//! Task preprocessing pipelines (paper Section 4.1).
//!
//! "The typical image-preprocessing tasks — such as resizing, cropping, and
//! normalization — depend on the ML model... all submitters must follow the
//! same steps." Each pipeline reproduces the reference implementation's
//! stages for its task.

use crate::image::Image;
use serde::{Deserialize, Serialize};

/// The preprocessing pipeline of one benchmark task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pipeline {
    /// ImageNet classification: resize shorter side to 256-equivalent,
    /// center-crop 224x224, normalize to [-1, 1].
    Classification,
    /// COCO detection v0.7: resize to 300x300, normalize.
    DetectionV07,
    /// COCO detection v1.0 (MobileDets): resize to 320x320, normalize.
    DetectionV10,
    /// ADE20K segmentation: crop/scale to 512x512, normalize.
    Segmentation,
}

impl Pipeline {
    /// Final spatial size produced by the pipeline.
    #[must_use]
    pub fn output_size(self) -> usize {
        match self {
            Pipeline::Classification => 224,
            Pipeline::DetectionV07 => 300,
            Pipeline::DetectionV10 => 320,
            Pipeline::Segmentation => 512,
        }
    }

    /// Applies the pipeline to a raw image.
    ///
    /// # Panics
    ///
    /// Panics if the input is smaller than the crop target (real raw
    /// dataset images never are).
    #[must_use]
    pub fn apply(self, raw: &Image) -> Image {
        let mean = [0.5, 0.5, 0.5];
        let std = [0.5, 0.5, 0.5];
        match self {
            Pipeline::Classification => {
                // Resize so the shorter side is 256, center-crop 224.
                let (h, w) = scale_shorter_side(raw.height, raw.width, 256);
                raw.resize_bilinear(h, w)
                    .center_crop(224, 224)
                    .normalize(&mean, &std)
            }
            Pipeline::DetectionV07 => raw.resize_bilinear(300, 300).normalize(&mean, &std),
            Pipeline::DetectionV10 => raw.resize_bilinear(320, 320).normalize(&mean, &std),
            Pipeline::Segmentation => {
                // Scale the shorter side to 512 then center-crop 512x512.
                let (h, w) = scale_shorter_side(raw.height, raw.width, 512);
                raw.resize_bilinear(h, w)
                    .center_crop(512, 512)
                    .normalize(&mean, &std)
            }
        }
    }
}

fn scale_shorter_side(h: usize, w: usize, target: usize) -> (usize, usize) {
    if h <= w {
        let scale = target as f64 / h as f64;
        (target, (w as f64 * scale).round() as usize)
    } else {
        let scale = target as f64 / w as f64;
        ((h as f64 * scale).round() as usize, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_yields_224() {
        let raw = Image::synthetic(256, 384, 3, 1);
        let out = Pipeline::Classification.apply(&raw);
        assert_eq!((out.height, out.width, out.channels), (224, 224, 3));
    }

    #[test]
    fn detection_sizes_match_model_generations() {
        let raw = Image::synthetic(480, 640, 3, 2);
        assert_eq!(Pipeline::DetectionV07.apply(&raw).height, 300);
        assert_eq!(Pipeline::DetectionV10.apply(&raw).width, 320);
        assert_eq!(Pipeline::DetectionV07.output_size(), 300);
        assert_eq!(Pipeline::DetectionV10.output_size(), 320);
    }

    #[test]
    fn segmentation_yields_512() {
        let raw = Image::synthetic(512, 683, 3, 3);
        let out = Pipeline::Segmentation.apply(&raw);
        assert_eq!((out.height, out.width), (512, 512));
    }

    #[test]
    fn output_is_normalized() {
        let raw = Image::synthetic(256, 256, 3, 4);
        let out = Pipeline::Classification.apply(&raw);
        assert!(out.data.iter().all(|&v| (-1.0..=1.0).contains(&v)));
        // And genuinely uses the negative half (not still [0,1]).
        assert!(out.data.iter().any(|&v| v < -0.05));
    }

    #[test]
    fn shorter_side_scaling_portrait_and_landscape() {
        assert_eq!(scale_shorter_side(480, 640, 256), (256, 341));
        assert_eq!(scale_shorter_side(640, 480, 256), (341, 256));
        assert_eq!(scale_shorter_side(256, 256, 256), (256, 256));
    }
}
