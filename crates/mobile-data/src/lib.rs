//! Synthetic stand-ins for the MLPerf Mobile datasets plus the real
//! preprocessing and calibration-set machinery.
//!
//! ImageNet 2012, COCO 2017, ADE20K and SQuAD v1.1 are licensed datasets;
//! per the substitution policy in DESIGN.md this crate generates seeded
//! synthetic equivalents with full ground truth, while the preprocessing
//! pipelines (resize / crop / normalize) and calibration-set selection are
//! implemented for real and exercised by the benchmark code paths.
//!
//! # Examples
//!
//! ```
//! use mobile_data::datasets::{Dataset, SyntheticImageNet};
//! use mobile_data::preprocess::Pipeline;
//!
//! let imagenet = SyntheticImageNet::with_len(42, 100);
//! let raw = imagenet.image(0);
//! let tensor = Pipeline::Classification.apply(&raw);
//! assert_eq!((tensor.height, tensor.width), (224, 224));
//! assert!(imagenet.label(0) >= 1);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod calibration_set;
pub mod datasets;
pub mod extended;
pub mod image;
pub mod preprocess;
pub mod types;

pub use calibration_set::{approved_calibration_indices, is_approved_set, CALIBRATION_SET_SIZE};
pub use datasets::{
    Dataset, QaSample, SyntheticAde20k, SyntheticCoco, SyntheticImageNet, SyntheticSquad,
};
pub use extended::{SyntheticDiv2k, SyntheticLibriSpeech, Utterance};
pub use image::Image;
pub use preprocess::Pipeline;
pub use types::{AnswerSpan, BBox, Detection, GtObject, LabelMap};
