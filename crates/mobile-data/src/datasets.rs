//! Seeded synthetic stand-ins for the four benchmark datasets.
//!
//! Each dataset generates its ground truth deterministically from
//! `(dataset_seed, sample_index)`, so the whole suite is reproducible from
//! a single seed — mirroring the LoadGen's seeded sample selection (paper
//! Section 4.1). Images/token streams are produced lazily.

use crate::image::Image;
use crate::types::{AnswerSpan, BBox, GtObject, LabelMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Common interface over the synthetic datasets.
pub trait Dataset {
    /// Dataset name as reported in logs.
    fn name(&self) -> &str;
    /// Number of samples in the (validation) split.
    fn len(&self) -> usize;
    /// True if the dataset has no samples (never, for these).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn sample_rng(seed: u64, index: usize) -> StdRng {
    // Mix index into the seed with a splitmix-style finalizer so nearby
    // indices produce unrelated streams.
    let mut z = seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

// ---------------------------------------------------------------------------
// ImageNet (classification)
// ---------------------------------------------------------------------------

/// Synthetic ImageNet-2012 validation split: 50 000 samples, 1000 classes.
#[derive(Debug, Clone)]
pub struct SyntheticImageNet {
    seed: u64,
    len: usize,
}

/// ImageNet class count (background class 0 excluded from labels).
pub const IMAGENET_CLASSES: u32 = 1000;
/// Official validation-split size.
pub const IMAGENET_VAL_LEN: usize = 50_000;

impl SyntheticImageNet {
    /// Full-size validation split.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self::with_len(seed, IMAGENET_VAL_LEN)
    }

    /// Reduced split for fast tests.
    #[must_use]
    pub fn with_len(seed: u64, len: usize) -> Self {
        SyntheticImageNet { seed, len }
    }

    /// Ground-truth label for a sample (1..=1000; 0 is background).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[must_use]
    pub fn label(&self, index: usize) -> u32 {
        assert!(index < self.len);
        sample_rng(self.seed, index).gen_range(1..=IMAGENET_CLASSES)
    }

    /// The raw (pre-preprocessing) image for a sample.
    #[must_use]
    pub fn image(&self, index: usize) -> Image {
        assert!(index < self.len);
        Image::synthetic(256, 256, 3, self.seed ^ index as u64)
    }
}

impl Dataset for SyntheticImageNet {
    fn name(&self) -> &str {
        "ImageNet 2012 (synthetic)"
    }
    fn len(&self) -> usize {
        self.len
    }
}

// ---------------------------------------------------------------------------
// COCO (detection)
// ---------------------------------------------------------------------------

/// Synthetic COCO-2017 validation split: 5000 samples, 90 categories.
#[derive(Debug, Clone)]
pub struct SyntheticCoco {
    seed: u64,
    len: usize,
}

/// COCO category count (ids 1..=90).
pub const COCO_CLASSES: u32 = 90;
/// Official validation-split size.
pub const COCO_VAL_LEN: usize = 5_000;

impl SyntheticCoco {
    /// Full-size validation split.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self::with_len(seed, COCO_VAL_LEN)
    }

    /// Reduced split for fast tests.
    #[must_use]
    pub fn with_len(seed: u64, len: usize) -> Self {
        SyntheticCoco { seed, len }
    }

    /// Ground-truth objects for a sample (1–8 boxes).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[must_use]
    pub fn objects(&self, index: usize) -> Vec<GtObject> {
        assert!(index < self.len);
        let mut rng = sample_rng(self.seed, index);
        let n = rng.gen_range(1..=8);
        (0..n)
            .map(|_| {
                let cx: f32 = rng.gen_range(0.1..0.9);
                let cy: f32 = rng.gen_range(0.1..0.9);
                let w: f32 = rng.gen_range(0.05..0.4);
                let h: f32 = rng.gen_range(0.05..0.4);
                GtObject {
                    class: rng.gen_range(1..=COCO_CLASSES),
                    bbox: BBox::new(cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0),
                }
            })
            .collect()
    }

    /// The raw image for a sample.
    #[must_use]
    pub fn image(&self, index: usize) -> Image {
        assert!(index < self.len);
        Image::synthetic(480, 640, 3, self.seed ^ (index as u64) << 1)
    }
}

impl Dataset for SyntheticCoco {
    fn name(&self) -> &str {
        "COCO 2017 (synthetic)"
    }
    fn len(&self) -> usize {
        self.len
    }
}

// ---------------------------------------------------------------------------
// ADE20K (segmentation)
// ---------------------------------------------------------------------------

/// Synthetic ADE20K validation split with the benchmark's 32-class
/// remapping (31 frequent classes + "other"; paper Section 3.2).
#[derive(Debug, Clone)]
pub struct SyntheticAde20k {
    seed: u64,
    len: usize,
    resolution: usize,
}

/// Benchmark class count after remapping.
pub const ADE20K_CLASSES: u8 = 32;
/// Official validation-split size.
pub const ADE20K_VAL_LEN: usize = 2_000;

impl SyntheticAde20k {
    /// Full split at evaluation resolution 64 (maps are class-statistics
    /// equivalent to 512x512; see DESIGN.md quality model).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self::with_params(seed, ADE20K_VAL_LEN, 64)
    }

    /// Custom split size and label-map resolution.
    ///
    /// # Panics
    ///
    /// Panics if resolution is zero.
    #[must_use]
    pub fn with_params(seed: u64, len: usize, resolution: usize) -> Self {
        assert!(resolution > 0);
        SyntheticAde20k { seed, len, resolution }
    }

    /// Label-map resolution (square).
    #[must_use]
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Generator seed; together with `len` and `resolution` it fully
    /// determines every label map, so `(seed, len, resolution)` is a
    /// complete identity key for derived-statistics caches.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Ground-truth label map: blocky regions of 2–6 classes, biased
    /// toward frequent classes like real scene parsing data.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[must_use]
    pub fn label_map(&self, index: usize) -> LabelMap {
        assert!(index < self.len);
        let mut rng = sample_rng(self.seed, index);
        let r = self.resolution;
        let mut map = LabelMap::zeros(r, r);
        // Background region: a frequent class.
        let bg: u8 = rng.gen_range(0..6);
        map.labels.fill(bg);
        // Superimpose 2-6 rectangular "objects".
        let regions = rng.gen_range(2..=6);
        for _ in 0..regions {
            // Zipf-ish class bias: frequent classes dominate.
            let class: u8 = if rng.gen_bool(0.7) {
                rng.gen_range(0..8)
            } else {
                rng.gen_range(8..ADE20K_CLASSES)
            };
            let y0 = rng.gen_range(0..r);
            let x0 = rng.gen_range(0..r);
            let h = rng.gen_range(r / 8..=r / 2);
            let w = rng.gen_range(r / 8..=r / 2);
            for y in y0..(y0 + h).min(r) {
                for x in x0..(x0 + w).min(r) {
                    map.labels[y * r + x] = class;
                }
            }
        }
        map
    }

    /// The raw image for a sample.
    #[must_use]
    pub fn image(&self, index: usize) -> Image {
        assert!(index < self.len);
        Image::synthetic(512, 683, 3, self.seed ^ (index as u64) << 2)
    }
}

impl Dataset for SyntheticAde20k {
    fn name(&self) -> &str {
        "ADE20K (synthetic, 32-class)"
    }
    fn len(&self) -> usize {
        self.len
    }
}

// ---------------------------------------------------------------------------
// SQuAD (question answering)
// ---------------------------------------------------------------------------

/// One synthetic QA sample: passage/question token ids plus answer span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QaSample {
    /// Concatenated question+passage token ids (WordPiece-style).
    pub tokens: Vec<u32>,
    /// Ground-truth answer span over `tokens`.
    pub answer: AnswerSpan,
}

/// Synthetic "mini SQuAD v1.1 dev" split (paper Table 1).
#[derive(Debug, Clone)]
pub struct SyntheticSquad {
    seed: u64,
    len: usize,
}

/// Mini-dev split size used by the benchmark app.
pub const SQUAD_MINI_DEV_LEN: usize = 2_000;
/// Maximum sequence length MobileBERT was trained with.
pub const SQUAD_MAX_SEQ: usize = 384;
/// WordPiece vocabulary size.
pub const SQUAD_VOCAB: u32 = 30_522;

impl SyntheticSquad {
    /// Full mini-dev split.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self::with_len(seed, SQUAD_MINI_DEV_LEN)
    }

    /// Reduced split for fast tests.
    #[must_use]
    pub fn with_len(seed: u64, len: usize) -> Self {
        SyntheticSquad { seed, len }
    }

    /// The QA sample at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[must_use]
    pub fn sample(&self, index: usize) -> QaSample {
        assert!(index < self.len);
        let mut rng = sample_rng(self.seed, index);
        let seq_len = rng.gen_range(128..=SQUAD_MAX_SEQ);
        let tokens: Vec<u32> = (0..seq_len).map(|_| rng.gen_range(5..SQUAD_VOCAB)).collect();
        // Answers live in the passage part (after the ~10-30 token question).
        let question_len = rng.gen_range(10..30);
        let ans_len = rng.gen_range(1..=8u32);
        let latest_start = seq_len as u32 - ans_len;
        let start = rng.gen_range(question_len as u32..latest_start);
        QaSample { tokens, answer: AnswerSpan::new(start, start + ans_len - 1) }
    }
}

impl Dataset for SyntheticSquad {
    fn name(&self) -> &str {
        "Mini SQuAD v1.1 dev (synthetic)"
    }
    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imagenet_labels_deterministic_and_in_range() {
        let d = SyntheticImageNet::with_len(7, 100);
        for i in 0..100 {
            let l = d.label(i);
            assert!((1..=IMAGENET_CLASSES).contains(&l));
            assert_eq!(l, SyntheticImageNet::with_len(7, 100).label(i));
        }
    }

    #[test]
    fn imagenet_labels_spread() {
        let d = SyntheticImageNet::with_len(1, 2000);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2000 {
            seen.insert(d.label(i));
        }
        assert!(seen.len() > 500, "only {} distinct labels", seen.len());
    }

    #[test]
    fn coco_boxes_valid() {
        let d = SyntheticCoco::with_len(3, 50);
        for i in 0..50 {
            let objs = d.objects(i);
            assert!(!objs.is_empty() && objs.len() <= 8);
            for o in objs {
                assert!((1..=COCO_CLASSES).contains(&o.class));
                assert!(o.bbox.area() > 0.0);
            }
        }
    }

    #[test]
    fn ade20k_maps_use_32_classes() {
        let d = SyntheticAde20k::with_params(5, 20, 64);
        for i in 0..20 {
            let m = d.label_map(i);
            assert_eq!(m.len(), 64 * 64);
            assert!(m.labels.iter().all(|&l| l < ADE20K_CLASSES));
        }
    }

    #[test]
    fn ade20k_frequent_classes_dominate() {
        let d = SyntheticAde20k::with_params(11, 200, 32);
        let mut freq = 0u64;
        let mut rare = 0u64;
        for i in 0..200 {
            for &l in &d.label_map(i).labels {
                if l < 8 {
                    freq += 1;
                } else {
                    rare += 1;
                }
            }
        }
        assert!(freq > 3 * rare, "frequent {freq} vs rare {rare}");
    }

    #[test]
    fn squad_answers_inside_sequence() {
        let d = SyntheticSquad::with_len(9, 100);
        for i in 0..100 {
            let s = d.sample(i);
            assert!(s.tokens.len() <= SQUAD_MAX_SEQ);
            assert!((s.answer.end as usize) < s.tokens.len());
            assert!(s.answer.len() <= 8);
        }
    }

    #[test]
    fn different_seeds_different_data() {
        let a = SyntheticSquad::with_len(1, 10).sample(0);
        let b = SyntheticSquad::with_len(2, 10).sample(0);
        assert_ne!(a, b);
    }

    #[test]
    fn dataset_trait_lens() {
        assert_eq!(SyntheticImageNet::new(0).len(), 50_000);
        assert_eq!(SyntheticCoco::new(0).len(), 5_000);
        assert_eq!(SyntheticAde20k::new(0).len(), 2_000);
        assert_eq!(SyntheticSquad::new(0).len(), 2_000);
        assert!(!SyntheticSquad::new(0).is_empty());
    }
}
