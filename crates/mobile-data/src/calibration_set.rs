//! Approved calibration-set selection (paper Section 5.1).
//!
//! "For each model, we specify a calibration data set (typically 500
//! samples or images from the training or validation data set)...
//! Submitters can only use the approved calibration data set." Selection is
//! deterministic from a published seed so every submitter gets the same
//! samples.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Size of the approved calibration set.
pub const CALIBRATION_SET_SIZE: usize = 500;

/// Deterministically selects the approved calibration sample indices from
/// a dataset of `dataset_len` samples.
///
/// The same `(seed, dataset_len)` always yields the same set; indices are
/// unique and sorted.
///
/// # Panics
///
/// Panics if the dataset is smaller than the requested set.
#[must_use]
pub fn approved_calibration_indices(seed: u64, dataset_len: usize, set_size: usize) -> Vec<usize> {
    assert!(
        dataset_len >= set_size,
        "dataset ({dataset_len}) smaller than calibration set ({set_size})"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut all: Vec<usize> = (0..dataset_len).collect();
    all.shuffle(&mut rng);
    let mut chosen: Vec<usize> = all.into_iter().take(set_size).collect();
    chosen.sort_unstable();
    chosen
}

/// Checks that a submitter's claimed calibration indices are exactly the
/// approved set — the audit-side counterpart.
#[must_use]
pub fn is_approved_set(seed: u64, dataset_len: usize, claimed: &[usize]) -> bool {
    if claimed.len() > dataset_len {
        return false;
    }
    let approved = approved_calibration_indices(seed, dataset_len, claimed.len().min(dataset_len));
    let mut sorted = claimed.to_vec();
    sorted.sort_unstable();
    sorted == approved
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_selection() {
        let a = approved_calibration_indices(42, 50_000, CALIBRATION_SET_SIZE);
        let b = approved_calibration_indices(42, 50_000, CALIBRATION_SET_SIZE);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn indices_unique_and_in_range() {
        let set = approved_calibration_indices(7, 5_000, 500);
        let mut dedup = set.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), set.len());
        assert!(set.iter().all(|&i| i < 5_000));
    }

    #[test]
    fn different_seed_different_set() {
        let a = approved_calibration_indices(1, 50_000, 500);
        let b = approved_calibration_indices(2, 50_000, 500);
        assert_ne!(a, b);
    }

    #[test]
    fn audit_accepts_approved_rejects_other() {
        let approved = approved_calibration_indices(9, 5_000, 500);
        assert!(is_approved_set(9, 5_000, &approved));
        let mut rogue = approved.clone();
        rogue[0] += 1; // submitter sneaks in a favorable sample
        // (may collide with rogue[1]; either way it is not the approved set)
        assert!(!is_approved_set(9, 5_000, &rogue));
    }

    #[test]
    #[should_panic(expected = "smaller than calibration set")]
    fn tiny_dataset_panics() {
        let _ = approved_calibration_indices(0, 100, 500);
    }
}
