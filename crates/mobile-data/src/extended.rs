//! Synthetic datasets for the extension tasks (paper Appendix E):
//! speech recognition (a LibriSpeech-like corpus) and 2x super-resolution
//! (a DIV2K-like image-pair set).

use crate::datasets::Dataset;
use crate::image::Image;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample_rng(seed: u64, index: usize) -> StdRng {
    let mut z = seed ^ (index as u64).wrapping_mul(0xA24B_AED4_963E_E407);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

// ---------------------------------------------------------------------------
// Speech (LibriSpeech-like)
// ---------------------------------------------------------------------------

/// One synthetic utterance: a word-id transcript (the audio features are
/// derivable from the transcript seed and never needed by the benchmark).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Utterance {
    /// Ground-truth transcript as word ids.
    pub transcript: Vec<u32>,
}

/// Synthetic speech corpus standing in for a LibriSpeech-style dev set.
#[derive(Debug, Clone)]
pub struct SyntheticLibriSpeech {
    seed: u64,
    len: usize,
}

/// Word vocabulary of the synthetic corpus.
pub const SPEECH_VOCAB: u32 = 10_000;
/// Dev-split size.
pub const SPEECH_DEV_LEN: usize = 2_000;

impl SyntheticLibriSpeech {
    /// Full dev split.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self::with_len(seed, SPEECH_DEV_LEN)
    }

    /// Reduced split for fast tests.
    #[must_use]
    pub fn with_len(seed: u64, len: usize) -> Self {
        SyntheticLibriSpeech { seed, len }
    }

    /// The utterance at `index`: 5-25 words, Zipf-biased toward frequent
    /// word ids like real speech.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[must_use]
    pub fn utterance(&self, index: usize) -> Utterance {
        assert!(index < self.len);
        let mut rng = sample_rng(self.seed, index);
        let words = rng.gen_range(5..=25);
        let transcript = (0..words)
            .map(|_| {
                if rng.gen_bool(0.6) {
                    rng.gen_range(0..200) // frequent words
                } else {
                    rng.gen_range(200..SPEECH_VOCAB)
                }
            })
            .collect();
        Utterance { transcript }
    }
}

impl Dataset for SyntheticLibriSpeech {
    fn name(&self) -> &str {
        "LibriSpeech dev (synthetic)"
    }
    fn len(&self) -> usize {
        self.len
    }
}

// ---------------------------------------------------------------------------
// Super-resolution (DIV2K-like)
// ---------------------------------------------------------------------------

/// Synthetic SR validation set: high-resolution ground-truth images whose
/// low-resolution inputs are produced by real bilinear downsampling.
#[derive(Debug, Clone)]
pub struct SyntheticDiv2k {
    seed: u64,
    len: usize,
    hr_height: usize,
    hr_width: usize,
}

/// Validation-split size.
pub const SR_VAL_LEN: usize = 100;

impl SyntheticDiv2k {
    /// Full split at 720p ground truth (the EDSR-mobile output size).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self::with_params(seed, SR_VAL_LEN, 720, 1280)
    }

    /// Custom split size and ground-truth resolution.
    ///
    /// # Panics
    ///
    /// Panics if the resolution is not a multiple of 2 (the scale factor).
    #[must_use]
    pub fn with_params(seed: u64, len: usize, hr_height: usize, hr_width: usize) -> Self {
        assert!(hr_height.is_multiple_of(2) && hr_width.is_multiple_of(2), "HR size must be even");
        SyntheticDiv2k { seed, len, hr_height, hr_width }
    }

    /// Generator seed — with [`Dataset::len`] and [`Self::hr_size`], the
    /// dataset's full identity (used as a calibration-cache key).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Ground-truth resolution `(height, width)`.
    #[must_use]
    pub fn hr_size(&self) -> (usize, usize) {
        (self.hr_height, self.hr_width)
    }

    /// Ground-truth (high-resolution) image.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[must_use]
    pub fn high_res(&self, index: usize) -> Image {
        assert!(index < self.len);
        Image::synthetic(self.hr_height, self.hr_width, 3, self.seed ^ (index as u64) << 3)
    }

    /// The low-resolution model input: the ground truth bilinearly
    /// downsampled by 2x (real preprocessing, not synthesis).
    #[must_use]
    pub fn low_res(&self, index: usize) -> Image {
        self.high_res(index)
            .resize_bilinear(self.hr_height / 2, self.hr_width / 2)
    }
}

impl Dataset for SyntheticDiv2k {
    fn name(&self) -> &str {
        "DIV2K x2 (synthetic)"
    }
    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utterances_deterministic_and_bounded() {
        let d = SyntheticLibriSpeech::with_len(5, 50);
        for i in 0..50 {
            let u = d.utterance(i);
            assert!((5..=25).contains(&u.transcript.len()));
            assert!(u.transcript.iter().all(|&w| w < SPEECH_VOCAB));
            assert_eq!(u, d.utterance(i));
        }
    }

    #[test]
    fn frequent_words_dominate() {
        let d = SyntheticLibriSpeech::with_len(1, 200);
        let mut freq = 0usize;
        let mut rare = 0usize;
        for i in 0..200 {
            for &w in &d.utterance(i).transcript {
                if w < 200 {
                    freq += 1;
                } else {
                    rare += 1;
                }
            }
        }
        assert!(freq > rare, "frequent {freq} vs rare {rare}");
    }

    #[test]
    fn sr_pairs_are_consistent() {
        let d = SyntheticDiv2k::with_params(3, 4, 64, 96);
        let hr = d.high_res(0);
        let lr = d.low_res(0);
        assert_eq!((hr.height, hr.width), (64, 96));
        assert_eq!((lr.height, lr.width), (32, 48));
        // Downsampling preserves overall brightness.
        assert!((hr.mean() - lr.mean()).abs() < 0.02);
    }

    #[test]
    fn default_lens() {
        assert_eq!(SyntheticLibriSpeech::new(0).len(), 2_000);
        assert_eq!(SyntheticDiv2k::new(0).len(), 100);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_resolution_rejected() {
        let _ = SyntheticDiv2k::with_params(0, 1, 63, 96);
    }
}
