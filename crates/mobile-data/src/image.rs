//! Synthetic images and real image preprocessing.
//!
//! The benchmark's preprocessing stages (resize, crop, normalize — paper
//! Section 4.1) are implemented for real over `f32` pixel buffers; only the
//! *content* of the images is synthetic (seeded procedural textures), since
//! ImageNet/COCO/ADE20K are licensed datasets we substitute per DESIGN.md.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An interleaved HWC `f32` image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Image {
    /// Height in pixels.
    pub height: usize,
    /// Width in pixels.
    pub width: usize,
    /// Channels (3 for RGB).
    pub channels: usize,
    /// Row-major interleaved pixel data, `height * width * channels` long.
    pub data: Vec<f32>,
}

impl Image {
    /// Allocates a zero image.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn zeros(height: usize, width: usize, channels: usize) -> Self {
        assert!(height > 0 && width > 0 && channels > 0);
        Image { height, width, channels, data: vec![0.0; height * width * channels] }
    }

    /// Procedurally generates a deterministic synthetic image: a few
    /// superimposed gradients and sinusoids plus noise, seeded so that the
    /// same `(seed, index)` always produces identical bytes.
    #[must_use]
    pub fn synthetic(height: usize, width: usize, channels: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let fx: f64 = rng.gen_range(0.5..4.0);
        let fy: f64 = rng.gen_range(0.5..4.0);
        let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let base: [f64; 4] = [
            rng.gen_range(0.2..0.8),
            rng.gen_range(0.2..0.8),
            rng.gen_range(0.2..0.8),
            rng.gen_range(0.2..0.8),
        ];
        let mut img = Image::zeros(height, width, channels);
        for y in 0..height {
            for x in 0..width {
                let u = x as f64 / width as f64;
                let v = y as f64 / height as f64;
                let wave = ((u * fx + v * fy) * std::f64::consts::TAU + phase).sin() * 0.25;
                for c in 0..channels {
                    let noise: f64 = rng.gen_range(-0.03..0.03);
                    let val = (base[c % 4] + wave + noise).clamp(0.0, 1.0);
                    img.data[(y * width + x) * channels + c] = val as f32;
                }
            }
        }
        img
    }

    /// Pixel accessor.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds coordinates.
    #[must_use]
    pub fn get(&self, y: usize, x: usize, c: usize) -> f32 {
        assert!(y < self.height && x < self.width && c < self.channels);
        self.data[(y * self.width + x) * self.channels + c]
    }

    /// Bilinear resize to `(out_h, out_w)` — the benchmark's standard
    /// resize stage.
    ///
    /// # Panics
    ///
    /// Panics if target dimensions are zero.
    #[must_use]
    pub fn resize_bilinear(&self, out_h: usize, out_w: usize) -> Image {
        assert!(out_h > 0 && out_w > 0);
        let mut out = Image::zeros(out_h, out_w, self.channels);
        let sy = self.height as f64 / out_h as f64;
        let sx = self.width as f64 / out_w as f64;
        for y in 0..out_h {
            let fy = ((y as f64 + 0.5) * sy - 0.5).max(0.0);
            let y0 = fy.floor() as usize;
            let y1 = (y0 + 1).min(self.height - 1);
            let wy = (fy - y0 as f64) as f32;
            for x in 0..out_w {
                let fx = ((x as f64 + 0.5) * sx - 0.5).max(0.0);
                let x0 = fx.floor() as usize;
                let x1 = (x0 + 1).min(self.width - 1);
                let wx = (fx - x0 as f64) as f32;
                for c in 0..self.channels {
                    let tl = self.get(y0, x0, c);
                    let tr = self.get(y0, x1, c);
                    let bl = self.get(y1, x0, c);
                    let br = self.get(y1, x1, c);
                    let top = tl + (tr - tl) * wx;
                    let bot = bl + (br - bl) * wx;
                    out.data[(y * out_w + x) * self.channels + c] = top + (bot - top) * wy;
                }
            }
        }
        out
    }

    /// Center crop to `(crop_h, crop_w)`.
    ///
    /// # Panics
    ///
    /// Panics if the crop exceeds the image.
    #[must_use]
    pub fn center_crop(&self, crop_h: usize, crop_w: usize) -> Image {
        assert!(crop_h <= self.height && crop_w <= self.width, "crop exceeds image");
        let oy = (self.height - crop_h) / 2;
        let ox = (self.width - crop_w) / 2;
        let mut out = Image::zeros(crop_h, crop_w, self.channels);
        for y in 0..crop_h {
            for x in 0..crop_w {
                for c in 0..self.channels {
                    out.data[(y * crop_w + x) * self.channels + c] = self.get(oy + y, ox + x, c);
                }
            }
        }
        out
    }

    /// Per-channel normalization: `(px - mean[c]) / std[c]`.
    ///
    /// # Panics
    ///
    /// Panics if `mean`/`std` lengths differ from the channel count or any
    /// `std` is zero.
    #[must_use]
    pub fn normalize(&self, mean: &[f32], std: &[f32]) -> Image {
        assert_eq!(mean.len(), self.channels);
        assert_eq!(std.len(), self.channels);
        assert!(std.iter().all(|&s| s != 0.0), "std must be non-zero");
        let mut out = self.clone();
        for (i, v) in out.data.iter_mut().enumerate() {
            let c = i % self.channels;
            *v = (*v - mean[c]) / std[c];
        }
        out
    }

    /// Mean pixel value (used in tests and calibration observers).
    #[must_use]
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic() {
        let a = Image::synthetic(32, 32, 3, 42);
        let b = Image::synthetic(32, 32, 3, 42);
        assert_eq!(a, b);
        let c = Image::synthetic(32, 32, 3, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn synthetic_in_unit_range() {
        let img = Image::synthetic(16, 16, 3, 7);
        assert!(img.data.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn resize_identity() {
        let img = Image::synthetic(24, 24, 3, 1);
        let same = img.resize_bilinear(24, 24);
        for (a, b) in img.data.iter().zip(same.data.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn resize_constant_image_stays_constant() {
        let mut img = Image::zeros(10, 10, 1);
        img.data.fill(0.5);
        let up = img.resize_bilinear(37, 23);
        assert!(up.data.iter().all(|&v| (v - 0.5).abs() < 1e-6));
        assert_eq!(up.height, 37);
        assert_eq!(up.width, 23);
    }

    #[test]
    fn resize_preserves_mean_roughly() {
        let img = Image::synthetic(64, 64, 3, 5);
        let down = img.resize_bilinear(224, 224);
        assert!((img.mean() - down.mean()).abs() < 0.02);
    }

    #[test]
    fn center_crop_geometry() {
        let img = Image::synthetic(10, 10, 1, 3);
        let crop = img.center_crop(4, 4);
        assert_eq!(crop.get(0, 0, 0), img.get(3, 3, 0));
        assert_eq!(crop.get(3, 3, 0), img.get(6, 6, 0));
    }

    #[test]
    #[should_panic(expected = "crop exceeds image")]
    fn oversized_crop_panics() {
        let img = Image::zeros(4, 4, 1);
        let _ = img.center_crop(8, 8);
    }

    #[test]
    fn normalize_zero_means_unit_std() {
        let img = Image::synthetic(8, 8, 3, 9);
        let n = img.normalize(&[0.5, 0.5, 0.5], &[0.5, 0.5, 0.5]);
        // All values map from [0,1] to [-1,1].
        assert!(n.data.iter().all(|&v| (-1.0..=1.0).contains(&v)));
        assert!((n.mean() - (img.mean() - 0.5) / 0.5).abs() < 1e-5);
    }
}
