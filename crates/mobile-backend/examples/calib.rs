use mobile_backend::backend::Backend;
use mobile_backend::backends::*;
use mobile_backend::registry::{create, vendor_backend};
use nn_graph::models::ModelId;
use soc_sim::catalog::ChipId;

fn main() {
    for chip in ChipId::ALL {
        let soc = chip.build();
        let be = create(vendor_backend(&soc).unwrap());
        println!("{:16} [{}]", chip.to_string(), be.id());
        for model in [ModelId::MobileNetEdgeTpu, ModelId::SsdMobileNetV2, ModelId::MobileDetSsd, ModelId::DeepLabV3Plus, ModelId::MobileBert] {
            let g = model.build();
            match be.compile(&g, &soc) {
                Ok(dep) => println!("   {:6}={:8.2}ms  {:10} {:12} {}st {}tr", short(model), dep.estimate_ms(&soc), dep.scheme.to_string(), dep.accelerator_summary(&soc), dep.schedule.num_stages(), dep.schedule.num_transitions()),
                Err(e) => println!("   {:6}=ERR({e})", short(model)),
            }
        }
    }
    let soc = ChipId::Dimensity1100.build();
    for model in [ModelId::MobileNetEdgeTpu, ModelId::MobileDetSsd, ModelId::DeepLabV3Plus] {
        let g = model.build();
        let n = Nnapi::default().compile(&g, &soc).unwrap();
        let d = Neuron.compile(&g, &soc).unwrap();
        println!("Dim1100 {:?}: nnapi={:.2}ms neuron={:.2}ms delta={:.2}%", model,
            n.estimate_ms(&soc), d.estimate_ms(&soc),
            (n.estimate_ms(&soc)/d.estimate_ms(&soc)-1.0)*100.0);
    }
    let soc = ChipId::CoreI7_1165G7.build();
    for model in ModelId::ALL {
        let g = model.build();
        let dep = OpenVino.compile(&g, &soc).unwrap();
        let first = soc.engine(dep.schedule.stages[0].engine).kind;
        println!("i7-1165G7 {:?}: {:.2}ms on {} ({} streams)", model, dep.estimate_ms(&soc), first, dep.offline_streams.len());
    }
}

fn short(m: ModelId) -> &'static str {
    match m {
        ModelId::MobileNetEdgeTpu => "cls",
        ModelId::SsdMobileNetV2 => "det7",
        ModelId::MobileDetSsd => "det10",
        ModelId::DeepLabV3Plus => "seg",
        ModelId::MobileBert => "nlp",
        ModelId::MobileRnnt => "asr",
        ModelId::EdsrMobile => "sr",
    }
}
