use mobile_backend::backend::Backend;
use mobile_backend::backends::{Enn, Snpe, OpenVino};
use nn_graph::models::ModelId;
use soc_sim::catalog::ChipId;
use soc_sim::executor::run_offline;

fn main() {
    let g = ModelId::MobileNetEdgeTpu.build();
    for (chip, be) in [
        (ChipId::Exynos990, Box::new(Enn) as Box<dyn Backend>),
        (ChipId::Snapdragon865Plus, Box::new(Snpe)),
        (ChipId::CoreI7_1165G7, Box::new(OpenVino)),
    ] {
        let soc = chip.build();
        let dep = be.compile(&g, &soc).unwrap();
        let mut state = soc.new_state(22.0);
        let r = run_offline(&soc, &dep.graph, &dep.offline_streams, &mut state, 24_576, 32);
        println!("{:18} offline cls: {:7.1} fps  ({} streams, {:.0}% throttled, {:.1}s)",
            chip.to_string(), r.throughput_fps, dep.offline_streams.len(),
            r.throttled_fraction*100.0, r.duration.as_secs_f64());
    }
}
