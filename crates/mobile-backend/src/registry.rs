//! Backend registry: which code paths exist, and which apply to a SoC.
//!
//! Encodes the code-path diversity of paper Figures 1 and 5: every SoC can
//! be driven through the generic TFLite/NNAPI paths, each vendor has its
//! SDK, and laptops use OpenVINO.

use crate::backend::{Backend, BackendId};
use crate::backends::{Enn, Neuron, Nnapi, OpenVino, Snpe, TfliteCpu, TfliteGpu};
use soc_sim::soc::Soc;

/// Instantiates a backend by id (with default configuration).
#[must_use]
pub fn create(id: BackendId) -> Box<dyn Backend> {
    match id {
        BackendId::TfliteCpu => Box::new(TfliteCpu),
        BackendId::TfliteGpu => Box::new(TfliteGpu),
        BackendId::Nnapi => Box::new(Nnapi::default()),
        BackendId::Neuron => Box::new(Neuron),
        BackendId::Enn => Box::new(Enn),
        BackendId::Snpe => Box::new(Snpe),
        BackendId::OpenVino => Box::new(OpenVino),
    }
}

/// All backend ids.
pub const ALL_BACKENDS: [BackendId; 7] = [
    BackendId::TfliteCpu,
    BackendId::TfliteGpu,
    BackendId::Nnapi,
    BackendId::Neuron,
    BackendId::Enn,
    BackendId::Snpe,
    BackendId::OpenVino,
];

/// The code paths available on a given SoC (the solid lines of Figure 1).
#[must_use]
pub fn available_backends(soc: &Soc) -> Vec<BackendId> {
    let mut out = vec![BackendId::TfliteCpu];
    if soc.is_laptop {
        out.push(BackendId::OpenVino);
        return out;
    }
    out.push(BackendId::TfliteGpu);
    out.push(BackendId::Nnapi);
    match soc.vendor.as_str() {
        "MediaTek" => out.push(BackendId::Neuron),
        "Samsung" => out.push(BackendId::Enn),
        "Qualcomm" => out.push(BackendId::Snpe),
        _ => {}
    }
    out
}

/// The vendor-optimized backend for a SoC, if one exists — what a
/// competitive submission would use (paper Insight 4: "nearly all
/// submissions make use of proprietary frameworks").
#[must_use]
pub fn vendor_backend(soc: &Soc) -> Option<BackendId> {
    if soc.is_laptop {
        return Some(BackendId::OpenVino);
    }
    match soc.vendor.as_str() {
        "MediaTek" => Some(BackendId::Neuron),
        "Samsung" => Some(BackendId::Enn),
        "Qualcomm" => Some(BackendId::Snpe),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_sim::catalog::ChipId;

    #[test]
    fn every_chip_has_a_vendor_backend() {
        for chip in ChipId::ALL {
            let soc = chip.build();
            assert!(vendor_backend(&soc).is_some(), "{chip:?}");
        }
    }

    #[test]
    fn laptops_get_openvino_only() {
        let soc = ChipId::CoreI7_1165G7.build();
        let avail = available_backends(&soc);
        assert!(avail.contains(&BackendId::OpenVino));
        assert!(!avail.contains(&BackendId::Nnapi));
    }

    #[test]
    fn phones_get_generic_plus_vendor() {
        let soc = ChipId::Snapdragon888.build();
        let avail = available_backends(&soc);
        assert!(avail.contains(&BackendId::TfliteCpu));
        assert!(avail.contains(&BackendId::TfliteGpu));
        assert!(avail.contains(&BackendId::Nnapi));
        assert!(avail.contains(&BackendId::Snpe));
        assert!(!avail.contains(&BackendId::Enn));
    }

    #[test]
    fn create_builds_each_backend() {
        for id in ALL_BACKENDS {
            assert_eq!(create(id).id(), id);
        }
    }

    #[test]
    fn vendor_backend_compiles_on_its_chip() {
        use nn_graph::models::ModelId;
        let reference = ModelId::MobileNetEdgeTpu.build();
        for chip in ChipId::ALL {
            let soc = chip.build();
            let backend = create(vendor_backend(&soc).unwrap());
            assert!(backend.compile(&reference, &soc).is_ok(), "{chip:?}");
        }
    }
}
