//! Mathematically-equivalent graph rewrites.
//!
//! Paper Section 3.3: "The reference implementation is poorly optimized.
//! Vendors that submit results to MLPerf must inherit the reference code,
//! adapt it, and produce optimized glue code" — and Section 5.1 permits
//! "minimal changes if they are mathematically equivalent". This module
//! implements the legal subset: folding chains of data-movement reshapes
//! and eliminating dead nodes, both of which reduce per-op scheduling
//! overhead without touching a single MAC (verified by the audit's
//! equivalence checker).

use nn_graph::graph::Graph;
use nn_graph::op::OpClass;
use nn_graph::{GraphBuilder, NodeId};

/// Statistics of one optimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizeStats {
    /// Reshape nodes folded into their successors.
    pub reshapes_folded: usize,
    /// Dead (unconsumed, non-output) nodes removed.
    pub dead_removed: usize,
}

/// Applies the legal rewrites and returns the optimized graph.
///
/// Rewrites performed:
/// 1. **Reshape folding** — a `Reshape` whose single consumer is another
///    `Reshape` collapses into the consumer (pure data movement composes).
/// 2. **Dead-node elimination** — nodes no one consumes, other than the
///    graph output, are dropped.
///
/// The graph's arithmetic (MACs/FLOPs of compute ops) is unchanged, so the
/// result passes [`quant::check_equivalence`] against the input.
#[must_use]
pub fn optimize(graph: &Graph) -> (Graph, OptimizeStats) {
    let mut stats = OptimizeStats::default();
    let consumers = graph.consumers();
    let output_id = graph.output_node().id;

    // Identify foldable reshapes: reshape -> reshape chains where the
    // first reshape has exactly one consumer. The *second* reshape absorbs
    // the first (its output shape already accounts for both).
    let mut skip: Vec<bool> = vec![false; graph.len()];
    for node in graph {
        if node.class() == OpClass::Shape
            && !node.inputs.is_empty() // keep the implicit input node
            && consumers[node.id.index()].len() == 1
        {
            let consumer = graph.node(consumers[node.id.index()][0]);
            if consumer.class() == OpClass::Shape {
                skip[node.id.index()] = true;
                stats.reshapes_folded += 1;
            }
        }
    }

    // Dead nodes: backward liveness from the output. Folded reshapes are
    // pass-throughs — they keep their producers alive even though they are
    // themselves removed.
    let mut live: Vec<bool> = vec![false; graph.len()];
    live[output_id.index()] = true;
    for node in graph.iter().rev() {
        let idx = node.id.index();
        if !live[idx] {
            live[idx] = consumers[idx].iter().any(|c| live[c.index()]);
        }
    }
    for node in graph.iter().skip(1) {
        let idx = node.id.index();
        if !live[idx] && !skip[idx] {
            skip[idx] = true;
            stats.dead_removed += 1;
        }
    }

    // Rebuild the graph without the skipped nodes, rewiring inputs through
    // folded reshapes.
    let input_desc = graph.input();
    let mut b = GraphBuilder::new(graph.name(), input_desc.shape.clone(), input_desc.dtype);
    let mut remap: Vec<Option<NodeId>> = vec![None; graph.len()];
    // The implicit input node of the rebuilt graph replaces the original's.
    remap[0] = Some(b.input_id());

    // Resolves a producer through any folded reshape chain.
    let resolve = |remap: &[Option<NodeId>], graph: &Graph, skip: &[bool], mut id: NodeId| {
        while skip[id.index()] {
            id = graph.node(id).inputs[0];
        }
        remap[id.index()].expect("producer already rebuilt")
    };

    for node in graph.iter().skip(1) {
        let idx = node.id.index();
        if skip[idx] {
            continue;
        }
        let inputs: Vec<NodeId> = node
            .inputs
            .iter()
            .map(|&i| resolve(&remap, graph, &skip, i))
            .collect();
        let new_id = b
            .push_raw(&node.name, node.op.clone(), inputs, node.output.shape.clone())
            .expect("rebuild preserves validity");
        remap[idx] = Some(new_id);
    }
    (b.finish(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn_graph::models::ModelId;
    use nn_graph::{Activation, DataType, Shape};
    use quant::check_equivalence;

    #[test]
    fn reshape_chains_fold() {
        let mut b = GraphBuilder::new("t", Shape::nhwc(8, 8, 4), DataType::F32);
        let c = b.conv2d("c", b.input_id(), 3, 1, 8, Activation::Relu6);
        let r1 = b.reshape("r1", c, Shape::new(&[1, 64, 8]));
        let r2 = b.reshape("r2", r1, Shape::new(&[1, 8, 64]));
        let _fc = b.fully_connected("fc", r2, 10, Activation::None);
        let g = b.finish();
        let (opt, stats) = optimize(&g);
        assert_eq!(stats.reshapes_folded, 1);
        assert_eq!(opt.len(), g.len() - 1);
        // Arithmetic unchanged.
        assert_eq!(opt.total_cost().macs, g.total_cost().macs);
        assert!(check_equivalence(&g, &opt).is_ok());
        // The surviving reshape still lands on the right shape.
        let r = opt.iter().find(|n| n.name == "r2").unwrap();
        assert_eq!(r.output.shape.dims(), &[1, 8, 64]);
    }

    #[test]
    fn dead_branches_removed() {
        let mut b = GraphBuilder::new("t", Shape::nhwc(8, 8, 4), DataType::F32);
        let c = b.conv2d("c", b.input_id(), 3, 1, 8, Activation::Relu6);
        // Dead side computation nobody consumes.
        let dead = b.conv2d("dead", c, 1, 1, 16, Activation::None);
        let _dead2 = b.pool(
            "dead2",
            dead,
            nn_graph::op::PoolKind::Max,
            2,
            2,
        );
        let p = b.global_avg_pool("gap", c);
        let _fc = b.fully_connected("fc", p, 10, Activation::None);
        let g = b.finish();
        let (opt, stats) = optimize(&g);
        assert_eq!(stats.dead_removed, 2);
        assert!(opt.iter().all(|n| !n.name.starts_with("dead")));
        // Dead-code removal reduces MACs but keeps the *live* computation;
        // the equivalence checker compares against the optimized reference,
        // which is what an audit would receive as the new baseline.
        assert!(opt.total_cost().macs < g.total_cost().macs);
    }

    #[test]
    fn reference_models_are_already_lean() {
        // The zoo has no reshape chains or dead nodes — optimization is a
        // no-op, confirming the models are well-formed.
        for model in ModelId::ALL {
            let g = model.build();
            let (opt, stats) = optimize(&g);
            assert_eq!(stats.reshapes_folded, 0, "{model}");
            assert_eq!(stats.dead_removed, 0, "{model}");
            assert_eq!(opt.len(), g.len(), "{model}");
            assert!(check_equivalence(&g, &opt).is_ok(), "{model}");
        }
    }

    #[test]
    fn optimization_is_idempotent() {
        let mut b = GraphBuilder::new("t", Shape::nhwc(8, 8, 4), DataType::F32);
        let c = b.conv2d("c", b.input_id(), 3, 1, 8, Activation::Relu6);
        let r1 = b.reshape("r1", c, Shape::new(&[1, 64, 8]));
        let r2 = b.reshape("r2", r1, Shape::new(&[1, 512]));
        let _fc = b.fully_connected("fc", r2, 10, Activation::None);
        let g = b.finish();
        let (once, _) = optimize(&g);
        let (twice, stats) = optimize(&once);
        assert_eq!(stats, OptimizeStats::default());
        assert_eq!(once.len(), twice.len());
    }
}
