//! Schedule auto-tuner: beam / branch-and-bound search over the per-op
//! engine-assignment space.
//!
//! The vendor backends pick schedules with fixed per-vendor heuristics
//! ([`crate::partition`]); the paper's Insights 2–5 attribute much of
//! the vendor spread to exactly these scheduling decisions. With the
//! compiled-plan executor costing a candidate schedule in ~200 ns,
//! guided search over the assignment space is affordable — this module
//! finds the latency- or energy-optimal schedule per (chip, model) and
//! quantifies the heuristic-vs-optimal gap.
//!
//! # Search
//!
//! A candidate is a per-node [`SearchTarget`] assignment in topological
//! order; consecutive runs of equal targets form the stages of the
//! induced [`Schedule`]. The legal target set is derived from the vendor
//! heuristic's own stages, and every candidate carries the heuristic's
//! transition penalties ([`crate::penalty`]), so tuned and heuristic
//! schedules are compared under identical framework costs.
//!
//! The search is beam search with branch-and-bound pruning:
//!
//! 1. **Extend** every beam prefix by every supported target for the
//!    next node ([`CostModel::extend`] keeps exact incremental cost).
//! 2. **Prune** prefixes whose admissible lower bound (committed exact
//!    cost + best-case roofline suffix, [`CostModel::bound_latency`] /
//!    [`CostModel::bound_energy`]) cannot beat the incumbent, with a
//!    `1 + 1e-9` relative slack covering floating-point fold-order
//!    differences — so pruning never drops the optimum.
//! 3. **Rank** survivors by bound and keep the best `beam_width`.
//! 4. **Roll out** the best survivor to a greedy completion; fresh
//!    completions (deduped by exact assignment signature) are
//!    batch-evaluated up to K=8 per pass ([`CostModel::evaluate_batch`])
//!    and tighten the incumbent early.
//!
//! The incumbent is **seeded with the vendor heuristic**, so the tuner
//! can only improve, never regress. With [`TunerConfig::exact`] (an
//! unbounded beam) only the safe bound eliminates candidates and the
//! search provably returns the true optimum — verified bit-exactly
//! against [`exhaustive_optimum`] on small graphs in the property suite.

use crate::penalty::TransitionPenalty;
use nn_graph::{DataType, Graph};
use serde::{Deserialize, Serialize};
use soc_sim::executor::estimate_query_secs;
use soc_sim::schedule::Schedule;
use soc_sim::search::{active_energy_j, CostModel, SearchScore, SearchTarget, MAX_LANES};
use soc_sim::soc::Soc;
use std::collections::HashSet;
use std::fmt;

/// Relative pruning slack: a partial is eliminated only when its lower
/// bound exceeds `incumbent * (1 + SLACK)`. The admissible bound is
/// mathematically ≤ any completion; the slack absorbs the ≤ ~1e-13
/// relative fold-order difference between the bound's suffix sum and the
/// exact evaluator, keeping elimination provably safe.
const PRUNE_SLACK: f64 = 1e-9;

/// What the tuner minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Single-query latency at nominal frequency (seconds).
    Latency,
    /// Active compute energy per query (joules).
    Energy,
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Objective::Latency => "latency",
            Objective::Energy => "energy",
        })
    }
}

/// Tuner knobs. Hashable — used as part of the compile-cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TunerConfig {
    /// Objective to minimize.
    pub objective: Objective,
    /// Beam width: survivors kept per level. `usize::MAX` disables
    /// truncation entirely (exact branch-and-bound).
    pub beam_width: usize,
}

impl TunerConfig {
    /// Latency objective, beam width 64 — ample for the catalog models.
    #[must_use]
    pub fn latency() -> TunerConfig {
        TunerConfig { objective: Objective::Latency, beam_width: 64 }
    }

    /// Energy objective, beam width 64.
    #[must_use]
    pub fn energy() -> TunerConfig {
        TunerConfig { objective: Objective::Energy, beam_width: 64 }
    }

    /// Unbounded beam: only the admissible bound eliminates candidates,
    /// so the search returns the true optimum (the oracle mode).
    #[must_use]
    pub fn exact(objective: Objective) -> TunerConfig {
        TunerConfig { objective, beam_width: usize::MAX }
    }
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig::latency()
    }
}

/// Search effort counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TuneStats {
    /// Complete candidates evaluated exactly (rollouts + final beam).
    pub candidates: u64,
    /// Partial assignments eliminated by the lower bound.
    pub pruned: u64,
    /// Partial assignments extended (beam expansions kept).
    pub expanded: u64,
    /// Completions skipped because their signature was already scored.
    pub dedup_hits: u64,
    /// Survivors dropped by beam truncation (always 0 in exact mode).
    pub beam_truncations: u64,
}

/// Result of tuning one (soc, graph, heuristic) triple.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneOutcome {
    /// The winning schedule: the best candidate found, or a copy of the
    /// heuristic when nothing beat it.
    pub schedule: Schedule,
    /// Canonical scores of the vendor heuristic (the seed incumbent).
    pub heuristic: SearchScore,
    /// Canonical scores of the winning schedule.
    pub tuned: SearchScore,
    /// Number of distinct `(engine, dtype)` targets searched.
    pub num_targets: usize,
    /// Search effort counters.
    pub stats: TuneStats,
    /// Whether the tuner strictly beat the heuristic on the objective.
    pub improved: bool,
}

fn objective_of(score: SearchScore, objective: Objective) -> f64 {
    match objective {
        Objective::Latency => score.latency_secs,
        Objective::Energy => score.energy_j,
    }
}

/// The legal target set: distinct `(engine, dtype)` pairs of the
/// heuristic's stages in order of first appearance, widened with every
/// other SoC engine at the dtype giving it the best FLOP coverage on
/// this graph (quantized dtypes win coverage ties). The widening
/// mirrors the fallback chains real backends carry and gives
/// single-engine heuristics a real assignment space instead of a
/// one-point one — the search can move work onto engines the vendor SDK
/// never considered, which is exactly the gap the paper's Insights 2–5
/// describe.
fn derive_targets(soc: &Soc, graph: &Graph, heuristic: &Schedule) -> Vec<SearchTarget> {
    let mut out: Vec<SearchTarget> = Vec::new();
    for stage in &heuristic.stages {
        let t = SearchTarget { engine: stage.engine, dtype: stage.dtype };
        if !out.contains(&t) {
            out.push(t);
        }
    }
    // Quantized first: the catalog accelerators' native precision, and
    // the precision real submission schedules run at.
    const WIDEN_DTYPES: [DataType; 4] =
        [DataType::U8, DataType::I8, DataType::F16, DataType::F32];
    for (id, engine) in soc.engines() {
        if out.iter().any(|t| t.engine == id) {
            continue;
        }
        let mut best: Option<(u64, DataType)> = None;
        for dtype in WIDEN_DTYPES {
            let covered: u64 = graph
                .iter()
                .filter(|n| engine.supports(n.class(), dtype))
                .map(|n| n.cost.flops)
                .sum();
            if covered > 0 && best.is_none_or(|(c, _)| covered > c) {
                best = Some((covered, dtype));
            }
        }
        if let Some((_, dtype)) = best {
            out.push(SearchTarget { engine: id, dtype });
        }
    }
    out
}

/// The search-space cost model for one deployment: the heuristic-derived
/// (and engine-widened) target set under the heuristic's transition
/// penalties. This is exactly the model [`tune`] and
/// [`exhaustive_optimum`] search; exposed so benchmarks can measure raw
/// candidate-evaluation throughput against the same space.
#[must_use]
pub fn search_model(soc: &Soc, graph: &Graph, heuristic: &Schedule) -> CostModel {
    let targets = derive_targets(soc, graph, heuristic);
    let penalty = TransitionPenalty::of_schedule(heuristic);
    CostModel::new(soc, graph, &targets, penalty.sync_us, penalty.query_us)
}

/// Incumbent state: the best complete candidate seen so far.
struct Incumbent {
    /// Objective value to beat.
    obj: f64,
    /// Winning assignment + exact scores; `None` while the heuristic
    /// still leads.
    best: Option<(Vec<u8>, SearchScore)>,
}

impl Incumbent {
    fn offer(&mut self, assign: &[u8], score: SearchScore, objective: Objective) {
        let obj = objective_of(score, objective);
        if obj < self.obj {
            self.obj = obj;
            self.best = Some((assign.to_vec(), score));
        }
    }
}

/// Flushes queued completions through the K=8 batched evaluator.
fn flush_pending(
    model: &CostModel,
    pending: &mut Vec<Vec<u8>>,
    objective: Objective,
    incumbent: &mut Incumbent,
    stats: &mut TuneStats,
) {
    for chunk in pending.chunks(MAX_LANES) {
        let lanes: Vec<&[u8]> = chunk.iter().map(Vec::as_slice).collect();
        let scores = model.evaluate_batch(&lanes);
        stats.candidates += scores.len() as u64;
        for (assign, score) in chunk.iter().zip(scores) {
            incumbent.offer(assign, score, objective);
        }
    }
    pending.clear();
}

/// Tunes the schedule of `graph` on `soc`, starting from the vendor
/// `heuristic`. The returned schedule is never worse than the heuristic
/// on the configured objective (the incumbent is seeded with it), and
/// both reported scores are computed by the canonical evaluators
/// ([`estimate_query_secs`] / [`active_energy_j`]) — bit-comparable with
/// everything else in the system.
///
/// # Panics
///
/// Panics if the heuristic schedule is invalid for the graph.
#[must_use]
pub fn tune(soc: &Soc, graph: &Graph, heuristic: &Schedule, config: &TunerConfig) -> TuneOutcome {
    heuristic
        .validate(graph)
        .unwrap_or_else(|e| panic!("invalid heuristic schedule for {}: {e}", graph.name()));
    let model = search_model(soc, graph, heuristic);
    let heuristic_score = SearchScore {
        latency_secs: estimate_query_secs(soc, graph, heuristic),
        energy_j: active_energy_j(soc, graph, heuristic),
    };
    let objective = config.objective;
    let n = model.num_nodes();
    let t = model.targets().len();

    let mut stats = TuneStats::default();
    let mut incumbent =
        Incumbent { obj: objective_of(heuristic_score, objective), best: None };
    // Exact-signature dedup of complete candidates; the heuristic is
    // pre-seeded so rollouts rediscovering it are not re-scored.
    let mut seen: HashSet<Vec<u8>> = HashSet::new();
    if let Some(h) = model.assignment_of(heuristic) {
        seen.insert(h);
    }
    let mut pending: Vec<Vec<u8>> = Vec::new();

    let bound_of = |p: &soc_sim::search::PartialAssign| match objective {
        Objective::Latency => model.bound_latency(p),
        Objective::Energy => model.bound_energy(p),
    };

    let mut beam = vec![model.root()];
    for level in 0..n {
        let mut next: Vec<(f64, soc_sim::search::PartialAssign)> =
            Vec::with_capacity(beam.len().saturating_mul(t).min(4096));
        for p in &beam {
            for k in 0..t {
                if !model.is_supported(level, k) {
                    continue;
                }
                let q = model.extend(p, k as u8);
                let bound = bound_of(&q);
                if bound > incumbent.obj * (1.0 + PRUNE_SLACK) {
                    stats.pruned += 1;
                    continue;
                }
                next.push((bound, q));
            }
        }
        if next.is_empty() {
            // Every extension was dominated: the incumbent stands.
            beam.clear();
            break;
        }
        stats.expanded += next.len() as u64;
        // Stable sort: bound ties keep deterministic generation order.
        next.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("bounds are finite"));
        if next.len() > config.beam_width {
            stats.beam_truncations += (next.len() - config.beam_width) as u64;
            next.truncate(config.beam_width);
        }
        if level + 1 < n {
            // Roll out the most promising survivor to a full candidate;
            // fresh completions queue for the K=8 batched evaluator and
            // tighten the incumbent (= sharper pruning) early.
            let rollout =
                model.greedy_complete(&next[0].1, objective == Objective::Energy);
            if seen.insert(rollout.assign.clone()) {
                pending.push(rollout.assign);
                if pending.len() >= MAX_LANES {
                    flush_pending(&model, &mut pending, objective, &mut incumbent, &mut stats);
                }
            } else {
                stats.dedup_hits += 1;
            }
        }
        beam = next.into_iter().map(|(_, p)| p).collect();
    }
    flush_pending(&model, &mut pending, objective, &mut incumbent, &mut stats);
    // Surviving final-level prefixes are complete candidates with exact
    // incremental scores.
    for p in &beam {
        if seen.insert(p.assign.clone()) {
            let score = model.finish(p);
            stats.candidates += 1;
            incumbent.offer(&p.assign, score, objective);
        } else {
            stats.dedup_hits += 1;
        }
    }

    match incumbent.best {
        Some((assign, score)) => {
            let schedule = model.schedule(&assign);
            debug_assert_eq!(
                estimate_query_secs(soc, graph, &schedule).to_bits(),
                score.latency_secs.to_bits(),
                "incremental latency drifted from the canonical evaluator"
            );
            debug_assert_eq!(
                active_energy_j(soc, graph, &schedule).to_bits(),
                score.energy_j.to_bits(),
                "incremental energy drifted from the canonical evaluator"
            );
            TuneOutcome {
                schedule,
                heuristic: heuristic_score,
                tuned: score,
                num_targets: t,
                stats,
                improved: true,
            }
        }
        None => TuneOutcome {
            schedule: heuristic.clone(),
            heuristic: heuristic_score,
            tuned: heuristic_score,
            num_targets: t,
            stats,
            improved: false,
        },
    }
}

/// Exhaustive-search oracle for small graphs: enumerates **every**
/// supported assignment over the heuristic-derived target set, scoring
/// each through the canonical evaluators, and returns the optimum
/// (first-found on ties, in lexicographic assignment order).
///
/// The property suite proves [`tune`] with [`TunerConfig::exact`]
/// returns the same objective value bit-for-bit.
///
/// # Panics
///
/// Panics if the graph has more than 10 ops or the assignment space
/// exceeds 2^20 candidates.
#[must_use]
pub fn exhaustive_optimum(
    soc: &Soc,
    graph: &Graph,
    heuristic: &Schedule,
    objective: Objective,
) -> (SearchScore, Schedule) {
    heuristic
        .validate(graph)
        .unwrap_or_else(|e| panic!("invalid heuristic schedule for {}: {e}", graph.name()));
    let model = search_model(soc, graph, heuristic);
    let n = model.num_nodes();
    let t = model.targets().len();
    assert!(n <= 10, "exhaustive oracle limited to graphs of ≤ 10 ops, got {n}");
    let space = (t as u64).checked_pow(n as u32).expect("assignment space fits in u64");
    assert!(space <= 1 << 20, "assignment space too large for the oracle: {space}");

    let mut assign = vec![0u8; n];
    let mut best: Option<(f64, SearchScore, Schedule)> = None;
    loop {
        if (0..n).all(|i| model.is_supported(i, assign[i] as usize)) {
            let schedule = model.schedule(&assign);
            let score = SearchScore {
                latency_secs: estimate_query_secs(soc, graph, &schedule),
                energy_j: active_energy_j(soc, graph, &schedule),
            };
            let obj = objective_of(score, objective);
            if best.as_ref().is_none_or(|(b, _, _)| obj < *b) {
                best = Some((obj, score, schedule));
            }
        }
        // Odometer increment, last digit fastest (lexicographic order).
        let mut i = n;
        loop {
            if i == 0 {
                let (_, score, schedule) = best.expect("oracle space contains the heuristic");
                return (score, schedule);
            }
            i -= 1;
            if (assign[i] as usize) < t - 1 {
                assign[i] += 1;
                break;
            }
            assign[i] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::backends::Nnapi;
    use crate::DriverQuality;
    use nn_graph::builder::GraphBuilder;
    use nn_graph::graph::retype;
    use nn_graph::models::ModelId;
    use nn_graph::{Activation, DataType, Shape};
    use soc_sim::catalog::ChipId;
    use soc_sim::engine::EngineKind;
    use soc_sim::schedule::Stage;

    /// An 8-node graph small enough for the exhaustive oracle.
    fn tiny_graph() -> Graph {
        let mut b = GraphBuilder::new("tiny", Shape::nhwc(16, 16, 3), DataType::U8);
        let stem = b.conv2d("stem", b.input_id(), 3, 2, 8, Activation::Relu6);
        let c1 = b.conv2d("c1", stem, 1, 1, 16, Activation::Relu6);
        let d1 = b.depthwise_conv2d("d1", c1, 3, 1, Activation::Relu6);
        let p1 = b.conv2d("p1", d1, 1, 1, 8, Activation::None);
        let gap = b.global_avg_pool("gap", p1);
        let fc = b.fully_connected("fc", gap, 10, Activation::None);
        let _ = b.softmax("sm", fc);
        b.finish()
    }

    /// A deliberately bad heuristic: one stage per node, ping-ponging
    /// between two engines — plenty of room for the tuner to improve.
    fn alternating_schedule(graph: &Graph, soc: &Soc) -> Schedule {
        let npu = soc.engine_of_kind(EngineKind::Npu).unwrap();
        let cpu = soc.cpu();
        let stages = graph
            .iter()
            .enumerate()
            .map(|(i, node)| Stage {
                engine: if i % 2 == 0 { cpu } else { npu },
                dtype: DataType::U8,
                nodes: vec![node.id],
                sync_overhead_us: 10.0,
            })
            .collect();
        Schedule { stages, query_overhead_us: 0.0 }
    }

    #[test]
    fn tuner_never_regresses_and_improves_a_bad_heuristic() {
        let soc = ChipId::Dimensity1100.build();
        let graph = retype(&ModelId::MobileNetEdgeTpu.build(), DataType::U8);
        let heuristic = alternating_schedule(&graph, &soc);
        let outcome = tune(&soc, &graph, &heuristic, &TunerConfig::latency());
        assert!(outcome.improved, "a per-node ping-pong schedule must be beatable");
        assert!(outcome.tuned.latency_secs < outcome.heuristic.latency_secs);
        outcome.schedule.validate(&graph).expect("tuned schedule is valid");
        assert_eq!(
            estimate_query_secs(&soc, &graph, &outcome.schedule).to_bits(),
            outcome.tuned.latency_secs.to_bits(),
            "reported score must be the canonical evaluator's, bit-exactly"
        );
    }

    #[test]
    fn tuner_beats_or_matches_a_real_vendor_heuristic() {
        let soc = ChipId::Snapdragon888.build();
        let graph = ModelId::SsdMobileNetV2.build();
        let dep = Nnapi { driver: DriverQuality::Good }.compile(&graph, &soc).unwrap();
        let outcome =
            tune(&soc, &dep.graph, &dep.schedule, &TunerConfig::latency());
        assert!(
            outcome.tuned.latency_secs <= outcome.heuristic.latency_secs,
            "tuner regressed past the seed incumbent"
        );
        outcome.schedule.validate(&dep.graph).expect("tuned schedule is valid");
    }

    #[test]
    fn exact_mode_matches_the_exhaustive_oracle_bit_for_bit() {
        let soc = ChipId::Exynos990.build();
        let graph = tiny_graph();
        let heuristic = alternating_schedule(&graph, &soc);
        for objective in [Objective::Latency, Objective::Energy] {
            let (oracle, _) = exhaustive_optimum(&soc, &graph, &heuristic, objective);
            let outcome = tune(&soc, &graph, &heuristic, &TunerConfig::exact(objective));
            assert_eq!(outcome.stats.beam_truncations, 0, "exact mode must not truncate");
            let got = objective_of(outcome.tuned, objective);
            let want = objective_of(oracle, objective);
            assert_eq!(got.to_bits(), want.to_bits(), "{objective} optimum drifted");
        }
    }

    #[test]
    fn energy_objective_never_regresses_energy() {
        let soc = ChipId::Dimensity1100.build();
        let graph = retype(&ModelId::DeepLabV3Plus.build(), DataType::U8);
        let heuristic = alternating_schedule(&graph, &soc);
        let outcome = tune(&soc, &graph, &heuristic, &TunerConfig::energy());
        assert!(outcome.tuned.energy_j <= outcome.heuristic.energy_j);
        assert_eq!(
            active_energy_j(&soc, &graph, &outcome.schedule).to_bits(),
            outcome.tuned.energy_j.to_bits()
        );
    }
}
