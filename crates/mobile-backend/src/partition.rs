//! Graph partitioning: assigning ops to engines under op-support
//! constraints and a fallback policy.
//!
//! This is the mechanism behind the paper's software-fragmentation story
//! (Section 2.2): an accelerator only supports a subset of op classes, so
//! the framework must cut the graph and bounce unsupported ops to a
//! fallback engine. *How* it cuts — naively at every unsupported op, with
//! hysteresis, or with lookahead merging — determines the number of
//! engine transitions and therefore the interconnect cost.

use nn_graph::{DataType, Graph};
use serde::{Deserialize, Serialize};
use soc_sim::engine::EngineId;
use soc_sim::schedule::{Schedule, Stage};
use soc_sim::soc::Soc;

/// How the partitioner handles runs of ops around fallbacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FallbackPolicy {
    /// Switch engines exactly where support changes (naive drivers).
    /// `sticky` keeps the graph on the fallback engine for that many
    /// additional ops after each forced fallback — immature runtimes avoid
    /// re-entering the accelerator (ENN on Exynos 990).
    PingPong {
        /// Extra ops kept on the fallback engine after each fallback.
        sticky: usize,
    },
    /// Merge short accelerator runs *between* nearby fallbacks into the
    /// fallback engine when the run is at most `window` ops long —
    /// mature schedulers minimizing transitions (ENN 2.0, SNPE, Neuron).
    Merge {
        /// Maximum accelerator-run length that gets absorbed.
        window: usize,
    },
}

/// One placement target: an engine plus the precision it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Target {
    /// Engine to execute on.
    pub engine: EngineId,
    /// Precision of tensors/kernels on that engine.
    pub dtype: DataType,
}

/// Partitioning parameters.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// Preferred (primary) target, usually the AI accelerator.
    pub primary: Target,
    /// Fallback chain, tried in order for ops the primary cannot run.
    pub fallbacks: Vec<Target>,
    /// Fallback handling policy.
    pub policy: FallbackPolicy,
    /// Op classes the *driver* refuses to place on the primary even though
    /// the hardware supports them — buggy/missing kernels in a generic
    /// framework driver (paper Section 8: NNAPI can be 7x slower "due to
    /// buggy op support").
    pub primary_blocked: Vec<nn_graph::OpClass>,
    /// Per-stage framework synchronization overhead (µs) — the
    /// NNAPI-style HAL hop cost.
    pub sync_overhead_us: f64,
    /// One-time per-query framework overhead (µs) — HAL request setup.
    pub query_overhead_us: f64,
}

/// Partitioning failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// No target in the plan supports this op.
    Unplaceable {
        /// Node name.
        node: String,
        /// Op class that nothing supports.
        class: nn_graph::OpClass,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::Unplaceable { node, class } => {
                write!(f, "no engine in the plan can execute {node} ({class})")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// Partitions `graph` onto engines per the plan, producing a validated
/// [`Schedule`].
///
/// The implicit input node (zero inputs, zero flops) is always co-located
/// with its consumer to avoid a spurious input-DMA transition.
///
/// # Examples
///
/// ```
/// use mobile_backend::partition::{partition, FallbackPolicy, PartitionPlan, Target};
/// use mobile_backend::penalty;
/// use nn_graph::{graph::retype, models::ModelId, DataType};
/// use soc_sim::{catalog::ChipId, engine::EngineKind};
///
/// let soc = ChipId::Dimensity1100.build();
/// let graph = retype(&ModelId::SsdMobileNetV2.build(), DataType::U8);
/// // A vendor-SDK plan pays the direct-driver transition penalties from
/// // the shared table in `mobile_backend::penalty`.
/// let plan = PartitionPlan {
///     primary: Target { engine: soc.engine_of_kind(EngineKind::Npu).unwrap(), dtype: DataType::U8 },
///     fallbacks: vec![Target { engine: soc.cpu(), dtype: DataType::U8 }],
///     policy: FallbackPolicy::Merge { window: 2 },
///     primary_blocked: Vec::new(),
///     sync_overhead_us: penalty::VENDOR.sync_us,
///     query_overhead_us: penalty::VENDOR.query_us,
/// };
/// let schedule = partition(&graph, &soc, &plan)?;
/// // NMS cannot run on the NPU, so the schedule crosses to the CPU.
/// assert!(schedule.num_transitions() >= 1);
/// # Ok::<(), mobile_backend::partition::PartitionError>(())
/// ```
///
/// # Errors
///
/// Returns [`PartitionError::Unplaceable`] when neither the primary nor
/// any fallback supports an op.
pub fn partition(graph: &Graph, soc: &Soc, plan: &PartitionPlan) -> Result<Schedule, PartitionError> {
    let n = graph.len();
    // Step 1: per-node target choice.
    let mut choice: Vec<Option<Target>> = vec![None; n];
    let mut sticky_left = 0usize;
    for node in graph {
        let idx = node.id.index();
        if node.inputs.is_empty() && node.cost.flops == 0 {
            // Input pseudo-node: resolved in step 2.
            continue;
        }
        let primary_ok = soc
            .engine(plan.primary.engine)
            .supports(node.class(), plan.primary.dtype)
            && !plan.primary_blocked.contains(&node.class());
        let target = if primary_ok && sticky_left == 0 {
            plan.primary
        } else {
            if !primary_ok {
                if let FallbackPolicy::PingPong { sticky } = plan.policy {
                    sticky_left = sticky;
                }
            } else {
                sticky_left = sticky_left.saturating_sub(1);
            }
            let fb = plan
                .fallbacks
                .iter()
                .find(|t| soc.engine(t.engine).supports(node.class(), t.dtype))
                .copied();
            match fb {
                Some(t) => t,
                None if primary_ok => plan.primary,
                None => {
                    return Err(PartitionError::Unplaceable {
                        node: node.name.clone(),
                        class: node.class(),
                    })
                }
            }
        };
        choice[idx] = Some(target);
    }

    // Step 2: co-locate input pseudo-nodes with their first consumer.
    let consumers = graph.consumers();
    for node in graph {
        let idx = node.id.index();
        if choice[idx].is_none() {
            let follow = consumers[idx]
                .first()
                .and_then(|c| choice[c.index()])
                .unwrap_or(plan.primary);
            choice[idx] = Some(follow);
        }
    }

    // Step 3: merge pass — absorb short, *cheap* primary runs between
    // fallbacks. Merging exists to avoid transitions around glue ops; a
    // scheduler never moves heavy convolutions off the accelerator, so the
    // absorbed run must be a negligible fraction of the graph's FLOPs.
    if let FallbackPolicy::Merge { window } = plan.policy {
        let total_flops: u64 = graph.iter().map(|nd| nd.cost.flops).sum();
        let flop_budget = total_flops / 100;
        let nodes: Vec<&nn_graph::Node> = graph.iter().collect();
        let assignments: Vec<Target> = choice.iter().map(|c| c.expect("assigned")).collect();
        let mut i = 0usize;
        while i < n {
            if assignments[i].engine == plan.primary.engine {
                let start = i;
                while i < n && choice[i].expect("assigned").engine == plan.primary.engine {
                    i += 1;
                }
                let run = i - start;
                let before_fb = start > 0 && assignments[start - 1].engine != plan.primary.engine;
                let after_fb = i < n && assignments[i].engine != plan.primary.engine;
                let run_flops: u64 = (start..i).map(|j| nodes[j].cost.flops).sum();
                if run <= window && before_fb && after_fb && run_flops <= flop_budget {
                    // Absorb into the preceding fallback target when it can
                    // actually run every op in the run.
                    let t = assignments[start - 1];
                    let all_ok = (start..i).all(|j| {
                        nodes[j].cost.flops == 0
                            || soc.engine(t.engine).supports(nodes[j].class(), t.dtype)
                    });
                    if all_ok {
                        for c in choice.iter_mut().take(i).skip(start) {
                            *c = Some(t);
                        }
                    }
                }
            } else {
                i += 1;
            }
        }
    }

    // Step 4: group consecutive nodes on the same target into stages.
    let mut stages: Vec<Stage> = Vec::new();
    for node in graph {
        let t = choice[node.id.index()].expect("assigned");
        match stages.last_mut() {
            Some(stage) if stage.engine == t.engine && stage.dtype == t.dtype => {
                stage.nodes.push(node.id);
            }
            _ => stages.push(Stage {
                engine: t.engine,
                dtype: t.dtype,
                nodes: vec![node.id],
                sync_overhead_us: plan.sync_overhead_us,
            }),
        }
    }
    let schedule = Schedule { stages, query_overhead_us: plan.query_overhead_us };
    debug_assert!(schedule.validate(graph).is_ok());
    Ok(schedule)
}

/// Fraction of the graph's FLOPs the primary target can execute — the
/// "accelerator coverage" a framework uses to decide whether offloading is
/// worth it at all.
#[must_use]
pub fn primary_coverage(graph: &Graph, soc: &Soc, primary: Target) -> f64 {
    let engine = soc.engine(primary.engine);
    let total: u64 = graph.iter().map(|n| n.cost.flops).sum();
    if total == 0 {
        return 0.0;
    }
    let supported: u64 = graph
        .iter()
        .filter(|n| engine.supports(n.class(), primary.dtype))
        .map(|n| n.cost.flops)
        .sum();
    supported as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn_graph::models::ModelId;
    use nn_graph::{graph::retype, OpClass};
    use soc_sim::catalog::ChipId;
    use soc_sim::engine::EngineKind;

    fn setup() -> (Soc, Graph) {
        let soc = ChipId::Dimensity1100.build();
        let graph = retype(&ModelId::SsdMobileNetV2.build(), DataType::U8);
        (soc, graph)
    }

    fn plan(soc: &Soc, policy: FallbackPolicy) -> PartitionPlan {
        let npu = soc.engine_of_kind(EngineKind::Npu).unwrap();
        PartitionPlan {
            primary: Target { engine: npu, dtype: DataType::U8 },
            fallbacks: vec![Target { engine: soc.cpu(), dtype: DataType::U8 }],
            policy,
            primary_blocked: Vec::new(),
            sync_overhead_us: 10.0,
            query_overhead_us: 0.0,
        }
    }

    #[test]
    fn detection_postprocessing_falls_to_cpu() {
        let (soc, graph) = setup();
        let sched = partition(&graph, &soc, &plan(&soc, FallbackPolicy::PingPong { sticky: 0 }))
            .unwrap();
        assert!(sched.validate(&graph).is_ok());
        // NMS and BoxDecode must be on the CPU stage.
        let cpu = soc.cpu();
        let stage_of = sched.stage_of(&graph);
        for node in &graph {
            if matches!(node.class(), OpClass::Nms | OpClass::BoxDecode) {
                let s = &sched.stages[stage_of[node.id.index()]];
                assert_eq!(s.engine, cpu, "{} should be on CPU", node.name);
            }
        }
    }

    #[test]
    fn merge_reduces_transitions() {
        let soc = ChipId::Exynos990.build();
        let graph = retype(&ModelId::DeepLabV3Plus.build(), DataType::I8);
        let npu = soc.engine_of_kind(EngineKind::Npu).unwrap();
        let mk = |policy| PartitionPlan {
            primary: Target { engine: npu, dtype: DataType::I8 },
            fallbacks: vec![
                Target { engine: soc.engine_of_kind(EngineKind::Gpu).unwrap(), dtype: DataType::F16 },
                Target { engine: soc.cpu(), dtype: DataType::I8 },
            ],
            policy,
            primary_blocked: Vec::new(),
            sync_overhead_us: 10.0,
            query_overhead_us: 0.0,
        };
        let naive = partition(&graph, &soc, &mk(FallbackPolicy::PingPong { sticky: 0 })).unwrap();
        let merged = partition(&graph, &soc, &mk(FallbackPolicy::Merge { window: 4 })).unwrap();
        assert!(
            merged.num_transitions() <= naive.num_transitions(),
            "merge {} vs naive {}",
            merged.num_transitions(),
            naive.num_transitions()
        );
    }

    #[test]
    fn sticky_fallback_expands_fallback_region() {
        let soc = ChipId::Exynos990.build();
        let graph = retype(&ModelId::DeepLabV3Plus.build(), DataType::I8);
        let npu = soc.engine_of_kind(EngineKind::Npu).unwrap();
        let gpu = soc.engine_of_kind(EngineKind::Gpu).unwrap();
        let mk = |sticky| PartitionPlan {
            primary: Target { engine: npu, dtype: DataType::I8 },
            fallbacks: vec![
                Target { engine: gpu, dtype: DataType::F16 },
                Target { engine: soc.cpu(), dtype: DataType::I8 },
            ],
            policy: FallbackPolicy::PingPong { sticky },
            primary_blocked: Vec::new(),
            sync_overhead_us: 10.0,
            query_overhead_us: 0.0,
        };
        let count_gpu = |s: &Schedule| -> usize {
            s.stages
                .iter()
                .filter(|st| st.engine == gpu)
                .map(|st| st.nodes.len())
                .sum()
        };
        let tight = partition(&graph, &soc, &mk(0)).unwrap();
        let sticky = partition(&graph, &soc, &mk(10)).unwrap();
        assert!(count_gpu(&sticky) > count_gpu(&tight));
    }

    #[test]
    fn input_node_colocated_with_consumer() {
        let (soc, graph) = setup();
        let sched = partition(&graph, &soc, &plan(&soc, FallbackPolicy::PingPong { sticky: 0 }))
            .unwrap();
        // First stage contains both the input node and the stem conv.
        assert!(sched.stages[0].nodes.len() >= 2);
    }

    #[test]
    fn unplaceable_error() {
        let (soc, graph) = setup();
        let npu = soc.engine_of_kind(EngineKind::Npu).unwrap();
        let p = PartitionPlan {
            primary: Target { engine: npu, dtype: DataType::U8 },
            fallbacks: vec![], // nothing to catch NMS
            policy: FallbackPolicy::PingPong { sticky: 0 },
            primary_blocked: Vec::new(),
            sync_overhead_us: 0.0,
            query_overhead_us: 0.0,
        };
        let err = partition(&graph, &soc, &p).unwrap_err();
        assert!(matches!(err, PartitionError::Unplaceable { .. }));
    }

    #[test]
    fn coverage_high_for_vision_low_for_nlp() {
        let soc = ChipId::Dimensity1100.build();
        let npu = soc.engine_of_kind(EngineKind::Npu).unwrap();
        let t = Target { engine: npu, dtype: DataType::U8 };
        let vision = retype(&ModelId::MobileNetEdgeTpu.build(), DataType::U8);
        let nlp = retype(&ModelId::MobileBert.build(), DataType::U8);
        let cv = primary_coverage(&vision, &soc, t);
        let cn = primary_coverage(&nlp, &soc, t);
        assert!(cv > 0.95, "vision coverage {cv}");
        assert!(cn < cv, "nlp coverage {cn} should trail vision {cv}");
    }

    #[test]
    fn all_models_partition_on_all_phones() {
        for chip in ChipId::ALL.iter().filter(|c| !c.build().is_laptop) {
            let soc = chip.build();
            let npu = soc
                .engines()
                .find(|(_, e)| e.kind.is_accelerator())
                .map(|(id, _)| id)
                .unwrap();
            let p = PartitionPlan {
                primary: Target { engine: npu, dtype: DataType::U8 },
                fallbacks: vec![
                    Target {
                        engine: soc.engine_of_kind(EngineKind::Gpu).unwrap(),
                        dtype: DataType::F16,
                    },
                    Target { engine: soc.cpu(), dtype: DataType::U8 },
                ],
                policy: FallbackPolicy::Merge { window: 2 },
                primary_blocked: Vec::new(),
                sync_overhead_us: 5.0,
                query_overhead_us: 0.0,
            };
            for model in ModelId::ALL {
                let g = retype(&model.build(), DataType::U8);
                let sched = partition(&g, &soc, &p)
                    .unwrap_or_else(|e| panic!("{chip:?}/{model:?}: {e}"));
                assert!(sched.validate(&g).is_ok());
            }
        }
    }
}
