//! The backend abstraction (paper Figure 5).
//!
//! A backend is what turns a frozen reference model into something that
//! runs on a particular SoC: it picks numerics, partitions the graph onto
//! engines, and carries the framework overheads of its code path. The
//! benchmark app talks to every backend through this one trait, exactly as
//! the MLPerf app's backend layer does.

use crate::partition::PartitionError;
use nn_graph::{DataType, Graph};
use quant::Scheme;
use serde::{Deserialize, Serialize};
use soc_sim::schedule::Schedule;
use soc_sim::soc::Soc;
use std::fmt;

/// Identifier of a backend implementation (a "code path" in Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BackendId {
    /// TFLite CPU kernels (XNNPACK-style) — the universal baseline.
    TfliteCpu,
    /// TFLite GPU delegate (FP16).
    TfliteGpu,
    /// Android NNAPI with the platform driver.
    Nnapi,
    /// MediaTek Neuron delegate (vendor driver, no HAL hop).
    Neuron,
    /// Samsung Exynos Neural Network SDK.
    Enn,
    /// Qualcomm Snapdragon Neural Processing Engine.
    Snpe,
    /// Intel OpenVINO (laptop code path 3).
    OpenVino,
}

impl fmt::Display for BackendId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BackendId::TfliteCpu => "TFLite (CPU)",
            BackendId::TfliteGpu => "TFLite delegate (GPU)",
            BackendId::Nnapi => "NNAPI",
            BackendId::Neuron => "Neuron Delegate",
            BackendId::Enn => "ENN",
            BackendId::Snpe => "SNPE",
            BackendId::OpenVino => "OpenVINO",
        };
        f.write_str(s)
    }
}

/// A compiled deployment: the retyped graph plus its placement.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// Which backend produced it.
    pub backend: BackendId,
    /// Numerics scheme in force.
    pub scheme: Scheme,
    /// The graph, retyped to the deployment precision.
    pub graph: Graph,
    /// Single-query (single-stream) placement.
    pub schedule: Schedule,
    /// Concurrent streams for offline mode (accelerator-level
    /// parallelism); at least one, the first equals `schedule` when no ALP
    /// is available.
    pub offline_streams: Vec<Schedule>,
}

impl Deployment {
    /// Estimated single-stream latency in milliseconds (nominal frequency).
    #[must_use]
    pub fn estimate_ms(&self, soc: &Soc) -> f64 {
        soc_sim::executor::estimate_query_secs(soc, &self.graph, &self.schedule) * 1e3
    }

    /// Human-readable accelerator summary ("NPU+CPU"), as in paper Table 2.
    #[must_use]
    pub fn accelerator_summary(&self, soc: &Soc) -> String {
        let mut kinds: Vec<String> = Vec::new();
        for stage in &self.schedule.stages {
            let k = soc.engine(stage.engine).kind.to_string();
            if !kinds.contains(&k) {
                kinds.push(k);
            }
        }
        kinds.join("+")
    }

    /// Peak memory footprint of the deployment in bytes: all weights at
    /// their stage precision plus the largest intermediate activation.
    ///
    /// Devices "vary in their memory capacity and storage features" (paper
    /// Section 2.1) — this is the number a memory-tiered device compares
    /// against its budget.
    #[must_use]
    pub fn peak_memory_bytes(&self) -> u64 {
        let stage_of = self.schedule.stage_of(&self.graph);
        let mut weights = 0u64;
        let mut peak_activation = 0u64;
        for node in &self.graph {
            let dtype = self.schedule.stages[stage_of[node.id.index()]].dtype;
            weights += node.cost.weight_bytes(dtype);
            peak_activation =
                peak_activation.max(node.output.shape.byte_size(dtype) as u64);
        }
        weights + peak_activation
    }

    /// The dominant precision (by op count) of the deployment, for
    /// Table 2-style reporting.
    #[must_use]
    pub fn dominant_dtype(&self) -> DataType {
        let mut counts: std::collections::BTreeMap<DataType, usize> = Default::default();
        for s in &self.schedule.stages {
            *counts.entry(s.dtype).or_default() += s.nodes.len();
        }
        counts
            .into_iter()
            .max_by_key(|&(_, c)| c)
            .map(|(d, _)| d)
            .expect("schedule non-empty")
    }
}

/// Compilation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The backend cannot target this SoC at all (e.g. SNPE on Exynos).
    UnsupportedSoc {
        /// SoC name.
        soc: String,
        /// Backend that refused.
        backend: BackendId,
    },
    /// No engine arrangement could place the graph.
    Partition(PartitionError),
    /// The requested numerics scheme is not runnable on this SoC.
    UnsupportedScheme {
        /// Requested scheme description.
        scheme: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnsupportedSoc { soc, backend } => {
                write!(f, "{backend} cannot target {soc}")
            }
            CompileError::Partition(e) => write!(f, "partitioning failed: {e}"),
            CompileError::UnsupportedScheme { scheme } => {
                write!(f, "scheme {scheme} not runnable on this SoC")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<PartitionError> for CompileError {
    fn from(e: PartitionError) -> Self {
        CompileError::Partition(e)
    }
}

/// A backend: compiles reference graphs into deployments for a SoC.
///
/// Object-safe so the harness can hold heterogeneous backends, mirroring
/// the app's pluggable backend layer.
pub trait Backend: fmt::Debug + Send + Sync {
    /// Which code path this is.
    fn id(&self) -> BackendId;

    /// Compiles the FP32 reference graph for the SoC, choosing numerics
    /// and placement. Backends pick the best-estimated option among their
    /// legal candidates (vendor SDKs are exactly this kind of
    /// auto-tuner; paper Section 7.4).
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] when the backend cannot produce a valid
    /// deployment on this SoC.
    fn compile(&self, reference: &Graph, soc: &Soc) -> Result<Deployment, CompileError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_ids_display() {
        assert_eq!(BackendId::Snpe.to_string(), "SNPE");
        assert_eq!(BackendId::Neuron.to_string(), "Neuron Delegate");
        assert_eq!(BackendId::TfliteGpu.to_string(), "TFLite delegate (GPU)");
    }

    #[test]
    fn peak_memory_tracks_precision() {
        use crate::backends::{TfliteCpu, TfliteGpu};
        use nn_graph::models::ModelId;
        use soc_sim::catalog::ChipId;
        let soc = ChipId::Snapdragon888.build();
        let reference = ModelId::MobileBert.build();
        let int8 = TfliteCpu.compile(&reference, &soc).unwrap();
        let fp16 = TfliteGpu.compile(&reference, &soc).unwrap();
        // FP16 weights are twice the INT8 bytes; ~21M params dominate.
        let ratio = fp16.peak_memory_bytes() as f64 / int8.peak_memory_bytes() as f64;
        assert!((1.7..2.2).contains(&ratio), "ratio {ratio:.2}");
        assert!(int8.peak_memory_bytes() > 20_000_000);
    }

    #[test]
    fn compile_error_displays() {
        let e = CompileError::UnsupportedSoc { soc: "Exynos 990".into(), backend: BackendId::Snpe };
        assert!(e.to_string().contains("SNPE"));
        assert!(e.to_string().contains("Exynos 990"));
    }
}
