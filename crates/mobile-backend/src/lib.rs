//! Backend layer for the MLPerf Mobile reproduction.
//!
//! Implements the paper's backend abstraction (Figure 5): vendor SDKs
//! (SNPE, ENN, Neuron), generic frameworks (TFLite CPU/GPU, NNAPI) and the
//! laptop path (OpenVINO), all driving a simulated SoC through real graph
//! partitioning, cost-based engine selection, and framework-specific
//! overheads.
//!
//! # Examples
//!
//! ```
//! use mobile_backend::backend::Backend;
//! use mobile_backend::backends::Neuron;
//! use nn_graph::models::ModelId;
//! use soc_sim::catalog::ChipId;
//!
//! let soc = ChipId::Dimensity1100.build();
//! let deployment = Neuron.compile(&ModelId::MobileNetEdgeTpu.build(), &soc)?;
//! println!("runs on {} at {}", deployment.accelerator_summary(&soc), deployment.scheme);
//! # Ok::<(), mobile_backend::backend::CompileError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod backend;
pub mod backends;
pub mod optimize;
pub mod partition;
pub mod penalty;
pub mod registry;
pub mod tune;

pub use backend::{Backend, BackendId, CompileError, Deployment};
pub use backends::{DriverQuality, Enn, Neuron, Nnapi, OpenVino, Snpe, TfliteCpu, TfliteGpu};
pub use optimize::{optimize, OptimizeStats};
pub use partition::{partition, FallbackPolicy, PartitionPlan, Target};
pub use penalty::TransitionPenalty;
pub use registry::{available_backends, create, vendor_backend, ALL_BACKENDS};
pub use tune::{exhaustive_optimum, search_model, tune, Objective, TuneOutcome, TuneStats, TunerConfig};
