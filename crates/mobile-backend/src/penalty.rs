//! The per-vendor transition-penalty table.
//!
//! Every backend pays two scheduling overheads when its compiled
//! [`Schedule`](soc_sim::schedule::Schedule) crosses engines (paper
//! Section 7.4 and Insights 2–5: the HAL hop is why NNAPI placements
//! lose to direct vendor SDKs on the same silicon):
//!
//! - **`sync_us`** — per-stage synchronization, paid once per stage
//!   (fence + dispatch of the next partition).
//! - **`query_us`** — one-time per-query request setup.
//!
//! | framework path                          | sync µs | query µs |
//! |-----------------------------------------|---------|----------|
//! | TFLite CPU (single engine, no crossing) |     0.0 |      0.0 |
//! | NNAPI (Android HAL hop)                 |    40.0 |    190.0 |
//! | vendor / delegate (direct driver)       |    10.0 |      0.0 |
//!
//! This table is the *single source* for these constants: the backend
//! plan builders in [`crate::backends`] read them when constructing
//! [`PartitionPlan`](crate::partition::PartitionPlan)s, and the schedule
//! auto-tuner ([`crate::tune`]) carries the same penalties into every
//! candidate schedule and its branch-and-bound lower bound — so tuned
//! and heuristic schedules are always compared under identical framework
//! costs.
//!
//! OpenVINO's CPU-only plan is the one accelerated path that pays no
//! sync (a single-process inference engine with no device crossing); its
//! iGPU plan pays the vendor penalty like every other delegate. That is
//! why [`TransitionPenalty::of_schedule`] — which reads the penalties a
//! compiled schedule actually carries — is what the tuner uses, while
//! [`TransitionPenalty::for_backend`] documents the framework-level
//! table above.

use crate::backend::BackendId;
use serde::{Deserialize, Serialize};
use soc_sim::schedule::Schedule;

/// The two scheduling overheads a framework pays around engine
/// transitions, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitionPenalty {
    /// Per-stage synchronization overhead (fence + next-partition
    /// dispatch), µs.
    pub sync_us: f64,
    /// One-time per-query request-setup overhead, µs.
    pub query_us: f64,
}

/// No transition cost: single-engine paths that never cross (TFLite CPU,
/// OpenVINO's CPU plan).
pub const NONE: TransitionPenalty = TransitionPenalty { sync_us: 0.0, query_us: 0.0 };

/// The Android NNAPI HAL hop: every stage round-trips through the
/// platform driver interface, and each query pays a request-setup cost.
pub const NNAPI: TransitionPenalty = TransitionPenalty { sync_us: 40.0, query_us: 190.0 };

/// Direct vendor SDKs and in-process delegates (TFLite GPU, Neuron, ENN,
/// SNPE, OpenVINO iGPU): a cheap driver-level fence, no per-query setup.
pub const VENDOR: TransitionPenalty = TransitionPenalty { sync_us: 10.0, query_us: 0.0 };

impl TransitionPenalty {
    /// The framework-level penalty of a backend's accelerated path (the
    /// table in the module docs).
    #[must_use]
    pub const fn for_backend(backend: BackendId) -> TransitionPenalty {
        match backend {
            BackendId::TfliteCpu => NONE,
            BackendId::Nnapi => NNAPI,
            BackendId::TfliteGpu
            | BackendId::Neuron
            | BackendId::Enn
            | BackendId::Snpe
            | BackendId::OpenVino => VENDOR,
        }
    }

    /// The penalties a compiled schedule actually carries: `sync_us` from
    /// its first stage (backends apply one uniform per-stage sync),
    /// `query_us` from the schedule itself. This is what the tuner reads,
    /// so candidates pay exactly what the heuristic paid.
    #[must_use]
    pub fn of_schedule(schedule: &Schedule) -> TransitionPenalty {
        TransitionPenalty {
            sync_us: schedule.stages.first().map_or(0.0, |s| s.sync_overhead_us),
            query_us: schedule.query_overhead_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::create;
    use nn_graph::models::ModelId;
    use soc_sim::catalog::ChipId;

    /// Every multi-stage (engine-crossing) schedule a backend compiles
    /// carries exactly the table's penalties for that backend — the table
    /// and the compiled plans cannot drift apart.
    #[test]
    fn compiled_schedules_match_the_table() {
        let cases = [
            (ChipId::Dimensity1100, BackendId::TfliteCpu),
            (ChipId::Dimensity1100, BackendId::TfliteGpu),
            (ChipId::Dimensity1100, BackendId::Nnapi),
            (ChipId::Dimensity1100, BackendId::Neuron),
            (ChipId::Exynos990, BackendId::Enn),
            (ChipId::Snapdragon888, BackendId::Snpe),
        ];
        for (chip, backend) in cases {
            let soc = chip.build();
            let graph = ModelId::SsdMobileNetV2.build();
            let dep = create(backend).compile(&graph, &soc).expect("compiles");
            let got = TransitionPenalty::of_schedule(&dep.schedule);
            let want = TransitionPenalty::for_backend(backend);
            if dep.schedule.num_transitions() > 0 {
                assert_eq!(got, want, "{backend:?} on {chip:?} drifted from the penalty table");
            }
            assert_eq!(got.query_us, want.query_us, "{backend:?} query overhead drifted");
        }
    }

    /// The re-exported legacy constants stay aliased to the table.
    #[test]
    fn legacy_constants_alias_the_table() {
        assert_eq!(crate::backends::NNAPI_SYNC_US.to_bits(), NNAPI.sync_us.to_bits());
        assert_eq!(crate::backends::NNAPI_QUERY_US.to_bits(), NNAPI.query_us.to_bits());
        assert_eq!(crate::backends::VENDOR_SYNC_US.to_bits(), VENDOR.sync_us.to_bits());
    }
}
