//! The seven backend implementations (paper Figures 1 and 5).
//!
//! Each backend generates its legal candidate deployments, estimates them
//! on the simulated SoC, and returns the fastest — which is how real
//! vendor SDKs behave (paper Section 7.4: "the back end must choose
//! between the CPU and GPU to deliver the best overall performance").
//! The candidate sets and overheads differ per code path:
//!
//! | backend  | primary            | fallback chain       | policy    | per-stage sync |
//! |----------|--------------------|----------------------|-----------|----------------|
//! | TFLite   | CPU                | —                    | —         | none           |
//! | TFLite-G | GPU (FP16)         | CPU                  | merge     | low            |
//! | NNAPI    | accel or GPU       | GPU, CPU             | ping-pong | **high (HAL)** |
//! | Neuron   | accel or GPU       | GPU, CPU             | merge     | low            |
//! | ENN v1   | NPU (990)          | GPU *FP32*, CPU      | sticky    | low            |
//! | ENN v2   | NPU (2100)         | GPU FP16, CPU        | merge     | low            |
//! | SNPE     | HTA                | GPU FP16, CPU        | merge     | low            |
//! | OpenVINO | CPU or iGPU (INT8) | CPU                  | merge     | low            |

use crate::backend::{Backend, BackendId, CompileError, Deployment};
use crate::partition::{partition, primary_coverage, FallbackPolicy, PartitionPlan, Target};
use nn_graph::graph::retype;
use nn_graph::{DataType, Graph, OpClass};
use quant::Scheme;
use soc_sim::engine::{EngineId, EngineKind};
use soc_sim::executor::estimate_query_secs;

use soc_sim::soc::Soc;

/// Per-stage synchronization overhead of the NNAPI HAL hop, µs.
/// Aliases the documented table in [`crate::penalty`].
pub const NNAPI_SYNC_US: f64 = crate::penalty::NNAPI.sync_us;
/// One-time per-query NNAPI HAL request-setup overhead, µs.
/// Aliases the documented table in [`crate::penalty`].
pub const NNAPI_QUERY_US: f64 = crate::penalty::NNAPI.query_us;
/// Per-stage synchronization overhead of vendor/delegate paths, µs.
/// Aliases the documented table in [`crate::penalty`].
pub const VENDOR_SYNC_US: f64 = crate::penalty::VENDOR.sync_us;

fn first_accelerator(soc: &Soc) -> Option<EngineId> {
    soc.engines()
        .find(|(_, e)| e.kind.is_accelerator())
        .map(|(id, _)| id)
}

fn gpu(soc: &Soc) -> Option<EngineId> {
    soc.engine_of_kind(EngineKind::Gpu)
        .or_else(|| soc.engine_of_kind(EngineKind::IntegratedGpu))
}

/// A candidate = scheme + partition plan; `build` compiles and estimates.
struct Candidate {
    scheme: Scheme,
    plan: PartitionPlan,
}

/// Coverage threshold below which a vendor SDK gives up on its
/// accelerator and hands the network to the GPU delegate at FP16 — the
/// mechanism behind the paper's Insight 5 (NLP runs FP16 on phones
/// because "most AI engines today lack efficient support for non vision
/// tasks").
const VENDOR_COVERAGE_THRESHOLD: f64 = 0.95;

/// Vendor SDKs choose greedily by *op coverage*, not by global cost: if
/// the accelerator claims (almost) every FLOP it is used, otherwise the
/// network is handed to the GPU. This reproduces both the vision-on-NPU
/// configurations of Table 2 and the Exynos 990's ill-fated NPU+GPU
/// segmentation split.
fn pick_by_coverage(
    id: BackendId,
    reference: &Graph,
    soc: &Soc,
    candidates: Vec<Candidate>,
    offline_extra: &[PartitionPlan],
) -> Result<Deployment, CompileError> {
    let mut chosen: Option<Candidate> = None;
    for cand in candidates {
        let graph = retype(reference, cand.scheme.dtype());
        let coverage = primary_coverage(&graph, soc, cand.plan.primary);
        if coverage >= VENDOR_COVERAGE_THRESHOLD {
            chosen = Some(cand);
            break;
        }
        if chosen.is_none() {
            chosen = Some(cand);
        }
    }
    // Re-rank: when no candidate clears the threshold, the last (GPU)
    // candidate is the vendor's documented fallback; pick the one with the
    // highest coverage.
    let cand = chosen.ok_or(CompileError::UnsupportedScheme {
        scheme: "no candidate deployment".to_owned(),
    })?;
    pick_best(id, reference, soc, vec![cand], offline_extra)
}

fn pick_best(
    id: BackendId,
    reference: &Graph,
    soc: &Soc,
    candidates: Vec<Candidate>,
    offline_extra: &[PartitionPlan],
) -> Result<Deployment, CompileError> {
    let mut best: Option<(f64, Deployment)> = None;
    for cand in candidates {
        let graph = retype(reference, cand.scheme.dtype());
        let Ok(schedule) = partition(&graph, soc, &cand.plan) else {
            continue;
        };
        let est = estimate_query_secs(soc, &graph, &schedule);
        let deployment = Deployment {
            backend: id,
            scheme: cand.scheme,
            graph,
            schedule,
            offline_streams: Vec::new(),
        };
        if best.as_ref().is_none_or(|(b, _)| est < *b) {
            best = Some((est, deployment));
        }
    }
    let (_, mut dep) = best.ok_or(CompileError::UnsupportedScheme {
        scheme: "no candidate deployment placed the graph".to_owned(),
    })?;
    // Offline streams: the single-stream schedule plus any extra ALP
    // streams that successfully place the graph.
    dep.offline_streams.push(dep.schedule.clone());
    for plan in offline_extra {
        if let Ok(s) = partition(&dep.graph, soc, plan) {
            dep.offline_streams.push(s);
        }
    }
    Ok(dep)
}

fn cpu_plan(soc: &Soc, dtype: DataType, sync: f64) -> PartitionPlan {
    PartitionPlan {
        primary: Target { engine: soc.cpu(), dtype },
        fallbacks: Vec::new(),
        policy: FallbackPolicy::Merge { window: 0 },
        primary_blocked: Vec::new(),
        sync_overhead_us: sync,
        query_overhead_us: 0.0,
    }
}

// ---------------------------------------------------------------------------
// TFLite
// ---------------------------------------------------------------------------

/// TFLite CPU kernels — the reference implementation's smartphone
/// baseline (paper Section 4.1). Quantized models run INT8 on the CPU.
#[derive(Debug, Clone, Copy, Default)]
pub struct TfliteCpu;

impl Backend for TfliteCpu {
    fn id(&self) -> BackendId {
        BackendId::TfliteCpu
    }

    fn compile(&self, reference: &Graph, soc: &Soc) -> Result<Deployment, CompileError> {
        let candidates = vec![Candidate {
            scheme: Scheme::ptq_default(DataType::I8),
            plan: cpu_plan(soc, DataType::I8, 0.0),
        }];
        pick_best(self.id(), reference, soc, candidates, &[])
    }
}

/// TFLite GPU delegate: FP16 on the GPU with CPU fallback — the phone
/// path used for MobileBERT in Table 2.
#[derive(Debug, Clone, Copy, Default)]
pub struct TfliteGpu;

impl Backend for TfliteGpu {
    fn id(&self) -> BackendId {
        BackendId::TfliteGpu
    }

    fn compile(&self, reference: &Graph, soc: &Soc) -> Result<Deployment, CompileError> {
        let gpu = gpu(soc).ok_or_else(|| CompileError::UnsupportedSoc {
            soc: soc.name.clone(),
            backend: self.id(),
        })?;
        let candidates = vec![Candidate {
            scheme: Scheme::Fp16,
            plan: PartitionPlan {
                primary: Target { engine: gpu, dtype: DataType::F16 },
                fallbacks: vec![Target { engine: soc.cpu(), dtype: DataType::F16 }],
                policy: FallbackPolicy::Merge { window: 2 },
                primary_blocked: Vec::new(),
                sync_overhead_us: VENDOR_SYNC_US,
                query_overhead_us: 0.0,
            },
        }];
        pick_best(self.id(), reference, soc, candidates, &[])
    }
}

// ---------------------------------------------------------------------------
// NNAPI and the Neuron delegate
// ---------------------------------------------------------------------------

/// Quality of the platform NNAPI driver.
#[derive(Debug, Clone, Default)]
pub enum DriverQuality {
    /// Well-maintained driver.
    #[default]
    Good,
    /// Driver with broken kernels for some op classes: those ops silently
    /// fall back to the CPU — reproducing the "7x slower due to buggy
    /// support" scenario from the paper's related-work discussion.
    Buggy {
        /// Classes the driver mishandles.
        broken: Vec<OpClass>,
    },
}

/// Android NNAPI: generic accelerator access through the hardware
/// abstraction layer, paying a per-partition synchronization cost.
#[derive(Debug, Clone, Default)]
pub struct Nnapi {
    /// Driver quality (default good).
    pub driver: DriverQuality,
}

impl Nnapi {
    /// An NNAPI backend with a buggy driver for the given classes.
    #[must_use]
    pub fn buggy(broken: Vec<OpClass>) -> Self {
        Nnapi { driver: DriverQuality::Buggy { broken } }
    }
}

fn accel_candidates(
    soc: &Soc,
    int_dtype: DataType,
    policy: FallbackPolicy,
    sync: f64,
    query: f64,
    blocked: Vec<OpClass>,
    gpu_fallback_dtype: DataType,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    if let Some(accel) = first_accelerator(soc) {
        let mut fallbacks = Vec::new();
        if let Some(g) = gpu(soc) {
            fallbacks.push(Target { engine: g, dtype: gpu_fallback_dtype });
        }
        fallbacks.push(Target { engine: soc.cpu(), dtype: int_dtype });
        out.push(Candidate {
            scheme: Scheme::ptq_default(int_dtype),
            plan: PartitionPlan {
                primary: Target { engine: accel, dtype: int_dtype },
                fallbacks,
                policy,
                primary_blocked: blocked,
                sync_overhead_us: sync,
                query_overhead_us: query,
            },
        });
    }
    if let Some(g) = gpu(soc) {
        out.push(Candidate {
            scheme: Scheme::Fp16,
            plan: PartitionPlan {
                primary: Target { engine: g, dtype: DataType::F16 },
                fallbacks: vec![Target { engine: soc.cpu(), dtype: DataType::F16 }],
                policy: FallbackPolicy::Merge { window: 2 },
                primary_blocked: Vec::new(),
                sync_overhead_us: sync,
                query_overhead_us: query,
            },
        });
    }
    out
}

impl Backend for Nnapi {
    fn id(&self) -> BackendId {
        BackendId::Nnapi
    }

    fn compile(&self, reference: &Graph, soc: &Soc) -> Result<Deployment, CompileError> {
        if soc.is_laptop {
            return Err(CompileError::UnsupportedSoc { soc: soc.name.clone(), backend: self.id() });
        }
        let candidates = match &self.driver {
            DriverQuality::Good => accel_candidates(
                soc,
                DataType::U8,
                // Generic driver: naive cuts at every unsupported op.
                FallbackPolicy::PingPong { sticky: 0 },
                NNAPI_SYNC_US,
                NNAPI_QUERY_US,
                Vec::new(),
                DataType::F16,
            ),
            // A buggy driver mishandles kernels on *its* accelerator path
            // and bounces them to the NNAPI CPU reference implementation —
            // there is no healthy GPU route inside a broken driver.
            DriverQuality::Buggy { broken } => {
                let accel = first_accelerator(soc).ok_or_else(|| CompileError::UnsupportedSoc {
                    soc: soc.name.clone(),
                    backend: self.id(),
                })?;
                vec![Candidate {
                    scheme: Scheme::ptq_default(DataType::U8),
                    plan: PartitionPlan {
                        primary: Target { engine: accel, dtype: DataType::U8 },
                        fallbacks: vec![Target { engine: soc.cpu(), dtype: DataType::U8 }],
                        policy: FallbackPolicy::PingPong { sticky: 0 },
                        primary_blocked: broken.clone(),
                        sync_overhead_us: NNAPI_SYNC_US,
                        query_overhead_us: NNAPI_QUERY_US,
                    },
                }]
            }
        };
        pick_best(self.id(), reference, soc, candidates, &[])
    }
}

/// MediaTek's Neuron delegate: same hardware as NNAPI reaches, but
/// through the vendor driver — no HAL hop, transition-minimizing
/// scheduler, full multi-MDLA support (paper Table 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct Neuron;

impl Backend for Neuron {
    fn id(&self) -> BackendId {
        BackendId::Neuron
    }

    fn compile(&self, reference: &Graph, soc: &Soc) -> Result<Deployment, CompileError> {
        if soc.vendor != "MediaTek" {
            return Err(CompileError::UnsupportedSoc { soc: soc.name.clone(), backend: self.id() });
        }
        let candidates = accel_candidates(
            soc,
            DataType::U8,
            FallbackPolicy::Merge { window: 2 },
            VENDOR_SYNC_US,
            0.0,
            Vec::new(),
            DataType::F16,
        );
        pick_by_coverage(self.id(), reference, soc, candidates, &[])
    }
}

// ---------------------------------------------------------------------------
// Vendor SDKs: ENN (Samsung), SNPE (Qualcomm)
// ---------------------------------------------------------------------------

/// Samsung's Exynos Neural Network SDK.
///
/// On the Exynos 990 the runtime's scheduler was immature: fallbacks
/// sticky-dragged neighbouring ops onto the GPU *at FP32* and paid the
/// chip's slow inter-IP interconnect — the cause of the poor v0.7
/// segmentation score. ENN 2.0 on the Exynos 2100 merges partitions and
/// keeps data on-chip (paper Section 7.1: "critical features that reduce
/// data transfer between IP blocks, enabled in software through improved
/// scheduling" — a 6x software uplift).
#[derive(Debug, Clone, Copy, Default)]
pub struct Enn;

impl Backend for Enn {
    fn id(&self) -> BackendId {
        BackendId::Enn
    }

    fn compile(&self, reference: &Graph, soc: &Soc) -> Result<Deployment, CompileError> {
        if soc.vendor != "Samsung" {
            return Err(CompileError::UnsupportedSoc { soc: soc.name.clone(), backend: self.id() });
        }
        let v1_runtime = soc.name.contains("990");
        let (policy, gpu_dtype) = if v1_runtime {
            (FallbackPolicy::PingPong { sticky: 6 }, DataType::F32)
        } else {
            (FallbackPolicy::Merge { window: 3 }, DataType::F16)
        };
        let candidates =
            accel_candidates(soc, DataType::I8, policy, VENDOR_SYNC_US, 0.0, Vec::new(), gpu_dtype);
        // Offline ALP: add a CPU stream next to the NPU stream (Table 2:
        // "NPU+CPU" for Exynos offline classification).
        let extra = vec![cpu_plan(soc, DataType::I8, VENDOR_SYNC_US)];
        pick_by_coverage(self.id(), reference, soc, candidates, &extra)
    }
}

/// Qualcomm's Snapdragon Neural Processing Engine.
///
/// Single-stream runs on the HTA; offline adds the HVX as a second
/// concurrent stream (the "AIP = HTA+HVX" configuration in Table 2).
#[derive(Debug, Clone, Copy, Default)]
pub struct Snpe;

impl Backend for Snpe {
    fn id(&self) -> BackendId {
        BackendId::Snpe
    }

    fn compile(&self, reference: &Graph, soc: &Soc) -> Result<Deployment, CompileError> {
        if soc.vendor != "Qualcomm" {
            return Err(CompileError::UnsupportedSoc { soc: soc.name.clone(), backend: self.id() });
        }
        let candidates = accel_candidates(
            soc,
            DataType::U8,
            FallbackPolicy::Merge { window: 2 },
            VENDOR_SYNC_US,
            0.0,
            Vec::new(),
            DataType::F16,
        );
        // Offline: second stream on the HVX when present, else the CPU.
        let mut extra = Vec::new();
        if let Some(hvx) = soc.engine_of_kind(EngineKind::Hvx) {
            extra.push(PartitionPlan {
                primary: Target { engine: hvx, dtype: DataType::U8 },
                fallbacks: vec![Target { engine: soc.cpu(), dtype: DataType::U8 }],
                policy: FallbackPolicy::Merge { window: 2 },
                primary_blocked: Vec::new(),
                sync_overhead_us: VENDOR_SYNC_US,
                query_overhead_us: 0.0,
            });
        } else {
            extra.push(cpu_plan(soc, DataType::U8, VENDOR_SYNC_US));
        }
        pick_by_coverage(self.id(), reference, soc, candidates, &extra)
    }
}

// ---------------------------------------------------------------------------
// OpenVINO (laptops)
// ---------------------------------------------------------------------------

/// Intel's OpenVINO runtime — the laptop code path (paper Figure 5, code
/// path 3). All submissions run INT8; the runtime picks CPU or iGPU per
/// network, and offline mode runs both concurrently (Table 2: "CPU+GPU").
#[derive(Debug, Clone, Copy, Default)]
pub struct OpenVino;

impl Backend for OpenVino {
    fn id(&self) -> BackendId {
        BackendId::OpenVino
    }

    fn compile(&self, reference: &Graph, soc: &Soc) -> Result<Deployment, CompileError> {
        if !soc.is_laptop {
            return Err(CompileError::UnsupportedSoc { soc: soc.name.clone(), backend: self.id() });
        }
        let igpu = soc.engine_of_kind(EngineKind::IntegratedGpu);
        let mut candidates = vec![Candidate {
            scheme: Scheme::ptq_default(DataType::I8),
            plan: cpu_plan(soc, DataType::I8, 0.0),
        }];
        if let Some(g) = igpu {
            candidates.push(Candidate {
                scheme: Scheme::ptq_default(DataType::I8),
                plan: PartitionPlan {
                    primary: Target { engine: g, dtype: DataType::I8 },
                    fallbacks: vec![Target { engine: soc.cpu(), dtype: DataType::I8 }],
                    policy: FallbackPolicy::Merge { window: 2 },
                    primary_blocked: Vec::new(),
                    sync_overhead_us: VENDOR_SYNC_US,
                    query_overhead_us: 0.0,
                },
            });
        }
        // Offline: CPU and iGPU streams run concurrently.
        let mut extra = vec![];
        if let Some(g) = igpu {
            extra.push(PartitionPlan {
                primary: Target { engine: g, dtype: DataType::I8 },
                fallbacks: vec![Target { engine: soc.cpu(), dtype: DataType::I8 }],
                policy: FallbackPolicy::Merge { window: 2 },
                primary_blocked: Vec::new(),
                sync_overhead_us: VENDOR_SYNC_US,
                query_overhead_us: 0.0,
            });
            extra.push(cpu_plan(soc, DataType::I8, 0.0));
        }
        let mut dep = pick_best(self.id(), reference, soc, candidates, &extra)?;
        // Deduplicate: if the single-stream choice was the CPU, the CPU
        // extra stream duplicates it; keep streams with distinct engines.
        let mut seen = std::collections::BTreeSet::new();
        dep.offline_streams.retain(|s| seen.insert(s.stages[0].engine));
        Ok(dep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn_graph::models::ModelId;
    use soc_sim::catalog::ChipId;

    #[test]
    fn tflite_cpu_runs_everywhere() {
        for chip in ChipId::ALL {
            let soc = chip.build();
            let dep = TfliteCpu.compile(&ModelId::MobileNetEdgeTpu.build(), &soc).unwrap();
            assert_eq!(dep.schedule.num_stages(), 1);
            assert!(dep.scheme.is_quantized());
        }
    }

    #[test]
    fn vendor_backends_gate_on_vendor() {
        let mtk = ChipId::Dimensity1100.build();
        let samsung = ChipId::Exynos990.build();
        let qc = ChipId::Snapdragon888.build();
        let g = ModelId::MobileNetEdgeTpu.build();
        assert!(Enn.compile(&g, &mtk).is_err());
        assert!(Enn.compile(&g, &samsung).is_ok());
        assert!(Snpe.compile(&g, &qc).is_ok());
        assert!(Snpe.compile(&g, &samsung).is_err());
        assert!(Neuron.compile(&g, &mtk).is_ok());
        assert!(Neuron.compile(&g, &qc).is_err());
        assert!(OpenVino.compile(&g, &mtk).is_err());
    }

    #[test]
    fn vision_lands_on_accelerator_nlp_on_gpu() {
        // The numerics half of Insight 5, produced mechanistically: vendor
        // backends pick INT8-on-NPU for vision but FP16-on-GPU for
        // MobileBERT because the NPU cannot run attention.
        let soc = ChipId::Exynos990.build();
        let vision = Enn.compile(&ModelId::MobileNetEdgeTpu.build(), &soc).unwrap();
        assert!(vision.scheme.is_quantized(), "vision should be INT8");
        assert!(vision.accelerator_summary(&soc).contains("NPU"));

        let nlp = Enn.compile(&ModelId::MobileBert.build(), &soc).unwrap();
        assert_eq!(nlp.scheme, Scheme::Fp16, "NLP should pick FP16");
        assert!(nlp.accelerator_summary(&soc).contains("GPU"));
    }

    #[test]
    fn nnapi_slower_than_neuron_on_dimensity() {
        // Paper Table 3: the vendor delegate beats NNAPI on every task.
        let soc = ChipId::Dimensity1100.build();
        for model in [ModelId::MobileNetEdgeTpu, ModelId::MobileDetSsd, ModelId::DeepLabV3Plus] {
            let reference = model.build();
            let nnapi = Nnapi::default().compile(&reference, &soc).unwrap();
            let neuron = Neuron.compile(&reference, &soc).unwrap();
            let t_nnapi = nnapi.estimate_ms(&soc);
            let t_neuron = neuron.estimate_ms(&soc);
            assert!(
                t_neuron < t_nnapi,
                "{model:?}: neuron {t_neuron:.2}ms should beat nnapi {t_nnapi:.2}ms"
            );
        }
    }

    #[test]
    fn buggy_nnapi_driver_is_much_slower() {
        // The paper's related work cites up to 7x degradation from buggy
        // NNAPI op support; break depthwise conv and compare.
        let soc = ChipId::Dimensity1100.build();
        let reference = ModelId::MobileNetEdgeTpu.build();
        let good = Nnapi::default().compile(&reference, &soc).unwrap();
        let buggy = Nnapi::buggy(vec![OpClass::DepthwiseConv])
            .compile(&reference, &soc)
            .unwrap();
        let ratio = buggy.estimate_ms(&soc) / good.estimate_ms(&soc);
        assert!(ratio > 2.0, "buggy driver ratio {ratio:.1} should be large");
    }

    #[test]
    fn openvino_picks_cpu_for_small_igpu_for_heavy() {
        // Paper Section 7.1/7.4: classification + detection run on CPU,
        // segmentation + NLP on the iGPU.
        let soc = ChipId::CoreI7_1165G7.build();
        let cases = [
            (ModelId::MobileNetEdgeTpu, EngineKind::CpuLaptop),
            (ModelId::SsdMobileNetV2, EngineKind::CpuLaptop),
            (ModelId::DeepLabV3Plus, EngineKind::IntegratedGpu),
            (ModelId::MobileBert, EngineKind::IntegratedGpu),
        ];
        for (model, expected) in cases {
            let dep = OpenVino.compile(&model.build(), &soc).unwrap();
            let first = soc.engine(dep.schedule.stages[0].engine).kind;
            assert_eq!(first, expected, "{model:?} landed on {first}");
            // All laptop submissions are INT8 (paper Section 7.4).
            assert!(dep.scheme.is_quantized(), "{model:?} should be INT8");
        }
    }

    #[test]
    fn offline_streams_exercise_alp() {
        let soc = ChipId::Snapdragon865Plus.build();
        let dep = Snpe.compile(&ModelId::MobileNetEdgeTpu.build(), &soc).unwrap();
        assert!(dep.offline_streams.len() >= 2, "SNPE offline should use HTA+HVX");
        let ov = OpenVino
            .compile(&ModelId::MobileNetEdgeTpu.build(), &ChipId::CoreI7_1165G7.build())
            .unwrap();
        assert!(ov.offline_streams.len() >= 2, "OpenVINO offline should use CPU+GPU");
    }

    #[test]
    fn enn_990_segmentation_collapse() {
        // Paper Section 7.1: the Exynos 2100 outperforms the 990 by 12.7x
        // on segmentation, dominated by a 6x software (scheduling /
        // inter-IP transfer) uplift. Our mechanistic reproduction lands
        // within ~15% of that factor.
        let s990 = ChipId::Exynos990.build();
        let s2100 = ChipId::Exynos2100.build();
        let reference = ModelId::DeepLabV3Plus.build();
        let old = Enn.compile(&reference, &s990).unwrap();
        let new = Enn.compile(&reference, &s2100).unwrap();
        let ratio = old.estimate_ms(&s990) / new.estimate_ms(&s2100);
        assert!(
            (10.0..16.0).contains(&ratio),
            "990/2100 segmentation ratio {ratio:.1} should be ~12.7"
        );
        // And the 990 deployment is the ill-fated cross-engine split.
        assert!(old.schedule.num_transitions() >= 1);
        assert!(old.accelerator_summary(&s990).contains("GPU"));
    }
}
