//! Property tests over the schedule auto-tuner: on random graphs,
//! heuristics and SoCs, the tuned schedule must always be valid,
//! executable, and no worse than the vendor heuristic at 0 ULPs of the
//! canonical evaluators — and with an unbounded beam, branch-and-bound
//! pruning must never drop the exhaustive optimum.

use mobile_backend::partition::{partition, FallbackPolicy, PartitionPlan, Target};
use mobile_backend::tune::{exhaustive_optimum, tune, Objective, TunerConfig};
use nn_graph::builder::GraphBuilder;
use nn_graph::graph::retype;
use nn_graph::{Activation, DataType, Graph, Shape};
use proptest::prelude::*;
use soc_sim::catalog::ChipId;
use soc_sim::executor::estimate_query_secs;
use soc_sim::search::active_energy_j;
use soc_sim::soc::Soc;

/// A small random CNN whose depth/width vary per seed (same shape family
/// as the partitioner property suite).
fn random_graph(blocks: usize, base_channels: usize, with_postproc: bool) -> Graph {
    let mut b = GraphBuilder::new("prop", Shape::nhwc(32, 32, 3), DataType::F32);
    let mut x = b.conv2d("stem", b.input_id(), 3, 2, base_channels, Activation::Relu6);
    for i in 0..blocks {
        let c = b.conv2d(&format!("c{i}"), x, 1, 1, base_channels * 2, Activation::Relu6);
        let d = b.depthwise_conv2d(&format!("d{i}"), c, 3, 1, Activation::Relu6);
        x = b.conv2d(&format!("p{i}"), d, 1, 1, base_channels, Activation::None);
    }
    if with_postproc {
        let r = b.reshape("flat", x, Shape::new(&[1, 16 * 16 * base_channels]));
        let dec = b.box_decode("decode", r, 64, 10);
        let _ = b.nms("nms", dec, 64, 8);
    } else {
        let p = b.global_avg_pool("gap", x);
        let _ = b.fully_connected("fc", p, 10, Activation::None);
    }
    b.finish()
}

/// A vendor-style heuristic: accelerator-primary partition with CPU
/// fallback, parameterized like the real backends.
fn heuristic_for(
    graph: &Graph,
    soc: &Soc,
    policy_kind: u8,
    policy_param: usize,
    sync_us: f64,
    query_us: f64,
) -> soc_sim::schedule::Schedule {
    let primary = soc
        .engines()
        .find(|(_, e)| e.kind.is_accelerator())
        .map(|(id, _)| id)
        .unwrap_or_else(|| soc.cpu());
    let plan = PartitionPlan {
        primary: Target { engine: primary, dtype: DataType::U8 },
        fallbacks: vec![Target { engine: soc.cpu(), dtype: DataType::U8 }],
        policy: if policy_kind.is_multiple_of(2) {
            FallbackPolicy::PingPong { sticky: policy_param % 12 }
        } else {
            FallbackPolicy::Merge { window: policy_param % 6 }
        },
        primary_blocked: Vec::new(),
        sync_overhead_us: sync_us,
        query_overhead_us: query_us,
    };
    partition(graph, soc, &plan).expect("CPU fallback covers everything")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On any graph/heuristic/SoC and at any beam width, the tuned
    /// schedule is valid, respects per-engine op support, and its
    /// latency/energy — recomputed by the canonical evaluators — never
    /// regresses the heuristic's on the search objective, bit-exactly.
    #[test]
    fn tuned_schedule_is_valid_supported_and_never_worse(
        blocks in 1usize..6,
        channels in 4usize..24,
        with_postproc: bool,
        chip_idx in 0usize..8,
        policy_kind: u8,
        policy_param in 0usize..16,
        sync_us in 0.0f64..200.0,
        query_us in 0.0f64..200.0,
        beam_exp in 0u32..7,
        energy_objective: bool,
    ) {
        let graph = retype(&random_graph(blocks, channels, with_postproc), DataType::U8);
        let soc = ChipId::ALL[chip_idx].build();
        let heuristic = heuristic_for(&graph, &soc, policy_kind, policy_param, sync_us, query_us);
        let config = TunerConfig {
            objective: if energy_objective { Objective::Energy } else { Objective::Latency },
            beam_width: 1 << beam_exp,
        };
        let outcome = tune(&soc, &graph, &heuristic, &config);

        // The winner is a valid schedule that covers every node.
        prop_assert!(outcome.schedule.validate(&graph).is_ok());
        let scheduled: usize = outcome.schedule.stages.iter().map(|s| s.nodes.len()).sum();
        prop_assert_eq!(scheduled, graph.len());
        // Every stage's engine supports every one of its ops at the
        // stage dtype (flop-free pseudo-nodes ride along for free).
        for stage in &outcome.schedule.stages {
            let engine = soc.engine(stage.engine);
            for &id in &stage.nodes {
                let node = graph.node(id);
                prop_assert!(
                    node.cost.flops == 0 || engine.supports(node.class(), stage.dtype),
                    "{} cannot run {} at {:?}", engine.name, node.name, stage.dtype
                );
            }
        }
        // Reported scores ARE the canonical evaluators' values, bit-exactly.
        let latency = estimate_query_secs(&soc, &graph, &outcome.schedule);
        let energy = active_energy_j(&soc, &graph, &outcome.schedule);
        prop_assert_eq!(latency.to_bits(), outcome.tuned.latency_secs.to_bits());
        prop_assert_eq!(energy.to_bits(), outcome.tuned.energy_j.to_bits());
        prop_assert_eq!(
            estimate_query_secs(&soc, &graph, &heuristic).to_bits(),
            outcome.heuristic.latency_secs.to_bits()
        );
        // The incumbent was seeded with the heuristic: no regression on
        // the objective, at 0 ULPs of the evaluator's own arithmetic.
        let (tuned_obj, base_obj) = if energy_objective {
            (outcome.tuned.energy_j, outcome.heuristic.energy_j)
        } else {
            (outcome.tuned.latency_secs, outcome.heuristic.latency_secs)
        };
        prop_assert!(tuned_obj <= base_obj, "tuner regressed past its seed incumbent");
        prop_assert_eq!(outcome.improved, tuned_obj < base_obj);
    }

    /// Branch-and-bound pruning never drops the optimum: with an
    /// unbounded beam the search lands on the exhaustive oracle's
    /// objective value bit-for-bit, on random small graphs over random
    /// SoCs, heuristics and both objectives.
    #[test]
    fn pruning_never_drops_the_exhaustive_optimum(
        channels in 4usize..24,
        chip_idx in 0usize..8,
        policy_kind: u8,
        policy_param in 0usize..16,
        sync_us in 0.0f64..200.0,
        query_us in 0.0f64..200.0,
        energy_objective: bool,
    ) {
        // One block keeps the graph small enough (7 nodes) that the
        // oracle's full enumeration stays cheap on every catalog SoC.
        let graph = retype(&random_graph(1, channels, false), DataType::U8);
        let soc = ChipId::ALL[chip_idx].build();
        let heuristic = heuristic_for(&graph, &soc, policy_kind, policy_param, sync_us, query_us);
        let objective = if energy_objective { Objective::Energy } else { Objective::Latency };

        let (oracle, oracle_schedule) = exhaustive_optimum(&soc, &graph, &heuristic, objective);
        let outcome = tune(&soc, &graph, &heuristic, &TunerConfig::exact(objective));
        prop_assert_eq!(outcome.stats.beam_truncations, 0, "exact mode must not truncate");
        let (got, want) = match objective {
            Objective::Latency => (outcome.tuned.latency_secs, oracle.latency_secs),
            Objective::Energy => (outcome.tuned.energy_j, oracle.energy_j),
        };
        prop_assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "pruned search lost the optimum: got {got:e}, oracle {want:e}"
        );
        prop_assert!(oracle_schedule.validate(&graph).is_ok());
    }
}
