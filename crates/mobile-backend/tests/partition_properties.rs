//! Property tests over the partitioner: every valid plan on every catalog
//! SoC must yield a complete, ordered, executable schedule, and the
//! fallback policies must preserve those invariants under arbitrary
//! parameters.

use mobile_backend::partition::{partition, FallbackPolicy, PartitionPlan, Target};
use nn_graph::builder::GraphBuilder;
use nn_graph::graph::retype;
use nn_graph::models::ModelId;
use nn_graph::{Activation, DataType, Graph, Shape};
use proptest::prelude::*;
use soc_sim::catalog::ChipId;
use soc_sim::engine::EngineKind;
use soc_sim::executor::estimate_query_secs;

/// A small random CNN whose depth/width vary per seed.
fn random_graph(blocks: usize, base_channels: usize, with_postproc: bool) -> Graph {
    let mut b = GraphBuilder::new("prop", Shape::nhwc(32, 32, 3), DataType::F32);
    let mut x = b.conv2d("stem", b.input_id(), 3, 2, base_channels, Activation::Relu6);
    for i in 0..blocks {
        let c = b.conv2d(&format!("c{i}"), x, 1, 1, base_channels * 2, Activation::Relu6);
        let d = b.depthwise_conv2d(&format!("d{i}"), c, 3, 1, Activation::Relu6);
        x = b.conv2d(&format!("p{i}"), d, 1, 1, base_channels, Activation::None);
    }
    if with_postproc {
        let r = b.reshape("flat", x, Shape::new(&[1, 16 * 16 * base_channels]));
        let dec = b.box_decode("decode", r, 64, 10);
        let _ = b.nms("nms", dec, 64, 8);
    } else {
        let p = b.global_avg_pool("gap", x);
        let _ = b.fully_connected("fc", p, 10, Activation::None);
    }
    b.finish()
}

fn policy_from(kind: u8, param: usize) -> FallbackPolicy {
    if kind.is_multiple_of(2) {
        FallbackPolicy::PingPong { sticky: param % 12 }
    } else {
        FallbackPolicy::Merge { window: param % 6 }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_plan_yields_valid_executable_schedule(
        blocks in 1usize..6,
        channels in 4usize..24,
        with_postproc: bool,
        chip_idx in 0usize..8,
        policy_kind: u8,
        policy_param in 0usize..16,
        sync_us in 0.0f64..500.0,
    ) {
        let graph = retype(&random_graph(blocks, channels, with_postproc), DataType::U8);
        let soc = ChipId::ALL[chip_idx].build();
        let primary = soc
            .engines()
            .find(|(_, e)| e.kind.is_accelerator())
            .map(|(id, _)| id)
            .unwrap_or_else(|| soc.cpu());
        let plan = PartitionPlan {
            primary: Target { engine: primary, dtype: DataType::U8 },
            fallbacks: vec![Target { engine: soc.cpu(), dtype: DataType::U8 }],
            policy: policy_from(policy_kind, policy_param),
            primary_blocked: Vec::new(),
            sync_overhead_us: sync_us,
            query_overhead_us: 0.0,
        };
        let schedule = partition(&graph, &soc, &plan).expect("CPU fallback covers everything");
        prop_assert!(schedule.validate(&graph).is_ok());
        // Every node scheduled exactly once.
        let scheduled: usize = schedule.stages.iter().map(|s| s.nodes.len()).sum();
        prop_assert_eq!(scheduled, graph.len());
        // And the schedule is actually executable (estimator is total).
        let secs = estimate_query_secs(&soc, &graph, &schedule);
        prop_assert!(secs.is_finite() && secs > 0.0);
    }

    #[test]
    fn latency_monotone_in_sync_overhead(
        blocks in 1usize..5,
        lo in 0.0f64..100.0,
        delta in 1.0f64..400.0,
    ) {
        let graph = retype(&random_graph(blocks, 8, true), DataType::U8);
        let soc = ChipId::Dimensity1100.build();
        let npu = soc.engine_of_kind(EngineKind::Npu).expect("has NPU");
        let mk = |sync: f64| PartitionPlan {
            primary: Target { engine: npu, dtype: DataType::U8 },
            fallbacks: vec![Target { engine: soc.cpu(), dtype: DataType::U8 }],
            policy: FallbackPolicy::Merge { window: 2 },
            primary_blocked: Vec::new(),
            sync_overhead_us: sync,
            query_overhead_us: 0.0,
        };
        let a = partition(&graph, &soc, &mk(lo)).expect("partitions");
        let b = partition(&graph, &soc, &mk(lo + delta)).expect("partitions");
        let ta = estimate_query_secs(&soc, &graph, &a);
        let tb = estimate_query_secs(&soc, &graph, &b);
        prop_assert!(tb >= ta, "sync {lo} -> {ta}, sync {} -> {tb}", lo + delta);
    }

    #[test]
    fn blocking_classes_never_speeds_things_up(
        blocks in 1usize..5,
    ) {
        use nn_graph::OpClass;
        let graph = retype(&random_graph(blocks, 8, false), DataType::U8);
        let soc = ChipId::Snapdragon888.build();
        let hta = soc.engine_of_kind(EngineKind::Hta).expect("has HTA");
        let mk = |blocked: Vec<OpClass>| PartitionPlan {
            primary: Target { engine: hta, dtype: DataType::U8 },
            fallbacks: vec![Target { engine: soc.cpu(), dtype: DataType::U8 }],
            policy: FallbackPolicy::PingPong { sticky: 0 },
            primary_blocked: blocked,
            sync_overhead_us: 10.0,
            query_overhead_us: 0.0,
        };
        let healthy = partition(&graph, &soc, &mk(Vec::new())).expect("partitions");
        let broken =
            partition(&graph, &soc, &mk(vec![OpClass::DepthwiseConv])).expect("partitions");
        let th = estimate_query_secs(&soc, &graph, &healthy);
        let tb = estimate_query_secs(&soc, &graph, &broken);
        prop_assert!(tb >= th * 0.999, "healthy {th}, broken {tb}");
    }
}

#[test]
fn every_model_partitions_on_every_chip_with_every_policy() {
    for chip in ChipId::ALL {
        let soc = chip.build();
        let primary = soc
            .engines()
            .find(|(_, e)| e.kind.is_accelerator())
            .map(|(id, _)| id)
            .unwrap_or_else(|| soc.cpu());
        for model in ModelId::ALL {
            let graph = retype(&model.build(), DataType::U8);
            for policy in [
                FallbackPolicy::PingPong { sticky: 0 },
                FallbackPolicy::PingPong { sticky: 6 },
                FallbackPolicy::Merge { window: 0 },
                FallbackPolicy::Merge { window: 4 },
            ] {
                let plan = PartitionPlan {
                    primary: Target { engine: primary, dtype: DataType::U8 },
                    fallbacks: vec![Target { engine: soc.cpu(), dtype: DataType::U8 }],
                    policy,
                    primary_blocked: Vec::new(),
                    sync_overhead_us: 20.0,
                    query_overhead_us: 0.0,
                };
                let schedule = partition(&graph, &soc, &plan)
                    .unwrap_or_else(|e| panic!("{chip:?}/{model:?}/{policy:?}: {e}"));
                assert!(schedule.validate(&graph).is_ok(), "{chip:?}/{model:?}");
            }
        }
    }
}
