//! Word error rate (WER) — the quality metric for the speech-recognition
//! task the paper lists as in-progress future work (Appendix E: "a mobile
//! version of RNN-T for speech is in the works").
//!
//! Real implementation: Levenshtein distance over token sequences
//! (substitutions + insertions + deletions) divided by reference length.

/// Edit-distance breakdown between a reference and a hypothesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EditOps {
    /// Substituted tokens.
    pub substitutions: u64,
    /// Tokens the hypothesis inserted.
    pub insertions: u64,
    /// Reference tokens the hypothesis dropped.
    pub deletions: u64,
}

impl EditOps {
    /// Total edit operations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.substitutions + self.insertions + self.deletions
    }
}

/// Computes the minimal edit-operation breakdown between `reference` and
/// `hypothesis` token sequences (classic dynamic program with operation
/// backtracking).
#[must_use]
pub fn edit_ops<T: PartialEq>(reference: &[T], hypothesis: &[T]) -> EditOps {
    let n = reference.len();
    let m = hypothesis.len();
    // dp[i][j] = (cost, subs, ins, dels) for ref[..i] vs hyp[..j].
    let mut dp = vec![vec![(0u64, 0u64, 0u64, 0u64); m + 1]; n + 1];
    for (i, row) in dp.iter_mut().enumerate().skip(1) {
        row[0] = (i as u64, 0, 0, i as u64);
    }
    for (j, cell) in dp[0].iter_mut().enumerate().skip(1) {
        *cell = (j as u64, 0, j as u64, 0);
    }
    for i in 1..=n {
        for j in 1..=m {
            if reference[i - 1] == hypothesis[j - 1] {
                dp[i][j] = dp[i - 1][j - 1];
                continue;
            }
            let sub = dp[i - 1][j - 1];
            let ins = dp[i][j - 1];
            let del = dp[i - 1][j];
            let sub_cost = sub.0 + 1;
            let ins_cost = ins.0 + 1;
            let del_cost = del.0 + 1;
            dp[i][j] = if sub_cost <= ins_cost && sub_cost <= del_cost {
                (sub_cost, sub.1 + 1, sub.2, sub.3)
            } else if ins_cost <= del_cost {
                (ins_cost, ins.1, ins.2 + 1, ins.3)
            } else {
                (del_cost, del.1, del.2, del.3 + 1)
            };
        }
    }
    let (_, s, i, d) = dp[n][m];
    EditOps { substitutions: s, insertions: i, deletions: d }
}

/// WER of one utterance: edit distance / reference length.
///
/// An empty reference scores 0.0 against an empty hypothesis and 1.0
/// otherwise (everything inserted).
#[must_use]
pub fn utterance_wer<T: PartialEq>(reference: &[T], hypothesis: &[T]) -> f64 {
    if reference.is_empty() {
        return if hypothesis.is_empty() { 0.0 } else { 1.0 };
    }
    edit_ops(reference, hypothesis).total() as f64 / reference.len() as f64
}

/// Corpus WER: total edits over total reference tokens (the standard
/// aggregation — *not* the mean of per-utterance WERs).
///
/// # Examples
///
/// ```
/// use mobile_metrics::wer::corpus_wer;
///
/// let refs = vec![vec!["the", "cat", "sat"], vec!["hello"]];
/// let hyps = vec![vec!["the", "cat", "sat"], vec!["jello"]];
/// assert!((corpus_wer(&refs, &hyps) - 0.25).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn corpus_wer<T, R, H>(references: &[R], hypotheses: &[H]) -> f64
where
    T: PartialEq,
    R: AsRef<[T]>,
    H: AsRef<[T]>,
{
    assert_eq!(references.len(), hypotheses.len(), "utterance count mismatch");
    assert!(!references.is_empty(), "no utterances");
    let mut edits = 0u64;
    let mut tokens = 0u64;
    for (r, h) in references.iter().zip(hypotheses.iter()) {
        let (r, h) = (r.as_ref(), h.as_ref());
        edits += edit_ops(r, h).total();
        tokens += r.len() as u64;
    }
    if tokens == 0 {
        0.0
    } else {
        edits as f64 / tokens as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn words(s: &str) -> Vec<&str> {
        s.split_whitespace().collect()
    }

    #[test]
    fn identical_is_zero() {
        let r = words("the quick brown fox");
        assert_eq!(utterance_wer(&r, &r), 0.0);
    }

    #[test]
    fn single_substitution() {
        let r = words("the quick brown fox");
        let h = words("the quick red fox");
        let ops = edit_ops(&r, &h);
        assert_eq!(ops, EditOps { substitutions: 1, insertions: 0, deletions: 0 });
        assert!((utterance_wer(&r, &h) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn insertion_and_deletion() {
        let r = words("hello world");
        let h = words("hello big world");
        assert_eq!(edit_ops(&r, &h).insertions, 1);
        let h2 = words("hello");
        assert_eq!(edit_ops(&r, &h2).deletions, 1);
    }

    #[test]
    fn empty_cases() {
        let empty: Vec<&str> = vec![];
        assert_eq!(utterance_wer(&empty, &empty), 0.0);
        assert_eq!(utterance_wer(&empty, &words("x")), 1.0);
        assert_eq!(utterance_wer(&words("a b"), &empty), 1.0);
    }

    #[test]
    fn wer_can_exceed_one() {
        let r = words("hi");
        let h = words("a b c d");
        assert!(utterance_wer(&r, &h) > 1.0);
    }

    #[test]
    fn corpus_weighs_by_length() {
        // 1 error in a 9-word utterance + perfect 1-word utterance:
        // corpus WER = 1/10, not mean(1/9, 0).
        let refs = vec![words("a b c d e f g h i"), words("z")];
        let hyps = vec![words("a b c d e f g h X"), words("z")];
        assert!((corpus_wer(&refs, &hyps) - 0.1).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn wer_zero_iff_equal(r in proptest::collection::vec(0u8..5, 0..12)) {
            prop_assert_eq!(utterance_wer(&r, &r), 0.0);
        }

        #[test]
        fn edit_distance_total_symmetric(
            a in proptest::collection::vec(0u8..5, 0..10),
            b in proptest::collection::vec(0u8..5, 0..10),
        ) {
            // Only the *total* is guaranteed symmetric: multiple optimal
            // alignments can differ in their sub/ins/del split.
            let ab = edit_ops(&a, &b);
            let ba = edit_ops(&b, &a);
            prop_assert_eq!(ab.total(), ba.total());
        }

        #[test]
        fn triangle_inequality(
            a in proptest::collection::vec(0u8..4, 0..8),
            b in proptest::collection::vec(0u8..4, 0..8),
            c in proptest::collection::vec(0u8..4, 0..8),
        ) {
            let ac = edit_ops(&a, &c).total();
            let ab = edit_ops(&a, &b).total();
            let bc = edit_ops(&b, &c).total();
            prop_assert!(ac <= ab + bc);
        }
    }
}
