//! Quality and performance metrics for the MLPerf Mobile reproduction.
//!
//! Real implementations of the four task quality metrics from paper
//! Table 1 — Top-1 accuracy, COCO mAP (101-point, IoU 0.50:0.95), mean IoU
//! over the benchmark's 31 evaluated ADE20K classes, SQuAD token F1 — plus
//! the run-rule performance statistics (90th-percentile latency,
//! throughput).
//!
//! # Examples
//!
//! ```
//! use mobile_metrics::latency::LatencyStats;
//!
//! let lat: Vec<u64> = (1..=1024).map(|i| i * 1_000).collect();
//! let stats = LatencyStats::from_latencies(&lat);
//! assert_eq!(stats.p90_ns, 922 * 1_000);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod accuracy;
pub mod hist;
pub mod latency;
pub mod map;
pub mod miou;
pub mod psnr;
pub mod wer;

pub use accuracy::{span_exact_match, span_f1, squad_scores, top1_accuracy, topk_accuracy};
pub use hist::{LatencyHistogram, MAX_RELATIVE_ERROR, SUB_BUCKET_BITS};
pub use latency::{percentile_nearest_rank, throughput_fps, LatencyStats};
pub use map::{average_precision, coco_map};
pub use miou::{benchmark_eval_classes, benchmark_miou, ConfusionMatrix};
pub use psnr::{mean_psnr_db, noise_sigma_for_psnr, psnr_db};
pub use wer::{corpus_wer, edit_ops, utterance_wer, EditOps};
