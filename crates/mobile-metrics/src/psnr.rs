//! Peak signal-to-noise ratio — the quality metric for the
//! super-resolution task the paper lists as future work (Appendix E:
//! "super-resolution and high-resolution models are important use cases").

use mobile_data::image::Image;

/// Mean squared error between two images.
///
/// # Panics
///
/// Panics if the images differ in geometry.
#[must_use]
pub fn image_mse(a: &Image, b: &Image) -> f64 {
    assert_eq!(
        (a.height, a.width, a.channels),
        (b.height, b.width, b.channels),
        "image geometry mismatch"
    );
    let n = a.data.len();
    if n == 0 {
        return 0.0;
    }
    let mut acc = 0.0f64;
    for (&x, &y) in a.data.iter().zip(b.data.iter()) {
        let e = f64::from(x - y);
        acc += e * e;
    }
    acc / n as f64
}

/// PSNR in dB for images with a given peak value (1.0 for unit-range
/// pixels): `10 log10(peak^2 / mse)`.
///
/// Identical images return `f64::INFINITY`.
///
/// # Panics
///
/// Panics if `peak` is not positive or geometries differ.
#[must_use]
pub fn psnr_db(reference: &Image, reconstruction: &Image, peak: f64) -> f64 {
    assert!(peak > 0.0, "peak must be positive");
    let mse = image_mse(reference, reconstruction);
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (peak * peak / mse).log10()
    }
}

/// Dataset-level PSNR: mean over image pairs (the convention SR papers
/// report).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn mean_psnr_db<R, X>(references: &[R], reconstructions: &[X], peak: f64) -> f64
where
    R: std::borrow::Borrow<Image>,
    X: std::borrow::Borrow<Image>,
{
    assert_eq!(references.len(), reconstructions.len(), "image count mismatch");
    assert!(!references.is_empty(), "no images");
    let sum: f64 = references
        .iter()
        .zip(reconstructions.iter())
        .map(|(r, x)| psnr_db(r.borrow(), x.borrow(), peak))
        .sum();
    sum / references.len() as f64
}

/// The noise standard deviation that produces a target PSNR on unit-range
/// images: `sigma = peak * 10^(-psnr/20)` — the closed-form inverse used
/// by the quality model.
#[must_use]
pub fn noise_sigma_for_psnr(target_psnr_db: f64, peak: f64) -> f64 {
    peak * 10f64.powf(-target_psnr_db / 20.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant(v: f32) -> Image {
        let mut img = Image::zeros(8, 8, 3);
        img.data.fill(v);
        img
    }

    #[test]
    fn identical_images_infinite_psnr() {
        let a = Image::synthetic(16, 16, 3, 1);
        assert_eq!(psnr_db(&a, &a, 1.0), f64::INFINITY);
    }

    #[test]
    fn known_mse_known_psnr() {
        let a = constant(0.5);
        let b = constant(0.6);
        // mse = 0.01 -> PSNR = 10 log10(1/0.01) = 20 dB.
        assert!((image_mse(&a, &b) - 0.01).abs() < 1e-6);
        assert!((psnr_db(&a, &b, 1.0) - 20.0).abs() < 1e-3);
    }

    #[test]
    fn sigma_inversion_round_trips() {
        for target in [25.0, 30.0, 35.0] {
            let sigma = noise_sigma_for_psnr(target, 1.0);
            // Adding exactly-sigma offset everywhere gives mse = sigma^2.
            let a = constant(0.5);
            let mut b = a.clone();
            for v in &mut b.data {
                *v += sigma as f32;
            }
            let measured = psnr_db(&a, &b, 1.0);
            assert!((measured - target).abs() < 0.1, "target {target} got {measured}");
        }
    }

    #[test]
    fn higher_noise_lower_psnr() {
        let a = Image::synthetic(16, 16, 3, 2);
        let mut small = a.clone();
        let mut big = a.clone();
        for (i, (s, b)) in small.data.iter_mut().zip(big.data.iter_mut()).enumerate() {
            let n = if i % 2 == 0 { 0.01 } else { -0.01 };
            *s += n;
            *b += n * 5.0;
        }
        assert!(psnr_db(&a, &small, 1.0) > psnr_db(&a, &big, 1.0));
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn mismatched_images_panic() {
        let _ = image_mse(&Image::zeros(4, 4, 3), &Image::zeros(8, 8, 3));
    }

    #[test]
    fn mean_psnr_averages() {
        let a = constant(0.5);
        let b = constant(0.6); // 20 dB
        let c = constant(0.5 + 0.031_622_7); // ~30 dB
        let m = mean_psnr_db(&[a.clone(), a], &[b, c], 1.0);
        assert!((m - 25.0).abs() < 0.1, "mean {m}");
    }
}
