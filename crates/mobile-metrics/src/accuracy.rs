//! Top-1 classification accuracy and SQuAD span metrics (F1 / exact match).

use mobile_data::types::AnswerSpan;

/// Top-1 accuracy: fraction of samples whose predicted label equals the
/// ground truth.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn top1_accuracy(ground_truth: &[u32], predictions: &[u32]) -> f64 {
    assert_eq!(ground_truth.len(), predictions.len(), "length mismatch");
    assert!(!ground_truth.is_empty(), "no samples");
    let correct = ground_truth
        .iter()
        .zip(predictions.iter())
        .filter(|(g, p)| g == p)
        .count();
    correct as f64 / ground_truth.len() as f64
}

/// Top-K accuracy: the ground truth appears among the K ranked predictions.
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
#[must_use]
pub fn topk_accuracy(ground_truth: &[u32], ranked_predictions: &[Vec<u32>], k: usize) -> f64 {
    assert_eq!(ground_truth.len(), ranked_predictions.len(), "length mismatch");
    assert!(!ground_truth.is_empty(), "no samples");
    let correct = ground_truth
        .iter()
        .zip(ranked_predictions.iter())
        .filter(|(g, ranked)| ranked.iter().take(k).any(|p| p == *g))
        .count();
    correct as f64 / ground_truth.len() as f64
}

/// Token-level F1 between a predicted span and the ground truth — the
/// SQuAD metric (paper Table 1 targets 93.98 F1 for FP32 MobileBERT).
#[must_use]
pub fn span_f1(ground_truth: &AnswerSpan, prediction: &AnswerSpan) -> f64 {
    let overlap = f64::from(ground_truth.overlap(prediction));
    if overlap == 0.0 {
        return 0.0;
    }
    let precision = overlap / f64::from(prediction.len());
    let recall = overlap / f64::from(ground_truth.len());
    2.0 * precision * recall / (precision + recall)
}

/// Exact match: 1 if the spans are identical.
#[must_use]
pub fn span_exact_match(ground_truth: &AnswerSpan, prediction: &AnswerSpan) -> f64 {
    if ground_truth == prediction {
        1.0
    } else {
        0.0
    }
}

/// Dataset-level SQuAD scores: `(f1, exact_match)` averaged over samples,
/// both in `[0, 1]`.
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
#[must_use]
pub fn squad_scores(ground_truth: &[AnswerSpan], predictions: &[AnswerSpan]) -> (f64, f64) {
    assert_eq!(ground_truth.len(), predictions.len(), "length mismatch");
    assert!(!ground_truth.is_empty(), "no samples");
    let n = ground_truth.len() as f64;
    let f1 = ground_truth
        .iter()
        .zip(predictions.iter())
        .map(|(g, p)| span_f1(g, p))
        .sum::<f64>()
        / n;
    let em = ground_truth
        .iter()
        .zip(predictions.iter())
        .map(|(g, p)| span_exact_match(g, p))
        .sum::<f64>()
        / n;
    (f1, em)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top1_basic() {
        let gt = [1, 2, 3, 4];
        let pred = [1, 2, 9, 4];
        assert!((top1_accuracy(&gt, &pred) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn topk_recovers_lower_ranked_hits() {
        let gt = [5, 7];
        let ranked = vec![vec![1, 5, 9], vec![7, 2, 3]];
        assert!((topk_accuracy(&gt, &ranked, 1) - 0.5).abs() < 1e-12);
        assert!((topk_accuracy(&gt, &ranked, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_accuracy_panics() {
        let _ = top1_accuracy(&[], &[]);
    }

    #[test]
    fn f1_exact_span_is_one() {
        let s = AnswerSpan::new(10, 14);
        assert!((span_f1(&s, &s) - 1.0).abs() < 1e-12);
        assert_eq!(span_exact_match(&s, &s), 1.0);
    }

    #[test]
    fn f1_disjoint_is_zero() {
        let a = AnswerSpan::new(0, 3);
        let b = AnswerSpan::new(10, 12);
        assert_eq!(span_f1(&a, &b), 0.0);
    }

    #[test]
    fn f1_partial_overlap() {
        // GT 4 tokens [10..13], prediction 2 tokens [12..13]: overlap 2.
        let gt = AnswerSpan::new(10, 13);
        let pred = AnswerSpan::new(12, 13);
        // precision 1.0, recall 0.5 -> F1 = 2/3.
        assert!((span_f1(&gt, &pred) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(span_exact_match(&gt, &pred), 0.0);
    }

    #[test]
    fn dataset_squad_scores() {
        let gts = vec![AnswerSpan::new(0, 1), AnswerSpan::new(5, 8)];
        let preds = vec![AnswerSpan::new(0, 1), AnswerSpan::new(7, 8)];
        let (f1, em) = squad_scores(&gts, &preds);
        assert_eq!(em, 0.5);
        // Sample 2: overlap 2, precision 1, recall 0.5 -> 2/3.
        assert!((f1 - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
    }
}
