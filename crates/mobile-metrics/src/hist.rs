//! Log-bucketed latency histograms (HDR-histogram style).
//!
//! The exact percentile path ([`crate::latency`]) keeps every sample; that
//! is right for scoring, where the rules demand the exact nearest-rank
//! p90, but wrong for long-running observability, where memory must stay
//! bounded and histograms from many runs must merge. A
//! [`LatencyHistogram`] stores counts in logarithmically spaced buckets
//! with [`SUB_BUCKET_BITS`] bits of sub-bucket resolution: values below
//! 2^6 = 64 are recorded exactly, larger values keep their top 6
//! significant bits, bounding the relative quantization error at
//! 2^(1-6) = 1/32 ≈ 3.1% while using a fixed 1920 buckets regardless of
//! sample count or range.
//!
//! Histograms merge by element-wise count addition, so per-run histograms
//! aggregate into suite-level ones without touching raw samples. The
//! percentile path is checked for consistency against
//! [`crate::latency::percentile_nearest_rank`] by property tests below.

use serde::{Deserialize, Serialize};

/// Sub-bucket resolution: each octave above the linear region is split
/// into 2^(B-1) = 32 buckets, keeping the top B significant bits.
pub const SUB_BUCKET_BITS: u32 = 6;

/// Buckets in the exact linear region `[0, 2^SUB_BUCKET_BITS)`.
const LINEAR_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// Buckets per octave in the logarithmic region.
const OCTAVE_BUCKETS: usize = 1 << (SUB_BUCKET_BITS - 1);

/// Total bucket count covering the full `u64` range:
/// 64 linear + (64 - 6) octaves x 32 = 1920.
const TOTAL_BUCKETS: usize = LINEAR_BUCKETS + (64 - SUB_BUCKET_BITS as usize) * OCTAVE_BUCKETS;

/// Worst-case relative quantization error of a reported percentile:
/// one bucket width over the bucket's lower bound, `2^(1 - SUB_BUCKET_BITS)`.
pub const MAX_RELATIVE_ERROR: f64 = 1.0 / 32.0;

/// A fixed-size log-bucketed histogram of `u64` values (latencies in ns).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    min: u64,
    max: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; TOTAL_BUCKETS],
            count: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value maps to.
    fn index_of(value: u64) -> usize {
        if value < LINEAR_BUCKETS as u64 {
            return value as usize;
        }
        let h = 63 - value.leading_zeros(); // floor(log2 value) >= SUB_BUCKET_BITS
        let shift = h - (SUB_BUCKET_BITS - 1);
        let sub = (value >> shift) as usize - OCTAVE_BUCKETS;
        LINEAR_BUCKETS + (h - SUB_BUCKET_BITS) as usize * OCTAVE_BUCKETS + sub
    }

    /// The largest value mapping to `index` — the representative reported
    /// for percentiles, so reported quantiles never understate latency.
    fn value_at_index(index: usize) -> u64 {
        if index < LINEAR_BUCKETS {
            return index as u64;
        }
        let octave = (index - LINEAR_BUCKETS) / OCTAVE_BUCKETS;
        let sub = (index - LINEAR_BUCKETS) % OCTAVE_BUCKETS;
        let h = octave as u32 + SUB_BUCKET_BITS;
        let shift = h - (SUB_BUCKET_BITS - 1);
        // The very top octave's upper bound exceeds u64::MAX; saturate.
        let upper = (((sub + OCTAVE_BUCKETS + 1) as u128) << shift) - 1;
        upper.min(u128::from(u64::MAX)) as u64
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::index_of(value)] += n;
        self.count += n;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Builds a histogram from a slice of values.
    #[must_use]
    pub fn from_values(values: &[u64]) -> Self {
        let mut h = LatencyHistogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    /// Total recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (exact), or 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.is_empty() { 0 } else { self.min }
    }

    /// Largest recorded value (exact), or 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Element-wise merges `other` into `self` — the aggregation path for
    /// combining per-run histograms across a suite.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Nearest-rank percentile over the bucketed distribution: the upper
    /// bound of the bucket containing the rank-th smallest value, clamped
    /// to the exact observed maximum. Within [`MAX_RELATIVE_ERROR`] of the
    /// exact nearest-rank percentile (property-tested against it).
    ///
    /// # Panics
    ///
    /// Panics on an empty histogram or a percentile outside `(0, 100]`.
    #[must_use]
    pub fn value_at_percentile(&self, percentile: f64) -> u64 {
        assert!(!self.is_empty(), "no samples");
        assert!(percentile > 0.0 && percentile <= 100.0, "percentile out of range");
        // Same multiply-before-divide rank convention as the exact path.
        let rank = ((percentile * self.count as f64 / 100.0).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::value_at_index(i).min(self.max);
            }
        }
        self.max
    }

    /// [`Self::value_at_percentile`] on the quantile scale: `q` in
    /// `(0, 1]`, so deep field tails read naturally —
    /// `quantile(0.999)` is the fleet report's p99.9 headline. Same
    /// nearest-rank convention and error bound as the percentile form.
    ///
    /// # Panics
    ///
    /// Panics on an empty histogram or a quantile outside `(0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(q > 0.0 && q <= 1.0, "quantile out of range");
        self.value_at_percentile(q * 100.0)
    }

    /// Iterator over non-empty buckets as `(upper_bound, count)` pairs, in
    /// ascending value order — the exporter-facing view.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::value_at_index(i), c))
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::percentile_nearest_rank;
    use proptest::prelude::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        for p in [1.0f64, 25.0, 50.0, 90.0, 99.0, 100.0] {
            let rank = ((p * 64.0 / 100.0).ceil() as u64).clamp(1, 64);
            assert_eq!(h.value_at_percentile(p), rank - 1, "p{p}");
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
    }

    #[test]
    fn bucket_mapping_round_trips() {
        // Every value maps to a bucket whose upper bound is >= the value
        // and within the relative error bound.
        for v in (0..200u64)
            .chain((1..40).map(|i| 1u64 << i))
            .chain((1..40).map(|i| (1u64 << i) + (1 << i) / 3))
            .chain([u64::MAX / 2, u64::MAX - 1])
        {
            let idx = LatencyHistogram::index_of(v);
            let rep = LatencyHistogram::value_at_index(idx);
            assert!(rep >= v, "rep {rep} < value {v}");
            let err = (rep - v) as f64;
            assert!(
                err <= v as f64 * MAX_RELATIVE_ERROR + 1.0,
                "value {v}: rep {rep}, err {err}"
            );
            // Monotone: the next bucket's representative is strictly larger
            // (away from the saturated top of the u64 range).
            if idx + 1 < TOTAL_BUCKETS && v < (1u64 << 50) {
                assert!(LatencyHistogram::value_at_index(idx + 1) > rep);
            }
        }
    }

    #[test]
    fn total_bucket_count_is_fixed() {
        assert_eq!(TOTAL_BUCKETS, 1920);
        // The largest representable value maps inside the table.
        assert!(LatencyHistogram::index_of(u64::MAX) < TOTAL_BUCKETS);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let a_vals: Vec<u64> = (1..500).map(|i| i * 997).collect();
        let b_vals: Vec<u64> = (1..300).map(|i| i * i * 13).collect();
        let mut merged = LatencyHistogram::from_values(&a_vals);
        merged.merge(&LatencyHistogram::from_values(&b_vals));
        let mut all = a_vals.clone();
        all.extend(&b_vals);
        let combined = LatencyHistogram::from_values(&all);
        assert_eq!(merged, combined);
        assert_eq!(merged.count(), (a_vals.len() + b_vals.len()) as u64);
    }

    #[test]
    fn empty_histogram_reports_nothing() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn percentile_of_empty_panics() {
        let _ = LatencyHistogram::new().value_at_percentile(90.0);
    }

    proptest! {
        #[test]
        fn quantiles_exact_nearest_rank_at_small_n(
            mut values in proptest::collection::vec(0u64..64, 1..64),
        ) {
            // Values below 64 land in exact unit-width buckets, so the
            // histogram quantile must reproduce nearest-rank exactly —
            // including the deep-tail q = 0.999, where small N makes the
            // rank clamp to the maximum.
            let h = LatencyHistogram::from_values(&values);
            values.sort_unstable();
            for q in [0.5f64, 0.9, 0.95, 0.99, 0.999, 1.0] {
                let exact = percentile_nearest_rank(&values, q * 100.0);
                prop_assert_eq!(h.quantile(q), exact, "q={}", q);
            }
        }

        #[test]
        fn percentiles_consistent_with_exact_nearest_rank(
            mut values in proptest::collection::vec(1u64..2_000_000_000, 1..400),
            sampled in 0.5f64..100.0,
        ) {
            let h = LatencyHistogram::from_values(&values);
            values.sort_unstable();
            // Always exercise the rule-relevant percentiles plus a sampled
            // one from across the range.
            for percentile in [50.0, 90.0, 99.0, sampled] {
                let exact = percentile_nearest_rank(&values, percentile);
                let approx = h.value_at_percentile(percentile);
                // The bucketed percentile never understates and overstates
                // by at most the bucket width (bounded relative error).
                prop_assert!(approx >= exact, "p{percentile}: approx {approx} < exact {exact}");
                prop_assert!(
                    approx as f64 <= exact as f64 * (1.0 + MAX_RELATIVE_ERROR) + 1.0,
                    "p{percentile}: approx {approx} vs exact {exact}"
                );
            }
        }

        #[test]
        fn percentiles_are_monotone(values in proptest::collection::vec(1u64..1_000_000_000, 1..300)) {
            let h = LatencyHistogram::from_values(&values);
            let p50 = h.value_at_percentile(50.0);
            let p90 = h.value_at_percentile(90.0);
            let p99 = h.value_at_percentile(99.0);
            prop_assert!(p50 <= p90 && p90 <= p99);
            prop_assert!(p99 <= h.max());
            prop_assert!(h.min() <= p50);
        }

        #[test]
        fn merge_is_order_independent(
            a in proptest::collection::vec(1u64..1_000_000, 0..100),
            b in proptest::collection::vec(1u64..1_000_000, 0..100),
        ) {
            let ha = LatencyHistogram::from_values(&a);
            let hb = LatencyHistogram::from_values(&b);
            let mut ab = ha.clone();
            ab.merge(&hb);
            let mut ba = hb.clone();
            ba.merge(&ha);
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn merged_shards_equal_concatenated_stream(
            values in proptest::collection::vec(1u64..u64::MAX, 0..400),
            shards in 1usize..12,
        ) {
            // The streaming shard-merge contract: split the stream across
            // K per-thread shards arbitrarily (round-robin here), fold the
            // shards with merge(), and the result is *bucket-exact* equal —
            // counts, count, min, max — to one histogram fed the whole
            // concatenated stream. This is what lets the runner pool (and
            // fleet loops) aggregate without a shared lock.
            let mut sharded: Vec<LatencyHistogram> =
                (0..shards).map(|_| LatencyHistogram::new()).collect();
            for (i, &v) in values.iter().enumerate() {
                sharded[i % shards].record(v);
            }
            let mut merged = LatencyHistogram::new();
            for shard in &sharded {
                merged.merge(shard);
            }
            let single = LatencyHistogram::from_values(&values);
            prop_assert_eq!(&merged, &single);
            prop_assert_eq!(merged.count(), values.len() as u64);
            // Quantiles of the merged histogram are exactly the single-
            // stream histogram's quantiles (same buckets, same counts).
            if !values.is_empty() {
                for p in [50.0, 90.0, 99.0, 100.0] {
                    prop_assert_eq!(
                        merged.value_at_percentile(p),
                        single.value_at_percentile(p)
                    );
                }
            }
        }
    }
}
