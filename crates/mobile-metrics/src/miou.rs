//! Mean intersection-over-union for semantic segmentation.
//!
//! Implemented over a dense confusion matrix. Per the paper's Section 3.2,
//! the benchmark's mIoU only counts pixels whose *ground-truth* label is
//! one of the 31 most frequent classes (class 31, "other", is excluded from
//! the ground-truth side but predictions may still land there).

use mobile_data::types::LabelMap;
use serde::{Deserialize, Serialize};

/// Dense confusion matrix over `n` classes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    n: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an `n x n` zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        ConfusionMatrix { n, counts: vec![0; n * n] }
    }

    /// Class count.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.n
    }

    /// Records one pixel: ground truth `gt`, prediction `pred`.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, gt: u8, pred: u8) {
        let (g, p) = (gt as usize, pred as usize);
        assert!(g < self.n && p < self.n, "label out of range");
        self.counts[g * self.n + p] += 1;
    }

    /// Records `count` pixels of the same `(gt, pred)` cell at once —
    /// equivalent to `count` calls to [`Self::record`]. Confusion counts
    /// are plain integers, so bulk accumulation is exact; callers that
    /// know a run of identical pixels (e.g. the mIoU calibration's
    /// all-correct baseline) skip the per-pixel loop.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record_n(&mut self, gt: u8, pred: u8, count: u64) {
        let (g, p) = (gt as usize, pred as usize);
        assert!(g < self.n && p < self.n, "label out of range");
        self.counts[g * self.n + p] += count;
    }

    /// Accumulates a full ground-truth/prediction map pair.
    ///
    /// # Panics
    ///
    /// Panics if the maps have different geometry.
    pub fn record_maps(&mut self, gt: &LabelMap, pred: &LabelMap) {
        assert_eq!((gt.height, gt.width), (pred.height, pred.width), "map size mismatch");
        for (&g, &p) in gt.labels.iter().zip(pred.labels.iter()) {
            self.record(g, p);
        }
    }

    /// Count of pixels with ground truth `gt` predicted as `pred`.
    #[must_use]
    pub fn count(&self, gt: u8, pred: u8) -> u64 {
        self.counts[gt as usize * self.n + pred as usize]
    }

    /// IoU of one class: `tp / (tp + fp + fn)`, or `None` if the class
    /// never appears in either role.
    #[must_use]
    pub fn class_iou(&self, class: u8) -> Option<f64> {
        let c = class as usize;
        let tp = self.counts[c * self.n + c];
        let fp: u64 = (0..self.n).filter(|&g| g != c).map(|g| self.counts[g * self.n + c]).sum();
        let fn_: u64 = (0..self.n).filter(|&p| p != c).map(|p| self.counts[c * self.n + p]).sum();
        let denom = tp + fp + fn_;
        if denom == 0 {
            None
        } else {
            Some(tp as f64 / denom as f64)
        }
    }

    /// Mean IoU over the classes in `eval_classes` that actually occur.
    ///
    /// Returns 0 if none occur.
    #[must_use]
    pub fn mean_iou(&self, eval_classes: &[u8]) -> f64 {
        let ious: Vec<f64> = eval_classes.iter().filter_map(|&c| self.class_iou(c)).collect();
        if ious.is_empty() {
            0.0
        } else {
            ious.iter().sum::<f64>() / ious.len() as f64
        }
    }
}

/// The benchmark's evaluation classes: the 31 frequent ADE20K classes
/// (0..=30); class 31 ("other") is excluded from the ground-truth side.
#[must_use]
pub fn benchmark_eval_classes() -> Vec<u8> {
    (0..31).collect()
}

/// Convenience: benchmark mIoU over whole datasets of map pairs. Accepts
/// owned maps or references (anything that borrows as a [`LabelMap`]), so
/// callers scoring existing prediction buffers need not clone them.
///
/// # Panics
///
/// Panics if slices differ in length.
#[must_use]
pub fn benchmark_miou<G, P>(gts: &[G], preds: &[P]) -> f64
where
    G: std::borrow::Borrow<LabelMap>,
    P: std::borrow::Borrow<LabelMap>,
{
    assert_eq!(gts.len(), preds.len());
    let mut cm = ConfusionMatrix::new(32);
    for (g, p) in gts.iter().zip(preds.iter()) {
        cm.record_maps(g.borrow(), p.borrow());
    }
    cm.mean_iou(&benchmark_eval_classes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_is_one() {
        let mut cm = ConfusionMatrix::new(32);
        for c in 0..31u8 {
            for _ in 0..10 {
                cm.record(c, c);
            }
        }
        assert!((cm.mean_iou(&benchmark_eval_classes()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_wrong_is_zero() {
        let mut cm = ConfusionMatrix::new(4);
        cm.record(0, 1);
        cm.record(1, 2);
        assert_eq!(cm.mean_iou(&[0, 1, 2]), 0.0);
    }

    #[test]
    fn half_right_single_class() {
        let mut cm = ConfusionMatrix::new(4);
        cm.record(0, 0);
        cm.record(0, 0);
        cm.record(0, 1); // one false negative for 0 / false positive for 1
        // class0: tp=2, fn=1, fp=0 -> 2/3.
        assert!((cm.class_iou(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn absent_classes_excluded_from_mean() {
        let mut cm = ConfusionMatrix::new(32);
        cm.record(5, 5);
        // Only class 5 occurs: mean over {5} = 1.0 even though 30 other
        // eval classes exist.
        assert!((cm.mean_iou(&benchmark_eval_classes()) - 1.0).abs() < 1e-12);
        assert!(cm.class_iou(7).is_none());
    }

    #[test]
    fn other_class_not_evaluated() {
        let classes = benchmark_eval_classes();
        assert_eq!(classes.len(), 31);
        assert!(!classes.contains(&31));
    }

    #[test]
    fn map_pair_accumulation() {
        let mut gt = LabelMap::zeros(4, 4);
        let mut pred = LabelMap::zeros(4, 4);
        gt.labels[0] = 3;
        pred.labels[0] = 3;
        pred.labels[1] = 7; // gt 0 predicted as 7
        let miou = benchmark_miou(&[gt], &[pred]);
        // class0: tp=14, fp=0, fn=1 -> 14/15; class3: 1; class7: fp only -> 0.
        let expected = (14.0 / 15.0 + 1.0 + 0.0) / 3.0;
        assert!((miou - expected).abs() < 1e-9, "miou {miou} vs {expected}");
    }

    #[test]
    #[should_panic(expected = "map size mismatch")]
    fn mismatched_maps_panic() {
        let mut cm = ConfusionMatrix::new(32);
        cm.record_maps(&LabelMap::zeros(2, 2), &LabelMap::zeros(3, 3));
    }
}
