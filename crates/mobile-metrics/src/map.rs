//! COCO-style mean average precision (mAP).
//!
//! The real algorithm: per-class greedy matching of score-ranked detections
//! to ground truth at each IoU threshold in 0.50:0.05:0.95, 101-point
//! interpolated average precision, averaged over classes and thresholds —
//! the detection quality metric of paper Table 1.

use mobile_data::types::{Detection, GtObject};
use std::collections::BTreeSet;

/// The ten COCO IoU thresholds: 0.50, 0.55, ..., 0.95.
#[must_use]
pub fn coco_iou_thresholds() -> Vec<f64> {
    (0..10).map(|i| 0.5 + 0.05 * i as f64).collect()
}

/// Computes COCO mAP over a dataset.
///
/// `gts[i]` and `dets[i]` are the ground truth and detections for image
/// `i`. Returns mAP in `[0, 1]` (multiply by 100 for the conventional
/// percentage form used in Table 1).
///
/// # Examples
///
/// ```
/// use mobile_data::types::{BBox, Detection, GtObject};
/// use mobile_metrics::map::coco_map;
///
/// let gt = GtObject { class: 1, bbox: BBox::new(0.1, 0.1, 0.4, 0.4) };
/// let hit = Detection { class: 1, score: 0.9, bbox: gt.bbox };
/// let map = coco_map(&[vec![gt]], &[vec![hit]]);
/// assert!((map - 1.0).abs() < 1e-6);
/// ```
///
/// # Panics
///
/// Panics if the two slices have different lengths.
#[must_use]
pub fn coco_map<D: AsRef<[Detection]>>(gts: &[Vec<GtObject>], dets: &[D]) -> f64 {
    assert_eq!(gts.len(), dets.len(), "image count mismatch");
    let classes: BTreeSet<u32> = gts.iter().flatten().map(|g| g.class).collect();
    if classes.is_empty() {
        return 0.0;
    }
    // Everything threshold-independent is hoisted out of the ten-threshold
    // loop: the score-ranked detection list, the per-image ground-truth
    // indices of the class, and every detection/GT IoU. Each threshold
    // then replays only the greedy matching and the PR curve over those
    // cached values — the exact comparison sequence of
    // [`average_precision`], so the result is bit-identical (the tests
    // below pin `coco_map` to per-class `average_precision` sums).
    let thresholds = coco_iou_thresholds();
    let mut ap_sum = 0.0;
    let mut ap_count = 0usize;
    for &class in &classes {
        // Rank this class's detections once (stable sort, ties keep
        // image/index order — identical to the per-threshold gather).
        let mut all: Vec<(usize, f32, usize)> = Vec::new();
        for (img, img_dets) in dets.iter().enumerate() {
            for (di, d) in img_dets.as_ref().iter().enumerate() {
                if d.class == class {
                    all.push((img, d.score, di));
                }
            }
        }
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
        // Per-image GT indices of this class, in GT order, plus the IoU of
        // every ranked detection against each of them.
        let class_gt: Vec<Vec<usize>> = gts
            .iter()
            .map(|g| {
                g.iter()
                    .enumerate()
                    .filter_map(|(gi, o)| (o.class == class).then_some(gi))
                    .collect()
            })
            .collect();
        let total_gt: usize = class_gt.iter().map(Vec::len).sum();
        if total_gt == 0 {
            ap_count += thresholds.len();
            continue;
        }
        let iou_rows: Vec<Vec<f32>> = all
            .iter()
            .map(|&(img, _score, di)| {
                let det = &dets[img].as_ref()[di];
                class_gt[img].iter().map(|&gi| det.bbox.iou(&gts[img][gi].bbox)).collect()
            })
            .collect();
        let mut claimed: Vec<Vec<bool>> = class_gt.iter().map(|g| vec![false; g.len()]).collect();
        let mut tp: Vec<bool> = Vec::with_capacity(all.len());
        let mut precisions: Vec<f64> = Vec::with_capacity(all.len());
        let mut recalls: Vec<f64> = Vec::with_capacity(all.len());
        for &thr in &thresholds {
            for row in &mut claimed {
                row.fill(false);
            }
            // Greedy matching over the cached IoUs: same candidate order
            // and the same `iou >= best_iou` comparisons as the scan over
            // `gts[img]`, with the non-class entries pre-filtered away.
            tp.clear();
            for (rank, &(img, _score, _di)) in all.iter().enumerate() {
                let mut best_iou = thr as f32;
                let mut best_gt: Option<usize> = None;
                for (j, &iou) in iou_rows[rank].iter().enumerate() {
                    if claimed[img][j] {
                        continue;
                    }
                    if iou >= best_iou {
                        best_iou = iou;
                        best_gt = Some(j);
                    }
                }
                if let Some(j) = best_gt {
                    claimed[img][j] = true;
                    tp.push(true);
                } else {
                    tp.push(false);
                }
            }

            // Precision-recall curve.
            let mut cum_tp = 0usize;
            precisions.clear();
            recalls.clear();
            for (rank, &is_tp) in tp.iter().enumerate() {
                if is_tp {
                    cum_tp += 1;
                }
                precisions.push(cum_tp as f64 / (rank + 1) as f64);
                recalls.push(cum_tp as f64 / total_gt as f64);
            }

            // Monotone non-increasing precision envelope.
            for i in (0..precisions.len().saturating_sub(1)).rev() {
                if precisions[i] < precisions[i + 1] {
                    precisions[i] = precisions[i + 1];
                }
            }

            // 101-point interpolation.
            let mut ap = 0.0;
            let mut idx = 0usize;
            for r in 0..=100 {
                let recall_point = r as f64 / 100.0;
                while idx < recalls.len() && recalls[idx] < recall_point {
                    idx += 1;
                }
                if idx < precisions.len() {
                    ap += precisions[idx];
                }
            }
            ap_sum += ap / 101.0;
            ap_count += 1;
        }
    }
    ap_sum / ap_count as f64
}

/// Average precision for one class at one IoU threshold (101-point
/// interpolation, COCO convention).
#[must_use]
pub fn average_precision<D: AsRef<[Detection]>>(
    gts: &[Vec<GtObject>],
    dets: &[D],
    class: u32,
    iou_threshold: f64,
) -> f64 {
    // Gather detections of this class across all images: (image, score, bbox).
    let mut all: Vec<(usize, f32, usize)> = Vec::new();
    for (img, img_dets) in dets.iter().enumerate() {
        for (di, d) in img_dets.as_ref().iter().enumerate() {
            if d.class == class {
                all.push((img, d.score, di));
            }
        }
    }
    // Rank by score descending (stable on ties by image/index order).
    all.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));

    let total_gt: usize = gts
        .iter()
        .map(|g| g.iter().filter(|o| o.class == class).count())
        .sum();
    if total_gt == 0 {
        return 0.0;
    }

    // Greedy matching: each GT may be claimed once per image.
    let mut claimed: Vec<Vec<bool>> = gts
        .iter()
        .map(|g| vec![false; g.len()])
        .collect();
    let mut tp = vec![false; all.len()];
    for (rank, &(img, _score, di)) in all.iter().enumerate() {
        let det = &dets[img].as_ref()[di];
        let mut best_iou = iou_threshold as f32;
        let mut best_gt: Option<usize> = None;
        for (gi, gt) in gts[img].iter().enumerate() {
            if gt.class != class || claimed[img][gi] {
                continue;
            }
            let iou = det.bbox.iou(&gt.bbox);
            if iou >= best_iou {
                best_iou = iou;
                best_gt = Some(gi);
            }
        }
        if let Some(gi) = best_gt {
            claimed[img][gi] = true;
            tp[rank] = true;
        }
    }

    // Precision-recall curve.
    let mut cum_tp = 0usize;
    let mut precisions = Vec::with_capacity(all.len());
    let mut recalls = Vec::with_capacity(all.len());
    for (rank, &is_tp) in tp.iter().enumerate() {
        if is_tp {
            cum_tp += 1;
        }
        precisions.push(cum_tp as f64 / (rank + 1) as f64);
        recalls.push(cum_tp as f64 / total_gt as f64);
    }

    // Monotone non-increasing precision envelope.
    for i in (0..precisions.len().saturating_sub(1)).rev() {
        if precisions[i] < precisions[i + 1] {
            precisions[i] = precisions[i + 1];
        }
    }

    // 101-point interpolation.
    let mut ap = 0.0;
    let mut idx = 0usize;
    for r in 0..=100 {
        let recall_point = r as f64 / 100.0;
        while idx < recalls.len() && recalls[idx] < recall_point {
            idx += 1;
        }
        if idx < precisions.len() {
            ap += precisions[idx];
        }
    }
    ap / 101.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobile_data::types::BBox;

    fn gt(class: u32, x: f32) -> GtObject {
        GtObject { class, bbox: BBox::new(x, 0.1, x + 0.2, 0.3) }
    }

    fn det(class: u32, score: f32, x: f32) -> Detection {
        Detection { class, score, bbox: BBox::new(x, 0.1, x + 0.2, 0.3) }
    }

    #[test]
    fn perfect_detections_score_one() {
        let gts = vec![vec![gt(1, 0.1), gt(2, 0.5)], vec![gt(1, 0.3)]];
        let dets = vec![
            vec![det(1, 0.9, 0.1), det(2, 0.8, 0.5)],
            vec![det(1, 0.95, 0.3)],
        ];
        let map = coco_map(&gts, &dets);
        assert!((map - 1.0).abs() < 1e-6, "map = {map}");
    }

    #[test]
    fn no_detections_scores_zero() {
        let gts = vec![vec![gt(1, 0.1)]];
        let dets = vec![vec![]];
        assert_eq!(coco_map(&gts, &dets), 0.0);
    }

    #[test]
    fn wrong_class_scores_zero() {
        let gts = vec![vec![gt(1, 0.1)]];
        let dets = vec![vec![det(2, 0.9, 0.1)]];
        assert_eq!(coco_map(&gts, &dets), 0.0);
    }

    #[test]
    fn shifted_boxes_fail_high_iou_thresholds() {
        // A box shifted by half its width has IoU = 1/3: matches at no
        // COCO threshold (all >= 0.5).
        let gts = vec![vec![gt(1, 0.1)]];
        let dets = vec![vec![det(1, 0.9, 0.2)]];
        assert_eq!(coco_map(&gts, &dets), 0.0);
        // A slight shift (IoU ~ 0.82) passes thresholds 0.5..0.8 only.
        let dets2 = vec![vec![det(1, 0.9, 0.12)]];
        let map2 = coco_map(&gts, &dets2);
        assert!(map2 > 0.3 && map2 < 1.0, "map2 = {map2}");
    }

    #[test]
    fn false_positives_reduce_precision() {
        let gts = vec![vec![gt(1, 0.1)]];
        // One correct detection plus one higher-scored false positive.
        let dets = vec![vec![det(1, 0.95, 0.7), det(1, 0.9, 0.1)]];
        let ap = average_precision(&gts, &dets, 1, 0.5);
        assert!((ap - 0.5).abs() < 0.01, "ap = {ap}");
    }

    #[test]
    fn duplicate_detections_counted_once() {
        let gts = vec![vec![gt(1, 0.1)]];
        let dets = vec![vec![det(1, 0.9, 0.1), det(1, 0.85, 0.1)]];
        let ap = average_precision(&gts, &dets, 1, 0.5);
        // Second duplicate is a false positive but comes after recall=1.
        assert!((ap - 1.0).abs() < 1e-6, "ap = {ap}");
    }

    #[test]
    fn missing_one_of_two_gts_halves_recall() {
        let gts = vec![vec![gt(1, 0.1), gt(1, 0.6)]];
        let dets = vec![vec![det(1, 0.9, 0.1)]];
        let ap = average_precision(&gts, &dets, 1, 0.5);
        assert!((ap - 0.5).abs() < 0.01, "ap = {ap}");
    }

    #[test]
    fn coco_map_matches_per_class_average_precision_bitwise() {
        // A messy synthetic dataset: shared and disjoint classes, ties,
        // duplicates, false positives, and images with no detections.
        let gts = vec![
            vec![gt(1, 0.1), gt(1, 0.6), gt(2, 0.3)],
            vec![gt(2, 0.2), gt(3, 0.5)],
            vec![gt(1, 0.4)],
            vec![gt(4, 0.1), gt(4, 0.11)],
        ];
        let dets = vec![
            vec![det(1, 0.9, 0.11), det(1, 0.9, 0.62), det(2, 0.7, 0.31), det(3, 0.6, 0.3)],
            vec![det(2, 0.8, 0.21), det(3, 0.5, 0.52), det(3, 0.4, 0.52)],
            vec![det(1, 0.3, 0.41), det(5, 0.99, 0.4)],
            vec![],
        ];
        let classes: BTreeSet<u32> = gts.iter().flatten().map(|g| g.class).collect();
        let mut ap_sum = 0.0;
        let mut ap_count = 0usize;
        for &class in &classes {
            for &thr in &coco_iou_thresholds() {
                ap_sum += average_precision(&gts, &dets, class, thr);
                ap_count += 1;
            }
        }
        let oracle = ap_sum / ap_count as f64;
        assert_eq!(coco_map(&gts, &dets).to_bits(), oracle.to_bits());
    }

    #[test]
    fn ten_thresholds() {
        let t = coco_iou_thresholds();
        assert_eq!(t.len(), 10);
        assert!((t[0] - 0.5).abs() < 1e-12);
        assert!((t[9] - 0.95).abs() < 1e-12);
    }
}
