//! Latency and throughput statistics.
//!
//! The run rules (paper Section 6.1) score single-stream as the
//! 90th-percentile latency over at least 1024 samples, and offline as
//! average throughput over 24 576 samples. Percentiles follow the
//! nearest-rank convention the LoadGen uses.

use serde::{Deserialize, Serialize};

/// Summary statistics over a set of per-query latencies (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Sample count.
    pub count: usize,
    /// Minimum (ns).
    pub min_ns: u64,
    /// Mean (ns).
    pub mean_ns: u64,
    /// Median / p50 (ns).
    pub p50_ns: u64,
    /// 90th percentile — the benchmark's single-stream score (ns).
    pub p90_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
    /// Maximum (ns).
    pub max_ns: u64,
}

impl LatencyStats {
    /// Computes statistics from raw latencies.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    #[must_use]
    pub fn from_latencies(latencies_ns: &[u64]) -> Self {
        assert!(!latencies_ns.is_empty(), "no latencies");
        let mut sorted = latencies_ns.to_vec();
        sorted.sort_unstable();
        let count = sorted.len();
        let sum: u128 = sorted.iter().map(|&v| u128::from(v)).sum();
        LatencyStats {
            count,
            min_ns: sorted[0],
            mean_ns: (sum / count as u128) as u64,
            p50_ns: percentile_nearest_rank(&sorted, 50.0),
            p90_ns: percentile_nearest_rank(&sorted, 90.0),
            p99_ns: percentile_nearest_rank(&sorted, 99.0),
            max_ns: sorted[count - 1],
        }
    }

    /// The benchmark score in milliseconds (p90).
    #[must_use]
    pub fn score_ms(&self) -> f64 {
        self.p90_ns as f64 / 1e6
    }
}

/// Nearest-rank percentile over a **sorted** slice.
///
/// # Panics
///
/// Panics on an empty slice or percentile outside `(0, 100]`.
#[must_use]
pub fn percentile_nearest_rank(sorted_ns: &[u64], percentile: f64) -> u64 {
    assert!(!sorted_ns.is_empty(), "no samples");
    assert!(percentile > 0.0 && percentile <= 100.0, "percentile out of range");
    // Multiply before dividing: `percentile * count` is exact for the
    // integer percentiles the rules use, so a whole-number rank like
    // 0.9 * 1024 never lands an ULP above the integer and ceils to the
    // rank after the correct one (`(90.0 / 100.0) * n` can).
    let rank = (percentile * sorted_ns.len() as f64 / 100.0).ceil() as usize;
    sorted_ns[rank.clamp(1, sorted_ns.len()) - 1]
}

/// Average throughput in samples per second.
///
/// # Panics
///
/// Panics if the duration is zero.
#[must_use]
pub fn throughput_fps(samples: u64, duration_ns: u64) -> f64 {
    assert!(duration_ns > 0, "zero duration");
    samples as f64 / (duration_ns as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn stats_on_uniform_ramp() {
        let lat: Vec<u64> = (1..=100).collect();
        let s = LatencyStats::from_latencies(&lat);
        assert_eq!(s.count, 100);
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.max_ns, 100);
        assert_eq!(s.p50_ns, 50);
        assert_eq!(s.p90_ns, 90);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.mean_ns, 50);
    }

    #[test]
    fn single_sample() {
        let s = LatencyStats::from_latencies(&[42]);
        assert_eq!(s.p90_ns, 42);
        assert_eq!(s.p50_ns, 42);
    }

    #[test]
    fn p90_ignores_order() {
        let mut lat: Vec<u64> = (1..=1000).collect();
        lat.reverse();
        let s = LatencyStats::from_latencies(&lat);
        assert_eq!(s.p90_ns, 900);
    }

    #[test]
    fn two_samples() {
        // Nearest rank over [10, 20]: p50 is rank ceil(0.5*2)=1, every
        // higher percentile is rank 2.
        let s = LatencyStats::from_latencies(&[20, 10]);
        assert_eq!(s.p50_ns, 10);
        assert_eq!(s.p90_ns, 20);
        assert_eq!(s.p99_ns, 20);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 20);
        assert_eq!(s.mean_ns, 15);
    }

    #[test]
    fn whole_number_ranks_are_exact() {
        // 0.9 * n is a whole number for every multiple of 10: the rank
        // must be exactly 9n/10, never one past it from float error.
        for n in (10..=2000).step_by(10) {
            let lat: Vec<u64> = (1..=n).collect();
            assert_eq!(percentile_nearest_rank(&lat, 90.0), 9 * n / 10, "n = {n}");
            assert_eq!(percentile_nearest_rank(&lat, 50.0), n / 2, "n = {n}");
        }
        // The rule-mandated minimum query count.
        let lat: Vec<u64> = (1..=1024).collect();
        assert_eq!(percentile_nearest_rank(&lat, 90.0), 922); // ceil(921.6)
    }

    #[test]
    fn percentiles_never_decrease() {
        for n in 1..=200u64 {
            let lat: Vec<u64> = (1..=n).collect();
            let s = LatencyStats::from_latencies(&lat);
            assert!(s.min_ns <= s.p50_ns, "n = {n}");
            assert!(s.p50_ns <= s.p90_ns, "n = {n}");
            assert!(s.p90_ns <= s.p99_ns, "n = {n}");
            assert!(s.p99_ns <= s.max_ns, "n = {n}");
        }
    }

    #[test]
    fn score_ms_converts() {
        let s = LatencyStats::from_latencies(&[5_000_000, 5_000_000]);
        assert!((s.score_ms() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_basic() {
        // 24576 samples in 36.45 s -> ~674 fps, the Exynos offline figure.
        let fps = throughput_fps(24_576, 36_450_000_000);
        assert!((fps - 674.2).abs() < 1.0, "fps = {fps}");
    }

    #[test]
    #[should_panic(expected = "zero duration")]
    fn zero_duration_panics() {
        let _ = throughput_fps(10, 0);
    }

    proptest! {
        #[test]
        fn percentile_monotone(mut lat in proptest::collection::vec(1u64..1_000_000, 1..300)) {
            lat.sort_unstable();
            let p50 = percentile_nearest_rank(&lat, 50.0);
            let p90 = percentile_nearest_rank(&lat, 90.0);
            let p99 = percentile_nearest_rank(&lat, 99.0);
            prop_assert!(p50 <= p90 && p90 <= p99);
            prop_assert!(*lat.first().unwrap() <= p50);
            prop_assert!(p99 <= *lat.last().unwrap());
        }

        #[test]
        fn p90_dominates_90pct_of_samples(lat in proptest::collection::vec(1u64..1_000_000, 10..500)) {
            let s = LatencyStats::from_latencies(&lat);
            let below = lat.iter().filter(|&&v| v <= s.p90_ns).count();
            prop_assert!(below as f64 >= 0.9 * lat.len() as f64 - 1.0);
        }
    }
}
