//! Affine (scale + zero-point) quantization arithmetic.
//!
//! Real quantize/dequantize math over `f32` buffers, used by the
//! calibration pipeline and the property tests that pin down round-trip
//! error bounds.

use nn_graph::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Affine quantization parameters mapping real values to integers:
/// `q = round(x / scale) + zero_point`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    /// Real-value step represented by one integer step. Always positive.
    pub scale: f32,
    /// Integer representing real zero.
    pub zero_point: i32,
    /// Target integer type (`I8` or `U8`).
    pub dtype: DataType,
}

impl QuantParams {
    /// Integer range of the target type.
    #[must_use]
    pub fn range(dtype: DataType) -> (i32, i32) {
        match dtype {
            DataType::I8 => (-128, 127),
            DataType::U8 => (0, 255),
            _ => panic!("quantization target must be 8-bit, got {dtype}"),
        }
    }

    /// Derives parameters covering `[min, max]` with an asymmetric scheme.
    ///
    /// The range is widened to include zero so that zero-padding stays
    /// exact, matching TFLite's convention.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`, either bound is non-finite, or `dtype` is not
    /// an 8-bit type.
    #[must_use]
    pub fn from_range(min: f32, max: f32, dtype: DataType) -> Self {
        assert!(min.is_finite() && max.is_finite(), "bounds must be finite");
        assert!(min <= max, "min {min} must not exceed max {max}");
        let (qmin, qmax) = Self::range(dtype);
        // Ensure representable zero.
        let min = min.min(0.0);
        let max = max.max(0.0);
        let span = (max - min).max(f32::EPSILON);
        let scale = span / (qmax - qmin) as f32;
        let zero_point = (qmin as f32 - min / scale).round() as i32;
        let zero_point = zero_point.clamp(qmin, qmax);
        QuantParams { scale, zero_point, dtype }
    }

    /// Symmetric signed parameters (`zero_point = 0`), the weight layout
    /// most NPUs require.
    ///
    /// # Panics
    ///
    /// Panics if `abs_max` is not finite and positive.
    #[must_use]
    pub fn symmetric(abs_max: f32) -> Self {
        assert!(abs_max.is_finite() && abs_max > 0.0, "abs_max must be positive");
        QuantParams { scale: abs_max / 127.0, zero_point: 0, dtype: DataType::I8 }
    }

    /// Quantizes one value, saturating to the representable range.
    #[must_use]
    pub fn quantize(&self, x: f32) -> i32 {
        let (qmin, qmax) = Self::range(self.dtype);
        let q = (x / self.scale).round() as i32 + self.zero_point;
        q.clamp(qmin, qmax)
    }

    /// Dequantizes one integer back to a real value.
    #[must_use]
    pub fn dequantize(&self, q: i32) -> f32 {
        (q - self.zero_point) as f32 * self.scale
    }

    /// Quantizes a slice.
    #[must_use]
    pub fn quantize_slice(&self, xs: &[f32]) -> Vec<i32> {
        xs.iter().map(|&x| self.quantize(x)).collect()
    }

    /// Round-trips a slice through quantization and returns the result.
    #[must_use]
    pub fn round_trip(&self, xs: &[f32]) -> Vec<f32> {
        xs.iter().map(|&x| self.dequantize(self.quantize(x))).collect()
    }
}

impl fmt::Display for QuantParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(scale={:.6}, zp={})", self.dtype, self.scale, self.zero_point)
    }
}

/// Mean squared error between a buffer and its quantized round trip —
/// the objective calibration minimizes.
#[must_use]
pub fn quantization_mse(params: &QuantParams, xs: &[f32]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0f64;
    for &x in xs {
        let e = f64::from(x - params.dequantize(params.quantize(x)));
        acc += e * e;
    }
    acc / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_is_exact() {
        let p = QuantParams::from_range(-3.7, 11.2, DataType::U8);
        assert_eq!(p.dequantize(p.quantize(0.0)), 0.0);
    }

    #[test]
    fn saturation_at_bounds() {
        let p = QuantParams::from_range(-1.0, 1.0, DataType::I8);
        assert_eq!(p.quantize(100.0), 127);
        assert_eq!(p.quantize(-100.0), -128);
    }

    #[test]
    fn symmetric_has_zero_zp() {
        let p = QuantParams::symmetric(6.0);
        assert_eq!(p.zero_point, 0);
        assert!((p.scale - 6.0 / 127.0).abs() < 1e-7);
    }

    #[test]
    fn mse_small_within_range() {
        let p = QuantParams::from_range(0.0, 6.0, DataType::U8);
        let xs: Vec<f32> = (0..=600).map(|i| i as f32 / 100.0).collect();
        let mse = quantization_mse(&p, &xs);
        // Uniform quantization noise is ~ scale^2 / 12.
        let bound = f64::from(p.scale) * f64::from(p.scale) / 12.0 * 4.0;
        assert!(mse < bound, "mse {mse} exceeds bound {bound}");
    }

    #[test]
    fn mse_empty_is_zero() {
        let p = QuantParams::symmetric(1.0);
        assert_eq!(quantization_mse(&p, &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "8-bit")]
    fn rejects_wide_targets() {
        let _ = QuantParams::from_range(0.0, 1.0, DataType::F16);
    }

    proptest! {
        #[test]
        fn round_trip_error_bounded(
            vals in proptest::collection::vec(-100.0f32..100.0, 1..200),
        ) {
            let min = vals.iter().copied().fold(f32::INFINITY, f32::min);
            let max = vals.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let p = QuantParams::from_range(min, max, DataType::U8);
            for (&x, &y) in vals.iter().zip(p.round_trip(&vals).iter()) {
                // In-range values err by at most one step.
                prop_assert!((x - y).abs() <= p.scale * 1.01,
                    "x={x} y={y} scale={}", p.scale);
            }
        }

        #[test]
        fn quantize_is_monotone(a in -50.0f32..50.0, b in -50.0f32..50.0) {
            let p = QuantParams::from_range(-50.0, 50.0, DataType::I8);
            if a <= b {
                prop_assert!(p.quantize(a) <= p.quantize(b));
            }
        }

        #[test]
        fn quantized_values_in_range(x in -1e6f32..1e6) {
            let p = QuantParams::from_range(-10.0, 10.0, DataType::U8);
            let q = p.quantize(x);
            prop_assert!((0..=255).contains(&q));
        }
    }
}
