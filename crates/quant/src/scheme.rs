//! Deployment numerics schemes and the submission rules that govern them.
//!
//! Paper Section 5.1: submissions must start from the frozen FP32
//! reference; post-training quantization (PTQ) with the approved
//! calibration set is allowed, quantization-aware training (QAT) is not —
//! unless all participants mutually agreed on a provided reference QAT
//! model. Pruning/weight-skipping is banned outright.

use crate::calibration::CalibrationMethod;
use nn_graph::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a submitter deploys the reference model numerically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scheme {
    /// Unmodified FP32 reference.
    Fp32,
    /// FP16 cast — mathematically-equivalent approximation, always allowed.
    Fp16,
    /// Post-training quantization to 8-bit with the given calibration
    /// method, using only the approved calibration set.
    PtqInt8 {
        /// Calibration strategy used to derive ranges.
        method: CalibrationMethod,
        /// Signed (`I8`) or unsigned (`U8`) deployment.
        dtype: DataType,
    },
    /// Quantization-aware-trained 8-bit model. Only legal if it is the
    /// mutually-agreed reference QAT checkpoint.
    QatInt8 {
        /// Whether this is the provided reference QAT model.
        reference_model: bool,
    },
}

impl Scheme {
    /// Convenience constructor for the default PTQ pipeline.
    #[must_use]
    pub fn ptq_default(dtype: DataType) -> Self {
        Scheme::PtqInt8 { method: CalibrationMethod::default(), dtype }
    }

    /// Element type tensors carry under this scheme.
    #[must_use]
    pub fn dtype(self) -> DataType {
        match self {
            Scheme::Fp32 => DataType::F32,
            Scheme::Fp16 => DataType::F16,
            Scheme::PtqInt8 { dtype, .. } => dtype,
            Scheme::QatInt8 { .. } => DataType::I8,
        }
    }

    /// Whether the scheme is legal under the MLPerf Mobile run rules.
    #[must_use]
    pub fn is_submission_legal(self) -> bool {
        match self {
            Scheme::Fp32 | Scheme::Fp16 | Scheme::PtqInt8 { .. } => true,
            // QAT retraining is banned; the provided reference QAT model is
            // the one exception (paper Section 5.1).
            Scheme::QatInt8 { reference_model } => reference_model,
        }
    }

    /// Whether the scheme quantizes to 8 bits.
    #[must_use]
    pub fn is_quantized(self) -> bool {
        self.dtype().is_quantized()
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scheme::Fp32 => write!(f, "FP32"),
            Scheme::Fp16 => write!(f, "FP16"),
            Scheme::PtqInt8 { dtype, .. } => write!(f, "{dtype} (PTQ)"),
            Scheme::QatInt8 { .. } => write!(f, "INT8 (QAT)"),
        }
    }
}

/// Model-transformation techniques, classified by legality.
///
/// Used by the audit to reject submissions that alter computational
/// complexity (paper Section 5.1: "banned techniques include channel
/// pruning, filter pruning, and weight skipping").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transform {
    /// Numerics-only change (quantization, FP16 cast) — legal.
    Requantization,
    /// Mathematically-equivalent rewrites (op fusion, layout) — legal.
    EquivalentRewrite,
    /// Channel pruning — banned.
    ChannelPruning,
    /// Filter pruning — banned.
    FilterPruning,
    /// Weight skipping / sparsity exploitation — banned.
    WeightSkipping,
    /// Retraining (incl. NAS) — banned.
    Retraining,
}

impl Transform {
    /// Whether the rules permit this transform.
    #[must_use]
    pub fn is_legal(self) -> bool {
        matches!(self, Transform::Requantization | Transform::EquivalentRewrite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtypes_match_scheme() {
        assert_eq!(Scheme::Fp32.dtype(), DataType::F32);
        assert_eq!(Scheme::Fp16.dtype(), DataType::F16);
        assert_eq!(Scheme::ptq_default(DataType::U8).dtype(), DataType::U8);
        assert_eq!(Scheme::QatInt8 { reference_model: true }.dtype(), DataType::I8);
    }

    #[test]
    fn qat_only_legal_as_reference() {
        assert!(Scheme::QatInt8 { reference_model: true }.is_submission_legal());
        assert!(!Scheme::QatInt8 { reference_model: false }.is_submission_legal());
    }

    #[test]
    fn ptq_and_floats_always_legal() {
        assert!(Scheme::Fp32.is_submission_legal());
        assert!(Scheme::Fp16.is_submission_legal());
        assert!(Scheme::ptq_default(DataType::I8).is_submission_legal());
    }

    #[test]
    fn banned_transforms() {
        assert!(Transform::Requantization.is_legal());
        assert!(Transform::EquivalentRewrite.is_legal());
        assert!(!Transform::ChannelPruning.is_legal());
        assert!(!Transform::FilterPruning.is_legal());
        assert!(!Transform::WeightSkipping.is_legal());
        assert!(!Transform::Retraining.is_legal());
    }

    #[test]
    fn display_matches_table2_vocabulary() {
        assert_eq!(Scheme::Fp16.to_string(), "FP16");
        assert_eq!(Scheme::ptq_default(DataType::U8).to_string(), "UINT8 (PTQ)");
    }
}
