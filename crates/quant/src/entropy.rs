//! Entropy (KL-divergence) calibration.
//!
//! The third classic PTQ range-estimation strategy beside min/max and
//! percentile clipping: choose the clip threshold whose quantized
//! distribution minimizes the KL divergence to the original — the
//! TensorRT-style calibrator vendor toolchains implement. Real algorithm
//! over a histogram, exercised against the other methods.

use crate::affine::QuantParams;
use nn_graph::DataType;

/// Histogram bins used to model the activation distribution.
const BINS: usize = 512;
/// Quantization levels of the symmetric INT8 target.
const LEVELS: usize = 128;

/// Builds a magnitude histogram of the observations.
fn histogram(values: &[f32], abs_max: f32) -> Vec<f64> {
    let mut hist = vec![0.0f64; BINS];
    if abs_max <= 0.0 {
        return hist;
    }
    for &v in values {
        let m = v.abs();
        let bin = ((m / abs_max) * BINS as f32) as usize;
        hist[bin.min(BINS - 1)] += 1.0;
    }
    hist
}

/// KL divergence `sum(p * ln(p/q))` between (unnormalized) distributions,
/// skipping empty reference bins and smoothing empty candidate bins.
fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    let sp: f64 = p.iter().sum();
    let sq: f64 = q.iter().sum();
    if sp == 0.0 || sq == 0.0 {
        return f64::INFINITY;
    }
    let mut kl = 0.0;
    for (&pi, &qi) in p.iter().zip(q.iter()) {
        if pi <= 0.0 {
            continue;
        }
        let pn = pi / sp;
        let qn = (qi / sq).max(1e-12);
        kl += pn * (pn / qn).ln();
    }
    kl
}

/// Simulates quantizing the first `clip_bins` of a histogram into
/// [`LEVELS`] levels (values past the clip saturate into the last level),
/// then expands back to histogram resolution.
fn quantized_distribution(hist: &[f64], clip_bins: usize) -> Vec<f64> {
    let mut q = vec![0.0f64; hist.len()];
    let bins_per_level = (clip_bins as f64 / LEVELS as f64).max(1.0);
    for level in 0..LEVELS {
        let start = (level as f64 * bins_per_level) as usize;
        let end = (((level + 1) as f64) * bins_per_level) as usize;
        let end = end.min(clip_bins).max(start + 1);
        let mut mass: f64 = hist[start..end.min(hist.len())].iter().sum();
        // Saturation: everything past the clip lands in the top level.
        if level == LEVELS - 1 {
            mass += hist[clip_bins.min(hist.len())..].iter().sum::<f64>();
        }
        let occupied = (end.min(hist.len())).saturating_sub(start).max(1);
        for slot in q.iter_mut().skip(start).take(occupied) {
            *slot += mass / occupied as f64;
        }
    }
    q
}

/// Finds the symmetric clip threshold minimizing KL divergence and returns
/// the resulting quantization parameters.
///
/// # Panics
///
/// Panics on empty input.
#[must_use]
pub fn entropy_calibrate(values: &[f32]) -> QuantParams {
    assert!(!values.is_empty(), "no calibration values");
    let abs_max = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if abs_max == 0.0 {
        return QuantParams { scale: f32::MIN_POSITIVE, zero_point: 0, dtype: DataType::I8 };
    }
    let hist = histogram(values, abs_max);
    let mut best_clip = BINS;
    let mut best_kl = f64::INFINITY;
    // Candidate thresholds from 25% to 100% of the observed range.
    let mut clip = BINS / 4;
    while clip <= BINS {
        let q = quantized_distribution(&hist, clip);
        let kl = kl_divergence(&hist, &q);
        if kl < best_kl {
            best_kl = kl;
            best_clip = clip;
        }
        clip += BINS / 64;
    }
    let threshold = abs_max * best_clip as f32 / BINS as f32;
    QuantParams {
        scale: (threshold / 127.0).max(f32::MIN_POSITIVE),
        zero_point: 0,
        dtype: DataType::I8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::quantization_mse;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn gaussian_with_outliers(n: usize, outliers: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v: Vec<f32> = (0..n)
            .map(|_| {
                // Approximate normal via sum of uniforms.
                (0..12).map(|_| rng.gen_range(-0.5f32..0.5)).sum::<f32>()
            })
            .collect();
        for _ in 0..outliers {
            v.push(rng.gen_range(40.0f32..60.0));
        }
        v
    }

    #[test]
    fn entropy_clips_outliers() {
        let data = gaussian_with_outliers(20_000, 5, 7);
        let p = entropy_calibrate(&data);
        // The threshold (127 * scale) should sit far below the 40-60
        // outlier magnitudes.
        let threshold = p.scale * 127.0;
        assert!(threshold < 30.0, "threshold {threshold} should ignore outliers");
    }

    #[test]
    fn entropy_beats_minmax_under_outliers() {
        let data = gaussian_with_outliers(20_000, 5, 11);
        let bulk = &data[..20_000];
        let entropy = entropy_calibrate(&data);
        let abs_max = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let minmax = QuantParams { scale: abs_max / 127.0, zero_point: 0, dtype: DataType::I8 };
        let mse_e = quantization_mse(&entropy, bulk);
        let mse_m = quantization_mse(&minmax, bulk);
        assert!(
            mse_e * 5.0 < mse_m,
            "entropy {mse_e:.3e} should beat minmax {mse_m:.3e} on the bulk"
        );
    }

    #[test]
    fn clean_distribution_keeps_full_range() {
        let data = gaussian_with_outliers(20_000, 0, 13);
        let p = entropy_calibrate(&data);
        let abs_max = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let threshold = p.scale * 127.0;
        // Without outliers, the chosen clip stays near the true range.
        assert!(threshold > abs_max * 0.4, "threshold {threshold} vs max {abs_max}");
    }

    #[test]
    fn all_zero_input_is_safe() {
        let p = entropy_calibrate(&[0.0; 100]);
        assert!(p.scale > 0.0);
        assert_eq!(p.quantize(0.0), 0);
    }
}
