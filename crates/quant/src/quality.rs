//! Quality-impact model: how much task quality each numerics scheme
//! retains relative to the FP32 reference.
//!
//! In the real benchmark this emerges from running the quantized network;
//! here it is a calibrated statistical model (see DESIGN.md). The retention
//! figures are set so the paper's Table 1 quality gates behave correctly:
//! PTQ INT8 passes every vision target, sits *barely* above the 93 % NLP
//! target (the OpenVINO laptop submissions did pass INT8 NLP), QAT recovers
//! most PTQ loss, and FP16 is effectively lossless.

use crate::calibration::{CalibrationMethod, APPROVED_CALIBRATION_SAMPLES};
use crate::scheme::Scheme;
use serde::{Deserialize, Serialize};

/// How sensitive a task's quality metric is to 8-bit quantization.
///
/// Dimensionless multiplier on the base PTQ loss. Calibrated per reference
/// model; see [`Sensitivity::for_model`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sensitivity(pub f64);

impl Sensitivity {
    /// Calibrated sensitivity for each reference model.
    ///
    /// NLP span extraction degrades far more under activation quantization
    /// than vision CNNs (long accumulation chains through 24 transformer
    /// layers), which is the numerics half of the paper's Insight 5.
    #[must_use]
    pub fn for_model(model: nn_graph::models::ModelId) -> Self {
        use nn_graph::models::ModelId;
        let s = match model {
            ModelId::MobileNetEdgeTpu => 0.8,
            ModelId::SsdMobileNetV2 => 1.5,
            ModelId::MobileDetSsd => 1.8,
            ModelId::DeepLabV3Plus => 1.2,
            ModelId::MobileBert => 4.2,
            // Extension tasks: recurrent state quantizes poorly (error
            // compounds across timesteps); SR is mildly sensitive.
            ModelId::MobileRnnt => 3.6,
            ModelId::EdsrMobile => 1.6,
        };
        Sensitivity(s)
    }
}

/// Base relative quality loss of PTQ INT8 at sensitivity 1.0 with the
/// default percentile calibration and full approved calibration set.
const BASE_PTQ_LOSS: f64 = 0.015;
/// Base relative loss of the reference QAT model at sensitivity 1.0.
const BASE_QAT_LOSS: f64 = 0.006;
/// Base relative loss of an FP16 cast at sensitivity 1.0.
const BASE_FP16_LOSS: f64 = 0.0003;
/// Extra loss multiplier when calibrating with raw min/max instead of a
/// percentile clip (outliers blow up the scale).
const MINMAX_PENALTY: f64 = 1.35;

/// Fraction of the FP32 metric the deployed model retains.
///
/// Always in `(0, 1]`. Retention shrinks when the calibration set is
/// smaller than the approved 500 samples (ranges are under-estimated).
#[must_use]
pub fn quality_retention(scheme: Scheme, sensitivity: Sensitivity, calibration_samples: usize) -> f64 {
    let s = sensitivity.0;
    let loss = match scheme {
        Scheme::Fp32 => 0.0,
        Scheme::Fp16 => BASE_FP16_LOSS * s,
        Scheme::QatInt8 { .. } => BASE_QAT_LOSS * s,
        Scheme::PtqInt8 { method, .. } => {
            let method_factor = match method {
                CalibrationMethod::MinMax => MINMAX_PENALTY,
                CalibrationMethod::Percentile(_) => 1.0,
            };
            let coverage = (calibration_samples.min(APPROVED_CALIBRATION_SAMPLES) as f64
                / APPROVED_CALIBRATION_SAMPLES as f64)
                .max(1.0 / APPROVED_CALIBRATION_SAMPLES as f64);
            // Under-calibration inflates loss: at 10% of the set, loss
            // roughly doubles.
            let coverage_factor = 1.0 + (1.0 - coverage) * 1.2;
            BASE_PTQ_LOSS * s * method_factor * coverage_factor
        }
    };
    (1.0 - loss).clamp(0.0, 1.0)
}

/// Convenience: retention with the full approved calibration set.
#[must_use]
pub fn nominal_retention(scheme: Scheme, sensitivity: Sensitivity) -> f64 {
    quality_retention(scheme, sensitivity, APPROVED_CALIBRATION_SAMPLES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn_graph::models::ModelId;
    use nn_graph::DataType;

    fn ptq() -> Scheme {
        Scheme::ptq_default(DataType::I8)
    }

    #[test]
    fn fp32_is_lossless() {
        for m in ModelId::ALL {
            let r = nominal_retention(Scheme::Fp32, Sensitivity::for_model(m));
            assert_eq!(r, 1.0);
        }
    }

    #[test]
    fn ordering_fp16_qat_ptq() {
        let s = Sensitivity::for_model(ModelId::MobileBert);
        let fp16 = nominal_retention(Scheme::Fp16, s);
        let qat = nominal_retention(Scheme::QatInt8 { reference_model: true }, s);
        let ptq_r = nominal_retention(ptq(), s);
        assert!(fp16 > qat, "FP16 {fp16} should retain more than QAT {qat}");
        assert!(qat > ptq_r, "QAT {qat} should retain more than PTQ {ptq_r}");
    }

    #[test]
    fn vision_ptq_passes_table1_targets() {
        // Table 1 quality targets as fraction of FP32.
        let cases = [
            (ModelId::MobileNetEdgeTpu, 0.98),
            (ModelId::SsdMobileNetV2, 0.93),
            (ModelId::MobileDetSsd, 0.95),
            (ModelId::DeepLabV3Plus, 0.97),
        ];
        for (m, target) in cases {
            let r = nominal_retention(ptq(), Sensitivity::for_model(m));
            assert!(r >= target, "{m:?}: PTQ retention {r:.4} misses target {target}");
        }
    }

    #[test]
    fn nlp_ptq_is_borderline() {
        // INT8 PTQ NLP just clears the 93 % gate (laptops did submit INT8
        // NLP), but with almost no margin — phones prefer FP16.
        let s = Sensitivity::for_model(ModelId::MobileBert);
        let r = nominal_retention(ptq(), s);
        assert!(r >= 0.93, "retention {r:.4} must clear the gate");
        assert!(r < 0.945, "retention {r:.4} should be borderline");
        let fp16 = nominal_retention(Scheme::Fp16, s);
        assert!(fp16 > 0.99);
    }

    #[test]
    fn minmax_calibration_hurts() {
        let s = Sensitivity::for_model(ModelId::MobileBert);
        let good = nominal_retention(ptq(), s);
        let bad = nominal_retention(
            Scheme::PtqInt8 { method: CalibrationMethod::MinMax, dtype: DataType::I8 },
            s,
        );
        assert!(bad < good);
        // Bad calibration pushes borderline NLP below the gate.
        assert!(bad < 0.93, "minmax NLP retention {bad:.4} should fail the 93% gate");
    }

    #[test]
    fn small_calibration_set_hurts() {
        let s = Sensitivity::for_model(ModelId::DeepLabV3Plus);
        let full = quality_retention(ptq(), s, 500);
        let tiny = quality_retention(ptq(), s, 50);
        assert!(tiny < full);
    }

    #[test]
    fn retention_monotone_in_samples() {
        let s = Sensitivity::for_model(ModelId::SsdMobileNetV2);
        let mut last = 0.0;
        for n in [1, 10, 50, 100, 250, 500] {
            let r = quality_retention(ptq(), s, n);
            assert!(r >= last, "retention must not decrease with more samples");
            last = r;
        }
    }
}
