//! Numerics for the MLPerf Mobile reproduction.
//!
//! Covers the paper's Section 5 ("Model Optimizations"): affine
//! quantization arithmetic, post-training calibration with the approved
//! 500-sample budget, legal/illegal deployment schemes, a calibrated
//! quality-impact model, and the structural model-equivalence checks the
//! audit performs.
//!
//! # Examples
//!
//! ```
//! use quant::{Scheme, Sensitivity, nominal_retention};
//! use nn_graph::models::ModelId;
//! use nn_graph::DataType;
//!
//! // INT8 PTQ keeps classification comfortably above its 98% gate...
//! let cls = Sensitivity::for_model(ModelId::MobileNetEdgeTpu);
//! assert!(nominal_retention(Scheme::ptq_default(DataType::U8), cls) >= 0.98);
//! // ...but barely clears the 93% NLP gate, which is why phones run FP16.
//! let nlp = Sensitivity::for_model(ModelId::MobileBert);
//! assert!(nominal_retention(Scheme::Fp16, nlp) > 0.99);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod affine;
pub mod calibration;
pub mod entropy;
pub mod equivalence;
pub mod per_channel;
pub mod qat;
pub mod quality;
pub mod scheme;

pub use affine::{quantization_mse, QuantParams};
pub use entropy::entropy_calibrate;
pub use per_channel::{per_tensor_mse, PerChannelParams};
pub use qat::{AgreementError, QatProposal, QatRegistry};
pub use calibration::{CalibrationError, CalibrationMethod, Calibrator};
pub use equivalence::{check_equivalence, EquivalenceViolation};
pub use quality::{nominal_retention, quality_retention, Sensitivity};
pub use scheme::{Scheme, Transform};
