//! Per-channel (axis) quantization.
//!
//! Vendor NPU toolchains quantize convolution weights per output channel:
//! one scale per filter instead of one per tensor. This is the main reason
//! PTQ INT8 holds accuracy on depthwise-separable networks, whose filter
//! magnitudes vary wildly across channels. Real arithmetic, exercised by
//! the calibration tests.

use crate::affine::QuantParams;
use nn_graph::DataType;
use serde::{Deserialize, Serialize};

/// Per-channel symmetric quantization parameters (one scale per channel,
/// zero-point fixed at 0 as NPU weight formats require).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerChannelParams {
    /// One scale per channel.
    pub scales: Vec<f32>,
}

impl PerChannelParams {
    /// Derives per-channel scales from channel-major data: `data` holds
    /// `channels` rows of `row_len` values each.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != channels * row_len` or either is zero.
    #[must_use]
    pub fn from_channel_major(data: &[f32], channels: usize, row_len: usize) -> Self {
        assert!(channels > 0 && row_len > 0, "empty tensor");
        assert_eq!(data.len(), channels * row_len, "shape mismatch");
        let scales = (0..channels)
            .map(|c| {
                let row = &data[c * row_len..(c + 1) * row_len];
                let abs_max = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                (abs_max / 127.0).max(f32::MIN_POSITIVE)
            })
            .collect();
        PerChannelParams { scales }
    }

    /// Channel count.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.scales.len()
    }

    /// Quantizes channel-major data and dequantizes it back — the
    /// round-trip a deployed weight tensor experiences.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch with the stored channel count.
    #[must_use]
    pub fn round_trip(&self, data: &[f32]) -> Vec<f32> {
        let channels = self.channels();
        assert_eq!(data.len() % channels, 0, "data not divisible into channels");
        let row_len = data.len() / channels;
        let mut out = Vec::with_capacity(data.len());
        for (c, scale) in self.scales.iter().enumerate() {
            for &v in &data[c * row_len..(c + 1) * row_len] {
                let q = (v / scale).round().clamp(-127.0, 127.0);
                out.push(q * scale);
            }
        }
        out
    }

    /// Round-trip mean squared error over the tensor.
    #[must_use]
    pub fn mse(&self, data: &[f32]) -> f64 {
        let rt = self.round_trip(data);
        data.iter()
            .zip(rt.iter())
            .map(|(&a, &b)| f64::from(a - b) * f64::from(a - b))
            .sum::<f64>()
            / data.len() as f64
    }
}

/// Per-tensor round-trip MSE with a single symmetric scale, for
/// comparison.
///
/// # Panics
///
/// Panics on empty data.
#[must_use]
pub fn per_tensor_mse(data: &[f32]) -> f64 {
    assert!(!data.is_empty());
    let abs_max = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let params = QuantParams {
        scale: (abs_max / 127.0).max(f32::MIN_POSITIVE),
        zero_point: 0,
        dtype: DataType::I8,
    };
    crate::affine::quantization_mse(&params, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Weights whose magnitude varies strongly by channel — the depthwise
    /// filter pattern.
    fn varied_channels(channels: usize, row: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(channels * row);
        for c in 0..channels {
            let magnitude = 10f32.powi(c as i32 % 4) * 0.01; // 0.01..10
            for _ in 0..row {
                data.push(rng.gen_range(-magnitude..magnitude));
            }
        }
        data
    }

    #[test]
    fn per_channel_beats_per_tensor_on_varied_filters() {
        let data = varied_channels(16, 64, 3);
        let pc = PerChannelParams::from_channel_major(&data, 16, 64);
        let mse_pc = pc.mse(&data);
        let mse_pt = per_tensor_mse(&data);
        assert!(
            mse_pc * 2.0 < mse_pt,
            "per-channel {mse_pc:.3e} should beat per-tensor {mse_pt:.3e}"
        );
        // The decisive effect: a per-tensor scale sized for the magnitude-10
        // filters rounds the 0.01-magnitude filter entirely to zero, while
        // per-channel scales preserve it.
        let small_channel = &data[0..64]; // magnitude 0.01
        let pt_scale = data.iter().fold(0.0f32, |m, &v| m.max(v.abs())) / 127.0;
        assert!(small_channel.iter().all(|&v| (v / pt_scale).round() == 0.0));
        let rt = pc.round_trip(&data);
        let preserved = small_channel
            .iter()
            .zip(rt[0..64].iter())
            .filter(|(&a, &b)| a != 0.0 && (a - b).abs() < a.abs() * 0.5)
            .count();
        assert!(preserved > 32, "per-channel keeps the small filter alive ({preserved}/64)");
    }

    #[test]
    fn uniform_channels_tie() {
        // When all channels share a range, both schemes are equivalent.
        let mut rng = StdRng::seed_from_u64(9);
        let data: Vec<f32> = (0..1024).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let pc = PerChannelParams::from_channel_major(&data, 16, 64);
        let ratio = pc.mse(&data) / per_tensor_mse(&data);
        assert!((0.5..1.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn zero_channel_handled() {
        let mut data = varied_channels(4, 8, 1);
        for v in &mut data[0..8] {
            *v = 0.0; // an all-zero filter
        }
        let pc = PerChannelParams::from_channel_major(&data, 4, 8);
        let rt = pc.round_trip(&data);
        assert!(rt[0..8].iter().all(|&v| v == 0.0));
    }

    proptest! {
        #[test]
        fn round_trip_error_within_half_scale(
            seed in 0u64..50,
            channels in 1usize..8,
        ) {
            let data = varied_channels(channels, 16, seed);
            let pc = PerChannelParams::from_channel_major(&data, channels, 16);
            let rt = pc.round_trip(&data);
            for (c, scale) in pc.scales.iter().enumerate() {
                for i in 0..16 {
                    let idx = c * 16 + i;
                    prop_assert!(
                        (data[idx] - rt[idx]).abs() <= scale * 0.5 + 1e-9,
                        "channel {c}: {} vs {}", data[idx], rt[idx]
                    );
                }
            }
        }
    }
}
