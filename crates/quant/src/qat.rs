//! Reference QAT model agreements.
//!
//! Paper Section 5.1: quantization-aware training is banned — except that
//! "depending on submitter needs, we provide QAT versions of the model.
//! All participants mutually agree on these QAT models as being comparable
//! to the PTQ models." This module implements that governance: a QAT
//! checkpoint only becomes legal once *every* participating organization
//! has signed off.

use nn_graph::models::ModelId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A proposed reference QAT checkpoint awaiting mutual agreement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QatProposal {
    /// Which reference model it quantizes.
    pub model: ModelId,
    /// Content digest of the checkpoint (what submitters verify against).
    pub checkpoint_digest: u64,
    /// Organizations that have signed off.
    approvals: BTreeSet<String>,
}

/// Errors from the agreement workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgreementError {
    /// The approving organization is not a registered participant.
    UnknownParticipant(String),
    /// The checkpoint is not yet agreed by everyone.
    NotAgreed {
        /// Approvals so far.
        approvals: usize,
        /// Participants required.
        required: usize,
    },
}

impl std::fmt::Display for AgreementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AgreementError::UnknownParticipant(p) => write!(f, "{p} is not a participant"),
            AgreementError::NotAgreed { approvals, required } => {
                write!(f, "only {approvals}/{required} participants have agreed")
            }
        }
    }
}

impl std::error::Error for AgreementError {}

/// The round's participant roster plus proposed QAT checkpoints.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QatRegistry {
    participants: BTreeSet<String>,
    proposals: Vec<QatProposal>,
}

impl QatRegistry {
    /// Creates a registry with the round's participants.
    ///
    /// # Panics
    ///
    /// Panics on an empty roster.
    #[must_use]
    pub fn new<I: IntoIterator<Item = String>>(participants: I) -> Self {
        let participants: BTreeSet<String> = participants.into_iter().collect();
        assert!(!participants.is_empty(), "a round needs participants");
        QatRegistry { participants, proposals: Vec::new() }
    }

    /// Proposes a QAT checkpoint; returns its proposal index.
    pub fn propose(&mut self, model: ModelId, checkpoint_digest: u64) -> usize {
        self.proposals.push(QatProposal {
            model,
            checkpoint_digest,
            approvals: BTreeSet::new(),
        });
        self.proposals.len() - 1
    }

    /// Records one participant's approval.
    ///
    /// # Errors
    ///
    /// Rejects approvals from non-participants.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range proposal index.
    pub fn approve(&mut self, proposal: usize, participant: &str) -> Result<(), AgreementError> {
        if !self.participants.contains(participant) {
            return Err(AgreementError::UnknownParticipant(participant.to_owned()));
        }
        self.proposals[proposal].approvals.insert(participant.to_owned());
        Ok(())
    }

    /// Whether a proposal has unanimous agreement.
    #[must_use]
    pub fn is_agreed(&self, proposal: usize) -> bool {
        self.proposals[proposal].approvals == self.participants
    }

    /// Validates that a submission's QAT checkpoint is a mutually-agreed
    /// reference for the model.
    ///
    /// # Errors
    ///
    /// Returns [`AgreementError::NotAgreed`] if no matching checkpoint has
    /// unanimous approval.
    pub fn validate_submission(
        &self,
        model: ModelId,
        checkpoint_digest: u64,
    ) -> Result<(), AgreementError> {
        let best = self
            .proposals
            .iter()
            .filter(|p| p.model == model && p.checkpoint_digest == checkpoint_digest)
            .map(|p| p.approvals.len())
            .max()
            .unwrap_or(0);
        if self
            .proposals
            .iter()
            .any(|p| {
                p.model == model
                    && p.checkpoint_digest == checkpoint_digest
                    && p.approvals == self.participants
            })
        {
            Ok(())
        } else {
            Err(AgreementError::NotAgreed { approvals: best, required: self.participants.len() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;

    fn roster() -> QatRegistry {
        QatRegistry::new(
            ["MediaTek", "Samsung", "Qualcomm", "Intel"]
                .into_iter()
                .map(String::from),
        )
    }

    #[test]
    fn unanimous_agreement_legalizes_qat() {
        let mut reg = roster();
        let p = reg.propose(ModelId::MobileNetEdgeTpu, 0xABCD);
        for org in ["MediaTek", "Samsung", "Qualcomm", "Intel"] {
            assert!(!reg.is_agreed(p), "not agreed before {org}");
            reg.approve(p, org).unwrap();
        }
        assert!(reg.is_agreed(p));
        assert!(reg.validate_submission(ModelId::MobileNetEdgeTpu, 0xABCD).is_ok());
        // The scheme-level rule agrees: a reference QAT model is legal.
        assert!(Scheme::QatInt8 { reference_model: true }.is_submission_legal());
    }

    #[test]
    fn partial_agreement_is_rejected() {
        let mut reg = roster();
        let p = reg.propose(ModelId::MobileBert, 0x1111);
        reg.approve(p, "Samsung").unwrap();
        reg.approve(p, "Intel").unwrap();
        let err = reg.validate_submission(ModelId::MobileBert, 0x1111).unwrap_err();
        assert_eq!(err, AgreementError::NotAgreed { approvals: 2, required: 4 });
    }

    #[test]
    fn home_grown_checkpoint_rejected() {
        // A submitter's own retrained checkpoint (different digest) is not
        // the agreed reference — the anti-retraining rule.
        let mut reg = roster();
        let p = reg.propose(ModelId::MobileNetEdgeTpu, 0xABCD);
        for org in ["MediaTek", "Samsung", "Qualcomm", "Intel"] {
            reg.approve(p, org).unwrap();
        }
        assert!(reg.validate_submission(ModelId::MobileNetEdgeTpu, 0xDEAD).is_err());
    }

    #[test]
    fn outsiders_cannot_vote() {
        let mut reg = roster();
        let p = reg.propose(ModelId::MobileNetEdgeTpu, 1);
        assert!(matches!(
            reg.approve(p, "RandomVendor"),
            Err(AgreementError::UnknownParticipant(_))
        ));
    }

    #[test]
    fn duplicate_approvals_idempotent() {
        let mut reg = roster();
        let p = reg.propose(ModelId::DeepLabV3Plus, 7);
        reg.approve(p, "Samsung").unwrap();
        reg.approve(p, "Samsung").unwrap();
        assert!(!reg.is_agreed(p));
    }
}
