//! Post-training calibration.
//!
//! The paper (Section 5.1) mandates that submitters quantize from the
//! frozen FP32 reference using *only* an approved calibration set —
//! "typically 500 samples or images from the training or validation data
//! set". This module implements the observer/estimator side: it watches
//! activation values and derives [`QuantParams`].

use crate::affine::QuantParams;
use nn_graph::DataType;
use serde::{Deserialize, Serialize};

/// Size of the approved calibration set (paper Section 5.1).
pub const APPROVED_CALIBRATION_SAMPLES: usize = 500;

/// Range-estimation strategy used during calibration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CalibrationMethod {
    /// Track the global min/max. Simple but outlier-sensitive.
    MinMax,
    /// Clip to the given two-sided percentile (e.g. 99.9), discarding
    /// outliers for a tighter scale.
    Percentile(f64),
}

impl Default for CalibrationMethod {
    fn default() -> Self {
        CalibrationMethod::Percentile(99.9)
    }
}

/// Errors from the calibration pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalibrationError {
    /// No samples were observed before `finish`.
    NoSamples,
    /// The calibration set exceeds the approved sample budget.
    TooManySamples {
        /// Samples observed.
        observed: usize,
        /// Approved maximum.
        approved: usize,
    },
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationError::NoSamples => write!(f, "no calibration samples observed"),
            CalibrationError::TooManySamples { observed, approved } => write!(
                f,
                "calibration used {observed} samples but only {approved} are approved"
            ),
        }
    }
}

impl std::error::Error for CalibrationError {}

/// Streaming range observer that produces [`QuantParams`].
///
/// # Examples
///
/// ```
/// use quant::calibration::{Calibrator, CalibrationMethod};
/// use nn_graph::DataType;
///
/// let mut cal = Calibrator::new(CalibrationMethod::MinMax, DataType::U8);
/// cal.observe(&[0.0, 1.0, 5.5]);
/// cal.observe(&[-0.2, 3.3]);
/// let params = cal.finish()?;
/// assert!(params.scale > 0.0);
/// # Ok::<(), quant::calibration::CalibrationError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Calibrator {
    method: CalibrationMethod,
    dtype: DataType,
    values: Vec<f32>,
    samples: usize,
    max_samples: usize,
}

impl Calibrator {
    /// Creates a calibrator targeting the given 8-bit type, with the
    /// approved sample budget.
    #[must_use]
    pub fn new(method: CalibrationMethod, dtype: DataType) -> Self {
        Calibrator {
            method,
            dtype,
            values: Vec::new(),
            samples: 0,
            max_samples: APPROVED_CALIBRATION_SAMPLES,
        }
    }

    /// Overrides the approved sample budget (for experiments on
    /// calibration-set sensitivity).
    #[must_use]
    pub fn with_sample_budget(mut self, max_samples: usize) -> Self {
        self.max_samples = max_samples;
        self
    }

    /// Observes one calibration sample's activations.
    pub fn observe(&mut self, activations: &[f32]) {
        self.samples += 1;
        self.values.extend_from_slice(activations);
    }

    /// Number of samples observed so far.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Finalizes the range estimate into quantization parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CalibrationError::NoSamples`] if nothing was observed, or
    /// [`CalibrationError::TooManySamples`] if the run-rule sample budget
    /// was exceeded (submissions may only use the approved set).
    pub fn finish(mut self) -> Result<QuantParams, CalibrationError> {
        if self.values.is_empty() {
            return Err(CalibrationError::NoSamples);
        }
        if self.samples > self.max_samples {
            return Err(CalibrationError::TooManySamples {
                observed: self.samples,
                approved: self.max_samples,
            });
        }
        let (min, max) = match self.method {
            CalibrationMethod::MinMax => {
                let mut min = f32::INFINITY;
                let mut max = f32::NEG_INFINITY;
                for &v in &self.values {
                    min = min.min(v);
                    max = max.max(v);
                }
                (min, max)
            }
            CalibrationMethod::Percentile(p) => {
                assert!((50.0..=100.0).contains(&p), "percentile must be in [50, 100]");
                self.values
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite activations"));
                let n = self.values.len();
                let tail = (1.0 - p / 100.0) / 2.0;
                let lo_idx = ((n as f64) * tail).floor() as usize;
                let hi_idx = n - 1 - lo_idx.min(n - 1);
                (self.values[lo_idx.min(n - 1)], self.values[hi_idx])
            }
        };
        Ok(QuantParams::from_range(min, max, self.dtype))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::quantization_mse;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn minmax_covers_extremes() {
        let mut c = Calibrator::new(CalibrationMethod::MinMax, DataType::U8);
        c.observe(&[-2.0, 0.5, 7.0]);
        let p = c.finish().unwrap();
        assert!(p.dequantize(p.quantize(7.0)) > 6.9);
        assert!(p.dequantize(p.quantize(-2.0)) < -1.9);
    }

    #[test]
    fn empty_errors() {
        let c = Calibrator::new(CalibrationMethod::MinMax, DataType::U8);
        assert_eq!(c.finish().unwrap_err(), CalibrationError::NoSamples);
    }

    #[test]
    fn sample_budget_enforced() {
        let mut c = Calibrator::new(CalibrationMethod::MinMax, DataType::U8).with_sample_budget(2);
        c.observe(&[1.0]);
        c.observe(&[2.0]);
        c.observe(&[3.0]);
        match c.finish().unwrap_err() {
            CalibrationError::TooManySamples { observed, approved } => {
                assert_eq!(observed, 3);
                assert_eq!(approved, 2);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn approved_budget_is_500() {
        assert_eq!(APPROVED_CALIBRATION_SAMPLES, 500);
        let c = Calibrator::new(CalibrationMethod::MinMax, DataType::U8);
        assert_eq!(c.max_samples, 500);
    }

    #[test]
    fn percentile_beats_minmax_with_outliers() {
        // Gaussian bulk plus a single extreme outlier: percentile
        // calibration should achieve lower round-trip MSE on the bulk.
        let mut rng = StdRng::seed_from_u64(7);
        let mut bulk: Vec<f32> = (0..5000).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        bulk.push(1000.0); // outlier

        let mut mm = Calibrator::new(CalibrationMethod::MinMax, DataType::I8);
        mm.observe(&bulk);
        let p_mm = mm.finish().unwrap();

        let mut pc = Calibrator::new(CalibrationMethod::Percentile(99.0), DataType::I8);
        pc.observe(&bulk);
        let p_pc = pc.finish().unwrap();

        let bulk_only = &bulk[..5000];
        let mse_mm = quantization_mse(&p_mm, bulk_only);
        let mse_pc = quantization_mse(&p_pc, bulk_only);
        assert!(
            mse_pc < mse_mm / 10.0,
            "percentile {mse_pc} should be far below minmax {mse_mm}"
        );
    }

    #[test]
    fn percentile_100_equals_minmax() {
        let data: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let mut a = Calibrator::new(CalibrationMethod::Percentile(100.0), DataType::U8);
        a.observe(&data);
        let mut b = Calibrator::new(CalibrationMethod::MinMax, DataType::U8);
        b.observe(&data);
        let pa = a.finish().unwrap();
        let pb = b.finish().unwrap();
        assert!((pa.scale - pb.scale).abs() < 1e-6);
    }
}
