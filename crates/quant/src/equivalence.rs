//! Model-equivalence checking for the audit process.
//!
//! Paper Section 5.1 / 6.2: submitters may apply mathematically equivalent
//! or approved approximations, but the audit must verify that the deployed
//! graph has not been structurally thinned (channel/filter pruning) or
//! retrained into a different architecture. We check structural invariants
//! between the reference graph and the deployed graph.

use nn_graph::{Graph, OpClass};
use std::fmt;

/// A structural deviation that breaks model equivalence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivalenceViolation {
    /// The deployed graph computes fewer MACs — evidence of pruning or
    /// weight skipping.
    ComplexityReduced {
        /// Reference MAC count.
        reference_macs: u64,
        /// Deployed MAC count.
        deployed_macs: u64,
    },
    /// A weight-bearing layer changed output width — channel pruning.
    ChannelCountChanged {
        /// Layer name in the reference graph.
        layer: String,
        /// Reference channel count.
        reference: usize,
        /// Deployed channel count.
        deployed: usize,
    },
    /// Op-class population changed beyond fusion tolerance.
    OpPopulationChanged {
        /// Op class affected.
        class: OpClass,
        /// Count in the reference.
        reference: usize,
        /// Count in the deployment.
        deployed: usize,
    },
    /// Different input signature (resolution changes alter the task).
    InputChanged,
}

impl fmt::Display for EquivalenceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivalenceViolation::ComplexityReduced { reference_macs, deployed_macs } => write!(
                f,
                "computational complexity reduced: {deployed_macs} MACs vs reference {reference_macs}"
            ),
            EquivalenceViolation::ChannelCountChanged { layer, reference, deployed } => write!(
                f,
                "layer {layer} channel count changed from {reference} to {deployed} (pruning)"
            ),
            EquivalenceViolation::OpPopulationChanged { class, reference, deployed } => write!(
                f,
                "{class} op count changed from {reference} to {deployed}"
            ),
            EquivalenceViolation::InputChanged => write!(f, "input signature changed"),
        }
    }
}

impl std::error::Error for EquivalenceViolation {}

/// Fraction of MAC reduction tolerated as fusion/layout noise.
const MAC_TOLERANCE: f64 = 0.005;

/// Verifies that `deployed` is a legal, mathematically-equivalent
/// deployment of `reference`.
///
/// Numerics changes are always fine (dtype is ignored); structural
/// reductions are not.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_equivalence(reference: &Graph, deployed: &Graph) -> Result<(), EquivalenceViolation> {
    if reference.input().shape != deployed.input().shape {
        return Err(EquivalenceViolation::InputChanged);
    }

    let ref_macs = reference.total_cost().macs;
    let dep_macs = deployed.total_cost().macs;
    if (dep_macs as f64) < ref_macs as f64 * (1.0 - MAC_TOLERANCE) {
        return Err(EquivalenceViolation::ComplexityReduced {
            reference_macs: ref_macs,
            deployed_macs: dep_macs,
        });
    }

    // Weight-bearing layers must keep their widths (anti-pruning). Compare
    // positionally over MAC-bearing nodes.
    let heavy = |g: &Graph| -> Vec<(String, usize)> {
        g.iter()
            .filter(|n| n.cost.weight_elements > 0 && n.cost.macs > 0)
            .map(|n| (n.name.clone(), n.output.shape.channels()))
            .collect()
    };
    let ref_heavy = heavy(reference);
    let dep_heavy = heavy(deployed);
    for ((ref_name, ref_c), (_, dep_c)) in ref_heavy.iter().zip(dep_heavy.iter()) {
        if ref_c != dep_c {
            return Err(EquivalenceViolation::ChannelCountChanged {
                layer: ref_name.clone(),
                reference: *ref_c,
                deployed: *dep_c,
            });
        }
    }

    // MAC-bearing op populations must match exactly (fusing a ReLU is fine,
    // deleting a conv is not).
    let pop = |g: &Graph, class: OpClass| g.iter().filter(|n| n.class() == class).count();
    for class in [
        OpClass::Conv,
        OpClass::DepthwiseConv,
        OpClass::FullyConnected,
        OpClass::MatMul,
    ] {
        let r = pop(reference, class);
        let d = pop(deployed, class);
        if r != d {
            return Err(EquivalenceViolation::OpPopulationChanged {
                class,
                reference: r,
                deployed: d,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn_graph::builder::GraphBuilder;
    use nn_graph::graph::retype;
    use nn_graph::models::ModelId;
    use nn_graph::{Activation, DataType, Shape};

    #[test]
    fn retyped_models_are_equivalent() {
        for m in [ModelId::MobileNetEdgeTpu, ModelId::DeepLabV3Plus] {
            let reference = m.build();
            let deployed = retype(&reference, DataType::I8);
            assert!(check_equivalence(&reference, &deployed).is_ok(), "{m:?}");
        }
    }

    fn toy(channels: usize) -> nn_graph::Graph {
        let mut b = GraphBuilder::new("toy", Shape::nhwc(16, 16, 3), DataType::F32);
        let c = b.conv2d("c1", b.input_id(), 3, 1, channels, Activation::Relu6);
        let _ = b.conv2d("c2", c, 3, 1, 8, Activation::None);
        b.finish()
    }

    #[test]
    fn channel_pruning_detected() {
        let reference = toy(32);
        let pruned = toy(16);
        let err = check_equivalence(&reference, &pruned).unwrap_err();
        assert!(matches!(err, EquivalenceViolation::ComplexityReduced { .. }));
    }

    #[test]
    fn widening_a_layer_is_caught_as_channel_change() {
        // Widening doesn't reduce MACs but still breaks equivalence.
        let reference = toy(32);
        let widened = toy(48);
        let err = check_equivalence(&reference, &widened).unwrap_err();
        assert!(matches!(err, EquivalenceViolation::ChannelCountChanged { .. }));
    }

    #[test]
    fn layer_deletion_detected() {
        let mut b = GraphBuilder::new("toy", Shape::nhwc(16, 16, 3), DataType::F32);
        let big = b.conv2d("c1", b.input_id(), 3, 1, 40, Activation::Relu6);
        let _ = b.conv2d("c2", big, 1, 1, 8, Activation::None);
        let thinned = b.finish();
        let reference = toy(32);
        // Same-ish MACs by construction impossible here; just assert an error.
        assert!(check_equivalence(&reference, &thinned).is_err());
    }

    #[test]
    fn input_resolution_change_detected() {
        let reference = toy(32);
        let mut b = GraphBuilder::new("toy", Shape::nhwc(8, 8, 3), DataType::F32);
        let c = b.conv2d("c1", b.input_id(), 3, 1, 32, Activation::Relu6);
        let _ = b.conv2d("c2", c, 3, 1, 8, Activation::None);
        let small = b.finish();
        assert_eq!(
            check_equivalence(&reference, &small).unwrap_err(),
            EquivalenceViolation::InputChanged
        );
    }

    #[test]
    fn self_equivalence_for_all_models() {
        for m in ModelId::ALL {
            let g = m.build();
            assert!(check_equivalence(&g, &g).is_ok());
        }
    }
}
