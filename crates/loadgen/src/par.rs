//! Order-preserving chunked parallel map.
//!
//! The accuracy pipeline scores thousands of *independent* predictions,
//! but the LoadGen's determinism contract demands the output be
//! indistinguishable from the serial loop. This helper splits the input
//! into one contiguous chunk per worker and reassembles the results in
//! chunk order, so the output vector is element-for-element identical to
//! `items.iter().map(f).collect()` regardless of thread count or
//! scheduling.

/// Maps `f` over `items` on up to `threads` workers, preserving order.
///
/// The slice is split into at most `threads` contiguous chunks (sized
/// within one element of each other); each worker maps its own chunk, and
/// the chunks are concatenated in order. With `threads <= 1`, or a single
/// chunk, this is exactly the serial map — no threads are spawned.
pub fn par_map_chunked<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    // Ceil-divide so every chunk is non-empty and order is trivially
    // preserved by concatenating per-chunk outputs.
    let chunk_len = items.len().div_ceil(threads);
    let mut results: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(|| chunk.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        results = handles.into_iter().map(|h| h.join().expect("par_map worker")).collect();
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_across_thread_counts() {
        let items: Vec<usize> = (0..1001).collect();
        let serial: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64, 2000] {
            assert_eq!(par_map_chunked(&items, threads, |&x| x * 3 + 1), serial, "{threads}");
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map_chunked(&empty, 4, |&x| x).is_empty());
        assert_eq!(par_map_chunked(&[7u8], 4, |&x| x + 1), vec![8]);
    }
}
