//! Order-preserving chunked parallel map, with optional pool telemetry.
//!
//! The accuracy pipeline scores thousands of *independent* predictions,
//! but the LoadGen's determinism contract demands the output be
//! indistinguishable from the serial loop. This helper splits the input
//! into one contiguous chunk per worker and reassembles the results in
//! chunk order, so the output vector is element-for-element identical to
//! `items.iter().map(f).collect()` regardless of thread count or
//! scheduling.
//!
//! [`PoolTelemetry`] is the observation side: a fixed block of per-worker
//! counters (tasks, busy wall-clock, steals) plus queue-depth gauges that
//! any worker-pool implementation — this chunked map, or the harness's
//! work-stealing `par_map` — records into with relaxed atomics. Telemetry
//! is strictly host-side bookkeeping: it never touches simulated state, so
//! instrumented maps return bit-identical results to uninstrumented ones
//! (the tests below hold the output equal element for element).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Worker slots a [`PoolTelemetry`] block tracks individually; workers
/// with larger indices fold into the last slot (pools that wide don't
/// occur — the runner clamps to available cores).
pub const TRACKED_WORKERS: usize = 64;

/// Per-worker pool counters, recorded lock-free with relaxed atomics.
///
/// One process-wide block aggregates every pool pass (the harness keeps a
/// singleton); `snapshot()` gives a consistent-enough point-in-time copy
/// for live scraping, and [`PoolSnapshot::since`] yields the delta
/// attributable to one workload.
#[derive(Debug)]
pub struct PoolTelemetry {
    tasks: [AtomicU64; TRACKED_WORKERS],
    busy_ns: [AtomicU64; TRACKED_WORKERS],
    steals: [AtomicU64; TRACKED_WORKERS],
    calls: AtomicU64,
    queue_depth: AtomicU64,
    max_queue_depth: AtomicU64,
}

impl Default for PoolTelemetry {
    fn default() -> Self {
        PoolTelemetry {
            tasks: std::array::from_fn(|_| AtomicU64::new(0)),
            busy_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            steals: std::array::from_fn(|_| AtomicU64::new(0)),
            calls: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
        }
    }
}

impl PoolTelemetry {
    /// An all-zero telemetry block.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the start of one parallel-map pass.
    pub fn record_call(&self) {
        self.calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed task on `worker`: the wall-clock it spent
    /// busy and whether the task was *stolen* — executed outside the
    /// worker's static fair share of the input (dynamic scheduling moved
    /// it there from a straggling peer's share).
    pub fn record_task(&self, worker: usize, busy: Duration, stolen: bool) {
        let w = worker.min(TRACKED_WORKERS - 1);
        self.tasks[w].fetch_add(1, Ordering::Relaxed);
        self.busy_ns[w].fetch_add(busy.as_nanos().min(u128::from(u64::MAX)) as u64, Ordering::Relaxed);
        if stolen {
            self.steals[w].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Publishes the current ready-queue depth (items not yet claimed by
    /// any worker) and folds it into the high-water mark.
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// The last published ready-queue depth.
    #[must_use]
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every counter. Non-destructive, so live
    /// scrapes and end-of-run reports can both read it; workers that never
    /// ran a task are omitted.
    #[must_use]
    pub fn snapshot(&self) -> PoolSnapshot {
        let workers = (0..TRACKED_WORKERS)
            .filter_map(|w| {
                let tasks = self.tasks[w].load(Ordering::Relaxed);
                (tasks > 0).then(|| WorkerStats {
                    worker: w,
                    tasks,
                    busy_ns: self.busy_ns[w].load(Ordering::Relaxed),
                    steals: self.steals[w].load(Ordering::Relaxed),
                })
            })
            .collect();
        PoolSnapshot {
            workers,
            calls: self.calls.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
        }
    }
}

/// One worker's share of a [`PoolSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Worker index within the pool (0-based).
    pub worker: usize,
    /// Tasks the worker completed.
    pub tasks: u64,
    /// Host wall-clock the worker spent inside tasks (ns).
    pub busy_ns: u64,
    /// Tasks executed outside the worker's static fair share.
    pub steals: u64,
}

/// A point-in-time copy of a [`PoolTelemetry`] block.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PoolSnapshot {
    /// Per-worker counters, ascending by worker index, zero rows omitted.
    pub workers: Vec<WorkerStats>,
    /// Parallel-map passes started.
    pub calls: u64,
    /// Ready-queue depth at snapshot time.
    pub queue_depth: u64,
    /// Deepest ready queue observed.
    pub max_queue_depth: u64,
}

impl PoolSnapshot {
    /// Total tasks across workers.
    #[must_use]
    pub fn total_tasks(&self) -> u64 {
        self.workers.iter().map(|w| w.tasks).sum()
    }

    /// Total steals across workers.
    #[must_use]
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Total busy wall-clock across workers (ns).
    #[must_use]
    pub fn total_busy_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns).sum()
    }

    /// The counter deltas accumulated since `earlier` was taken.
    ///
    /// Per-worker rows are matched by worker index; saturating arithmetic
    /// keeps a stale baseline from underflowing. The queue-depth gauge and
    /// high-water mark carry `self`'s values (they are not accumulative).
    #[must_use]
    pub fn since(&self, earlier: &PoolSnapshot) -> PoolSnapshot {
        let workers = self
            .workers
            .iter()
            .filter_map(|now| {
                let base = earlier.workers.iter().find(|b| b.worker == now.worker);
                let tasks = now.tasks.saturating_sub(base.map_or(0, |b| b.tasks));
                (tasks > 0).then_some(WorkerStats {
                    worker: now.worker,
                    tasks,
                    busy_ns: now.busy_ns.saturating_sub(base.map_or(0, |b| b.busy_ns)),
                    steals: now.steals.saturating_sub(base.map_or(0, |b| b.steals)),
                })
            })
            .collect();
        PoolSnapshot {
            workers,
            calls: self.calls.saturating_sub(earlier.calls),
            queue_depth: self.queue_depth,
            max_queue_depth: self.max_queue_depth,
        }
    }
}

/// Maps `f` over `items` on up to `threads` workers, preserving order.
///
/// The slice is split into at most `threads` contiguous chunks (sized
/// within one element of each other); each worker maps its own chunk, and
/// the chunks are concatenated in order. With `threads <= 1`, or a single
/// chunk, this is exactly the serial map — no threads are spawned.
pub fn par_map_chunked<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_chunked_telemetry(items, threads, None, f)
}

/// [`par_map_chunked`] with telemetry hooks: each worker additionally
/// records its task count and busy wall-clock into `telemetry` (static
/// chunking never steals, so the steal counters stay untouched). The
/// mapped output is element-for-element identical to the un-instrumented
/// call — telemetry is recorded strictly outside `f`.
pub fn par_map_chunked_telemetry<T, R, F>(
    items: &[T],
    threads: usize,
    telemetry: Option<&PoolTelemetry>,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if let Some(t) = telemetry {
        t.record_call();
    }
    if threads <= 1 {
        let started = Instant::now();
        let out: Vec<R> = items.iter().map(f).collect();
        if let Some(t) = telemetry {
            for _ in items {
                t.record_task(0, started.elapsed() / items.len().max(1) as u32, false);
            }
        }
        return out;
    }
    // Ceil-divide so every chunk is non-empty and order is trivially
    // preserved by concatenating per-chunk outputs.
    let chunk_len = items.len().div_ceil(threads);
    let mut results: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(w, chunk)| {
                let f = &f;
                scope.spawn(move || {
                    let started = Instant::now();
                    let out: Vec<R> = chunk.iter().map(f).collect();
                    if let Some(t) = telemetry {
                        let per_task = started.elapsed() / chunk.len().max(1) as u32;
                        for _ in chunk {
                            t.record_task(w, per_task, false);
                        }
                    }
                    out
                })
            })
            .collect();
        results = handles.into_iter().map(|h| h.join().expect("par_map worker")).collect();
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_across_thread_counts() {
        let items: Vec<usize> = (0..1001).collect();
        let serial: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64, 2000] {
            assert_eq!(par_map_chunked(&items, threads, |&x| x * 3 + 1), serial, "{threads}");
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map_chunked(&empty, 4, |&x| x).is_empty());
        assert_eq!(par_map_chunked(&[7u8], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn telemetry_does_not_change_results_or_order() {
        let items: Vec<usize> = (0..777).collect();
        let plain = par_map_chunked(&items, 8, |&x| x * 31 + 7);
        let telemetry = PoolTelemetry::new();
        let hooked = par_map_chunked_telemetry(&items, 8, Some(&telemetry), |&x| x * 31 + 7);
        assert_eq!(plain, hooked, "telemetry must be invisible in the mapped output");

        let snap = telemetry.snapshot();
        assert_eq!(snap.total_tasks(), items.len() as u64, "every item recorded exactly once");
        assert_eq!(snap.total_steals(), 0, "static chunking never steals");
        assert_eq!(snap.calls, 1);
        assert!(snap.workers.len() <= 8);
    }

    #[test]
    fn telemetry_counts_serial_fallbacks_too() {
        let telemetry = PoolTelemetry::new();
        let out = par_map_chunked_telemetry(&[1u8, 2, 3], 1, Some(&telemetry), |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        let snap = telemetry.snapshot();
        assert_eq!(snap.total_tasks(), 3);
        assert_eq!(snap.workers.len(), 1, "serial fallback runs on worker 0");
        assert_eq!(snap.workers[0].worker, 0);
    }

    #[test]
    fn snapshot_delta_is_per_worker() {
        let t = PoolTelemetry::new();
        t.record_call();
        t.record_task(0, Duration::from_nanos(100), false);
        t.record_task(1, Duration::from_nanos(200), true);
        let before = t.snapshot();
        t.record_task(1, Duration::from_nanos(50), true);
        t.record_task(2, Duration::from_nanos(25), false);
        t.set_queue_depth(5);
        t.set_queue_depth(2);
        let delta = t.snapshot().since(&before);
        assert_eq!(delta.total_tasks(), 2);
        assert_eq!(delta.workers.len(), 2, "worker 0 had no new tasks: {delta:?}");
        assert_eq!(delta.workers[0].worker, 1);
        assert_eq!(delta.workers[0].steals, 1);
        assert_eq!(delta.workers[1].worker, 2);
        assert_eq!(delta.queue_depth, 2);
        assert_eq!(delta.max_queue_depth, 5);
    }

    #[test]
    fn wide_pools_fold_into_the_last_slot() {
        let t = PoolTelemetry::new();
        t.record_task(TRACKED_WORKERS + 10, Duration::from_nanos(1), true);
        let snap = t.snapshot();
        assert_eq!(snap.workers.len(), 1);
        assert_eq!(snap.workers[0].worker, TRACKED_WORKERS - 1);
        assert_eq!(snap.total_steals(), 1);
    }
}
