//! Scenarios, modes and test settings (paper Sections 4.2 and 6.1).

use serde::{Deserialize, Serialize};
use soc_sim::time::SimDuration;
use std::fmt;

/// Execution scenario — how the LoadGen offers work to the SUT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// One query at a time, sample size one; the interactive smartphone
    /// pattern. Scored as 90th-percentile latency.
    SingleStream,
    /// All samples delivered in one burst; batched/concurrent processing.
    /// Scored as average throughput.
    Offline,
    /// Poisson arrivals at a fixed offered load with overlapping in-flight
    /// queries; the datacenter-style pattern. Scored as the maximum QPS
    /// whose p90 latency (queueing included) meets the per-model bound.
    Server,
    /// N-wide frames issued at a fixed interval (one query per stream);
    /// frame latency is the maximum over the N lanes. Scored as the
    /// largest stream count whose p90 frame latency fits the interval.
    MultiStream,
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scenario::SingleStream => f.write_str("single-stream"),
            Scenario::Offline => f.write_str("offline"),
            Scenario::Server => f.write_str("server"),
            Scenario::MultiStream => f.write_str("multi-stream"),
        }
    }
}

/// Whether the run measures performance or verifies accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TestMode {
    /// Steady-state performance over the performance sample set.
    Performance,
    /// The entire validation set is fed through the SUT.
    Accuracy,
}

impl fmt::Display for TestMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestMode::Performance => f.write_str("performance"),
            TestMode::Accuracy => f.write_str("accuracy"),
        }
    }
}

/// LoadGen configuration. Defaults encode the paper's run rules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestSettings {
    /// Samples in the performance set / minimum single-stream queries
    /// (run rules: at least 1024).
    pub min_query_count: u64,
    /// Minimum single-stream run time (run rules: 60 seconds).
    pub min_duration: SimDuration,
    /// Samples issued in one offline burst (run rules: 24 576).
    pub offline_sample_count: u64,
    /// Seed for the sample-selection RNG, "precluding unrealistic
    /// data-set-specific optimizations".
    pub seed: u64,
    /// Concurrent device execution slots in the server scenario: how many
    /// dispatched queries may execute simultaneously. Arrivals beyond this
    /// queue FIFO (and accrue queueing delay).
    pub server_concurrency: u64,
    /// Minimum multi-stream frames (each frame is one query per stream).
    pub min_frame_count: u64,
    /// Multi-stream frame-issue interval; also the frame-latency bound a
    /// stream count must meet at p90 to pass.
    pub multi_stream_interval: SimDuration,
    /// Upper bound of the multi-stream stream-count search.
    pub max_streams: u64,
}

impl Default for TestSettings {
    fn default() -> Self {
        TestSettings {
            min_query_count: 1024,
            min_duration: SimDuration::from_secs(60),
            offline_sample_count: 24_576,
            seed: 0x4D4C_5065_7266, // "MLPerf"
            server_concurrency: 2,
            min_frame_count: 270,
            multi_stream_interval: SimDuration::from_millis(50),
            max_streams: 64,
        }
    }
}

impl TestSettings {
    /// Settings scaled down for fast unit tests (NOT rule-compliant; the
    /// submission checker will flag results produced with these).
    #[must_use]
    pub fn smoke_test() -> Self {
        TestSettings {
            min_query_count: 32,
            min_duration: SimDuration::from_millis(50),
            offline_sample_count: 256,
            seed: 7,
            server_concurrency: 2,
            min_frame_count: 8,
            multi_stream_interval: SimDuration::from_millis(50),
            max_streams: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_run_rules() {
        let s = TestSettings::default();
        assert_eq!(s.min_query_count, 1024);
        assert_eq!(s.min_duration, SimDuration::from_secs(60));
        assert_eq!(s.offline_sample_count, 24_576);
        assert!(s.server_concurrency >= 1);
        assert!(s.min_frame_count >= 1);
        assert!(s.multi_stream_interval > SimDuration::ZERO);
        assert!(s.max_streams >= 1);
    }

    #[test]
    fn displays() {
        assert_eq!(Scenario::SingleStream.to_string(), "single-stream");
        assert_eq!(Scenario::Server.to_string(), "server");
        assert_eq!(Scenario::MultiStream.to_string(), "multi-stream");
        assert_eq!(TestMode::Accuracy.to_string(), "accuracy");
    }
}
