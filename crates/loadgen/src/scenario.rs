//! Scenarios, modes and test settings (paper Sections 4.2 and 6.1).

use serde::{Deserialize, Serialize};
use soc_sim::time::SimDuration;
use std::fmt;

/// Execution scenario — how the LoadGen offers work to the SUT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// One query at a time, sample size one; the interactive smartphone
    /// pattern. Scored as 90th-percentile latency.
    SingleStream,
    /// All samples delivered in one burst; batched/concurrent processing.
    /// Scored as average throughput.
    Offline,
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scenario::SingleStream => f.write_str("single-stream"),
            Scenario::Offline => f.write_str("offline"),
        }
    }
}

/// Whether the run measures performance or verifies accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TestMode {
    /// Steady-state performance over the performance sample set.
    Performance,
    /// The entire validation set is fed through the SUT.
    Accuracy,
}

impl fmt::Display for TestMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestMode::Performance => f.write_str("performance"),
            TestMode::Accuracy => f.write_str("accuracy"),
        }
    }
}

/// LoadGen configuration. Defaults encode the paper's run rules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestSettings {
    /// Samples in the performance set / minimum single-stream queries
    /// (run rules: at least 1024).
    pub min_query_count: u64,
    /// Minimum single-stream run time (run rules: 60 seconds).
    pub min_duration: SimDuration,
    /// Samples issued in one offline burst (run rules: 24 576).
    pub offline_sample_count: u64,
    /// Seed for the sample-selection RNG, "precluding unrealistic
    /// data-set-specific optimizations".
    pub seed: u64,
}

impl Default for TestSettings {
    fn default() -> Self {
        TestSettings {
            min_query_count: 1024,
            min_duration: SimDuration::from_secs(60),
            offline_sample_count: 24_576,
            seed: 0x4D4C_5065_7266, // "MLPerf"
        }
    }
}

impl TestSettings {
    /// Settings scaled down for fast unit tests (NOT rule-compliant; the
    /// submission checker will flag results produced with these).
    #[must_use]
    pub fn smoke_test() -> Self {
        TestSettings {
            min_query_count: 32,
            min_duration: SimDuration::from_millis(50),
            offline_sample_count: 256,
            seed: 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_run_rules() {
        let s = TestSettings::default();
        assert_eq!(s.min_query_count, 1024);
        assert_eq!(s.min_duration, SimDuration::from_secs(60));
        assert_eq!(s.offline_sample_count, 24_576);
    }

    #[test]
    fn displays() {
        assert_eq!(Scenario::SingleStream.to_string(), "single-stream");
        assert_eq!(TestMode::Accuracy.to_string(), "accuracy");
    }
}
