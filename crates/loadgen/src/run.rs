//! The LoadGen run loops (paper Section 4).
//!
//! Single-stream: inject one query, wait for completion, record, repeat —
//! until at least `min_query_count` samples AND `min_duration` of simulated
//! time have elapsed. Offline: one burst of `offline_sample_count` samples.
//! Server: Poisson arrivals dispatched through the deterministic
//! discrete-event executor ([`crate::event`]) with up to
//! `server_concurrency` queries executing at once; latency includes
//! queueing delay. Multi-stream: N-wide frames at a fixed interval; frame
//! latency is the max over the N lanes. Accuracy mode feeds the entire
//! validation set. All on the simulated clock.

use crate::event::{EventQueue, PoissonIssuer};
use crate::log::{LogRecord, RunLog};
use crate::scenario::{Scenario, TestMode, TestSettings};
use crate::sut::SystemUnderTest;
use crate::trace::{QuerySpan, RunTrace};
use mobile_metrics::latency::LatencyStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use soc_sim::time::{SimDuration, SimInstant};
use std::collections::VecDeque;

/// Performance-mode result for one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerformanceResult {
    /// Scenario measured.
    pub scenario: Scenario,
    /// Queries issued.
    pub queries: u64,
    /// Total simulated duration.
    pub duration: SimDuration,
    /// Per-query latency statistics. `Some` for single-stream (per-query
    /// completions), server (arrival-to-completion, queueing included) and
    /// multi-stream (per-*frame* latencies — the scored unit); `None` for
    /// offline, which measures one burst — per-sample completion times
    /// don't exist there, and fabricating them from the mean would be
    /// reporting fake percentiles.
    pub latency: Option<LatencyStats>,
    /// Average throughput in samples/second (the offline score).
    pub throughput_fps: f64,
    /// Offered load of a server run (queries/second). `None` for every
    /// other scenario.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub offered_qps: Option<f64>,
    /// Stream count of a multi-stream run. `None` for every other
    /// scenario.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub streams: Option<u64>,
}

impl PerformanceResult {
    /// The scenario's own headline metric: p90 latency (ms) for
    /// single-stream, throughput (FPS) for offline, offered QPS for server
    /// (the search stores its max *passing* QPS here), and the stream
    /// count for multi-stream.
    ///
    /// # Panics
    ///
    /// Panics on a result missing the field its scenario is scored on (the
    /// run loops never produce one).
    #[must_use]
    pub fn score(&self) -> f64 {
        match self.scenario {
            Scenario::SingleStream => self
                .latency
                .as_ref()
                .expect("single-stream runs record per-query latencies")
                .score_ms(),
            Scenario::Offline => self.throughput_fps,
            Scenario::Server => {
                self.offered_qps.expect("server runs record their offered load")
            }
            Scenario::MultiStream => {
                self.streams.expect("multi-stream runs record their stream count") as f64
            }
        }
    }
}

/// Accuracy-mode result: every validation sample's prediction.
#[derive(Debug, Clone)]
pub struct AccuracyResult<R> {
    /// Predictions indexed by dataset sample index.
    pub predictions: Vec<(usize, R)>,
    /// Total simulated duration of the accuracy pass.
    pub duration: SimDuration,
}

/// Selects the performance sample set: `n` indices drawn by the seeded RNG
/// from the dataset — "a seed and random-number generator allows the
/// LoadGen to select samples, precluding unrealistic data-set-specific
/// optimizations".
///
/// The draw is **with replacement**: each of the `n` indices is an
/// independent uniform pick from `0..dataset_len`, so duplicates are
/// expected whenever `n` approaches or exceeds the dataset size (for
/// `n == dataset_len` about `1 - 1/e ≈ 63%` of samples appear at least
/// once). That matches the real LoadGen's behavior — performance queries
/// replay whatever the RNG picks; coverage of every sample is an accuracy-
/// mode concern, not a performance-mode one. Identical `(seed,
/// dataset_len, n)` triples always produce the identical sequence.
///
/// # Panics
///
/// Panics if the dataset is empty.
#[must_use]
pub fn performance_sample_set(seed: u64, dataset_len: usize, n: u64) -> Vec<usize> {
    assert!(dataset_len > 0, "empty dataset");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..dataset_len)).collect()
}

/// Runs the single-stream performance scenario.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn run_single_stream<S: SystemUnderTest>(
    sut: &mut S,
    dataset_len: usize,
    settings: &TestSettings,
    log: &mut RunLog,
) -> PerformanceResult {
    run_single_stream_traced(sut, dataset_len, settings, log, None)
}

/// Runs the single-stream performance scenario with an optional trace
/// sink.
///
/// When `trace` is `Some`, every query's span (issue/complete
/// sim-timestamps, sample index, latency) plus the SUT's telemetry is
/// recorded into it. Tracing is purely observational: the result is
/// bit-identical to [`run_single_stream`] with or without a sink attached
/// (the `parallel_determinism` integration tests enforce this end to end).
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn run_single_stream_traced<S: SystemUnderTest>(
    sut: &mut S,
    dataset_len: usize,
    settings: &TestSettings,
    log: &mut RunLog,
    mut trace: Option<&mut RunTrace>,
) -> PerformanceResult {
    log.start(
        Scenario::SingleStream,
        TestMode::Performance,
        settings.seed,
        sut.description(),
    );
    if let Some(t) = trace.as_deref_mut() {
        t.begin(
            Scenario::SingleStream,
            TestMode::Performance,
            settings.seed,
            sut.description(),
        );
    }
    let samples = performance_sample_set(settings.seed, dataset_len, settings.min_query_count);
    let mut now = SimInstant::EPOCH;
    // At least min_query_count latencies will be recorded; slow-query runs
    // stop right at the count, so this usually avoids every regrowth.
    let mut latencies = Vec::with_capacity(settings.min_query_count as usize);
    let mut queries = 0u64;
    let mut was_throttled = false;
    // Repeat until both the sample count and the minimum duration are met.
    'outer: loop {
        for &s in &samples {
            let (latency, _response) = sut.issue_query(s);
            log.query(now, s, latency);
            // Telemetry is pulled once per query and drives both the trace
            // span and the compliance log's throttle transitions, so traced
            // and untraced runs log byte-identical event streams.
            let telemetry = sut.last_telemetry();
            if let Some(t) = &telemetry {
                if t.is_throttled() != was_throttled {
                    was_throttled = t.is_throttled();
                    log.throttle(now, t.freq_factor, t.temperature_c);
                }
            }
            if let Some(t) = trace.as_deref_mut() {
                t.record_span(QuerySpan {
                    query_index: queries,
                    sample_index: s,
                    issue_ns: now.as_nanos(),
                    dispatch_ns: now.as_nanos(),
                    complete_ns: (now + latency).as_nanos(),
                    latency_ns: latency.as_nanos(),
                    telemetry,
                });
            }
            now += latency;
            latencies.push(latency.as_nanos());
            queries += 1;
            if queries >= settings.min_query_count
                && now.duration_since(SimInstant::EPOCH) >= settings.min_duration
            {
                break 'outer;
            }
        }
    }
    let duration = now.duration_since(SimInstant::EPOCH);
    log.push(LogRecord::TestEnd { queries, duration_ns: duration.as_nanos() });
    PerformanceResult {
        scenario: Scenario::SingleStream,
        queries,
        duration,
        latency: Some(LatencyStats::from_latencies(&latencies)),
        throughput_fps: queries as f64 / duration.as_secs_f64(),
        offered_qps: None,
        streams: None,
    }
}

/// Runs the single-stream performance scenario for K lockstep device
/// lanes, returning one [`PerformanceResult`] per lane.
///
/// Every lane walks the same seeded sample sequence on its own virtual
/// clock; one [`crate::sut::BatchSut::issue_query_lanes`] call advances
/// all in-flight lanes per query step. A lane retires the moment it meets
/// the run rules (`min_query_count` AND `min_duration`), exactly where a
/// scalar run of that lane would have stopped; survivors keep stepping
/// from the next sample. Lane `k`'s result and log are **byte-identical**
/// to [`run_single_stream`] over the equivalent scalar SUT (enforced by
/// `batched_lanes_match_scalar_runs` below and the cross-crate
/// `batch_smoke` golden test).
///
/// # Panics
///
/// Panics if the dataset is empty, the SUT has no lanes, or `logs` does
/// not provide exactly one log per lane.
pub fn run_single_stream_batched<S: crate::sut::BatchSut>(
    sut: &mut S,
    dataset_len: usize,
    settings: &TestSettings,
    logs: &mut [RunLog],
) -> Vec<PerformanceResult> {
    let lanes = sut.lanes();
    assert!(lanes > 0, "batch needs at least one lane");
    assert_eq!(logs.len(), lanes, "one log per lane");
    for (k, log) in logs.iter_mut().enumerate() {
        log.start(
            Scenario::SingleStream,
            TestMode::Performance,
            settings.seed,
            sut.lane_description(k),
        );
    }
    let samples = performance_sample_set(settings.seed, dataset_len, settings.min_query_count);

    /// Per-lane run-loop bookkeeping, identical to the scalar loop's
    /// locals.
    struct Lane {
        now: SimInstant,
        latencies: Vec<u64>,
        queries: u64,
        was_throttled: bool,
    }
    let mut lane_state: Vec<Lane> = (0..lanes)
        .map(|_| Lane {
            now: SimInstant::EPOCH,
            latencies: Vec::with_capacity(settings.min_query_count as usize),
            queries: 0,
            was_throttled: false,
        })
        .collect();
    // active[pos] = original lane id still in flight at SUT position
    // `pos`; retirement removes positions so SUT lanes and this map shift
    // together.
    let mut active: Vec<usize> = (0..lanes).collect();
    let mut step_latencies: Vec<SimDuration> = Vec::with_capacity(lanes);
    let mut finished: Vec<usize> = Vec::new();
    'outer: loop {
        for &s in &samples {
            sut.issue_query_lanes(s, &mut step_latencies);
            debug_assert_eq!(step_latencies.len(), active.len());
            finished.clear();
            for (pos, &id) in active.iter().enumerate() {
                let latency = step_latencies[pos];
                let lane = &mut lane_state[id];
                logs[id].query(lane.now, s, latency);
                if let Some((freq_factor, temperature_c)) = sut.lane_throttle(pos) {
                    let throttled = freq_factor < 1.0;
                    if throttled != lane.was_throttled {
                        lane.was_throttled = throttled;
                        logs[id].throttle(lane.now, freq_factor, temperature_c);
                    }
                }
                lane.now += latency;
                lane.latencies.push(latency.as_nanos());
                lane.queries += 1;
                if lane.queries >= settings.min_query_count
                    && lane.now.duration_since(SimInstant::EPOCH) >= settings.min_duration
                {
                    finished.push(pos);
                }
            }
            // Retire from the highest position down so the lower
            // positions stay valid while lanes shift.
            for &pos in finished.iter().rev() {
                sut.retire_lane(pos);
                active.remove(pos);
            }
            if active.is_empty() {
                break 'outer;
            }
        }
    }
    lane_state
        .into_iter()
        .enumerate()
        .map(|(id, lane)| {
            let duration = lane.now.duration_since(SimInstant::EPOCH);
            logs[id].push(LogRecord::TestEnd { queries: lane.queries, duration_ns: duration.as_nanos() });
            PerformanceResult {
                scenario: Scenario::SingleStream,
                queries: lane.queries,
                duration,
                latency: Some(LatencyStats::from_latencies(&lane.latencies)),
                throughput_fps: lane.queries as f64 / duration.as_secs_f64(),
                offered_qps: None,
                streams: None,
            }
        })
        .collect()
}

/// Runs the offline performance scenario: one burst.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn run_offline_scenario<S: SystemUnderTest>(
    sut: &mut S,
    dataset_len: usize,
    settings: &TestSettings,
    log: &mut RunLog,
) -> PerformanceResult {
    run_offline_scenario_traced(sut, dataset_len, settings, log, None)
}

/// Runs the offline performance scenario with an optional trace sink.
///
/// Offline observes one burst, so the trace records a single
/// [`crate::trace::BurstSpan`] covering the whole throughput window
/// (`end - start` equals the reported duration; `samples` equals the
/// reported query count). Tracing never perturbs the result.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn run_offline_scenario_traced<S: SystemUnderTest>(
    sut: &mut S,
    dataset_len: usize,
    settings: &TestSettings,
    log: &mut RunLog,
    trace: Option<&mut RunTrace>,
) -> PerformanceResult {
    log.start(
        Scenario::Offline,
        TestMode::Performance,
        settings.seed,
        sut.description(),
    );
    let samples =
        performance_sample_set(settings.seed, dataset_len, settings.offline_sample_count);
    let (duration, responses) = sut.issue_batch(&samples);
    assert_eq!(responses.len(), samples.len(), "SUT must answer every sample");
    if let Some(t) = trace {
        t.begin(
            Scenario::Offline,
            TestMode::Performance,
            settings.seed,
            sut.description(),
        );
        t.record_burst(0, duration.as_nanos(), samples.len() as u64);
    }
    log.push(LogRecord::BurstComplete {
        samples: samples.len() as u64,
        duration_ns: duration.as_nanos(),
    });
    log.push(LogRecord::TestEnd {
        queries: samples.len() as u64,
        duration_ns: duration.as_nanos(),
    });
    // Offline observes one burst completion, not per-sample completions:
    // there are no real latencies to aggregate, so none are reported
    // (previously this fabricated identical "latencies" from the mean,
    // which produced fictional percentiles).
    PerformanceResult {
        scenario: Scenario::Offline,
        queries: samples.len() as u64,
        duration,
        latency: None,
        throughput_fps: samples.len() as f64 / duration.as_secs_f64(),
        offered_qps: None,
        streams: None,
    }
}

/// Salt XOR-ed into the test seed for the server arrival RNG, so arrival
/// times and sample selection draw from independent streams of the same
/// published seed.
const SERVER_ARRIVAL_SALT: u64 = 0x5345_5256; // "SERV"

/// Bisection steps of the server max-QPS search: enough to pin the knee to
/// ~0.1% of the search range, and a fixed count so every search is
/// deterministic.
const QPS_SEARCH_ITERS: u32 = 10;

/// Runs the server performance scenario at a fixed offered load.
///
/// # Panics
///
/// Panics if the dataset is empty or `qps` is not strictly positive.
pub fn run_server<S: SystemUnderTest>(
    sut: &mut S,
    dataset_len: usize,
    qps: f64,
    settings: &TestSettings,
    log: &mut RunLog,
) -> PerformanceResult {
    run_server_traced(sut, dataset_len, qps, settings, log, None)
}

/// Runs the server performance scenario with an optional trace sink.
///
/// Queries arrive at Poisson-distributed instants (rate `qps`, seeded from
/// the test seed) and are dispatched through the deterministic
/// discrete-event executor: at most `server_concurrency` queries execute
/// at once, later arrivals queue FIFO, and each query's reported latency
/// is *arrival to completion* — queueing delay included. The device state
/// advances in dispatch order (a deterministic total order by the event
/// queue's time-then-sequence tie-break), and idle gaps between dispatches
/// are reported to the SUT so thermal models cool down exactly as they
/// heat up under load. Tracing never perturbs the result.
///
/// # Panics
///
/// Panics if the dataset is empty or `qps` is not strictly positive.
pub fn run_server_traced<S: SystemUnderTest>(
    sut: &mut S,
    dataset_len: usize,
    qps: f64,
    settings: &TestSettings,
    log: &mut RunLog,
    mut trace: Option<&mut RunTrace>,
) -> PerformanceResult {
    assert!(dataset_len > 0, "empty dataset");
    let concurrency = settings.server_concurrency.max(1) as usize;
    log.start(Scenario::Server, TestMode::Performance, settings.seed, sut.description());
    if let Some(t) = trace.as_deref_mut() {
        t.begin(Scenario::Server, TestMode::Performance, settings.seed, sut.description());
    }
    let mut issuer = PoissonIssuer::new(settings.seed ^ SERVER_ARRIVAL_SALT, qps);
    let arrivals = issuer.arrivals(settings.min_query_count.max(1), settings.min_duration);
    let n = arrivals.len();
    let samples = performance_sample_set(settings.seed, dataset_len, n as u64);

    /// Events of the server simulation.
    enum Ev {
        /// Query `i` arrives (enters the FIFO).
        Arrive(usize),
        /// Query `i` finishes executing (frees a device slot).
        Complete(usize),
    }
    let mut events = EventQueue::new();
    for (i, &at) in arrivals.iter().enumerate() {
        events.schedule(at, Ev::Arrive(i));
    }
    let mut waiting: VecDeque<usize> = VecDeque::new();
    let mut executing = 0usize;
    let mut idle_since = Some(SimInstant::EPOCH);
    let mut latencies = Vec::with_capacity(n);
    let mut was_throttled = false;
    let mut end = SimInstant::EPOCH;
    let mut dispatched = 0u64;
    while let Some((now, _seq, ev)) = events.pop() {
        match ev {
            Ev::Arrive(i) => waiting.push_back(i),
            Ev::Complete(i) => {
                executing -= 1;
                let latency = now.duration_since(arrivals[i]);
                log.query(arrivals[i], samples[i], latency);
                latencies.push(latency.as_nanos());
                end = now;
            }
        }
        // Fill free device slots from the FIFO.
        while executing < concurrency {
            let Some(i) = waiting.pop_front() else { break };
            if executing == 0 {
                if let Some(since) = idle_since.take() {
                    let gap = now.duration_since(since);
                    if gap > SimDuration::ZERO {
                        sut.idle(gap);
                    }
                }
            }
            let (service, _response) = sut.issue_query(samples[i]);
            let telemetry = sut.last_telemetry();
            if let Some(t) = &telemetry {
                if t.is_throttled() != was_throttled {
                    was_throttled = t.is_throttled();
                    log.throttle(now, t.freq_factor, t.temperature_c);
                }
            }
            if let Some(t) = trace.as_deref_mut() {
                let complete = now + service;
                t.record_span(QuerySpan {
                    query_index: dispatched,
                    sample_index: samples[i],
                    issue_ns: arrivals[i].as_nanos(),
                    dispatch_ns: now.as_nanos(),
                    complete_ns: complete.as_nanos(),
                    latency_ns: complete.duration_since(arrivals[i]).as_nanos(),
                    telemetry,
                });
            }
            dispatched += 1;
            events.schedule(now + service, Ev::Complete(i));
            executing += 1;
        }
        if executing == 0 && waiting.is_empty() && idle_since.is_none() {
            idle_since = Some(now);
        }
    }
    let duration = end.duration_since(SimInstant::EPOCH);
    log.push(LogRecord::TestEnd { queries: n as u64, duration_ns: duration.as_nanos() });
    PerformanceResult {
        scenario: Scenario::Server,
        queries: n as u64,
        duration,
        latency: Some(LatencyStats::from_latencies(&latencies)),
        throughput_fps: n as f64 / duration.as_secs_f64(),
        offered_qps: Some(qps),
        streams: None,
    }
}

/// Outcome of the server max-QPS binary search.
#[derive(Debug, Clone)]
pub struct QpsSearch {
    /// Largest probed offered load whose p90 latency met the bound; `0.0`
    /// if every probe failed (then `result`/`log` hold the last failing
    /// probe so there is still a deterministic artifact to inspect).
    pub max_passing_qps: f64,
    /// The latency bound the search held probes to.
    pub target_latency: SimDuration,
    /// Probe runs executed.
    pub probes: u64,
    /// The winning probe's result (its `offered_qps` is the headline).
    pub result: PerformanceResult,
    /// The winning probe's unedited run log.
    pub log: RunLog,
}

/// Binary-searches the maximum offered load (QPS) whose p90 latency —
/// queueing included — stays within `target_latency`, over `(0, max_qps]`.
///
/// Each probe runs [`run_server`] against a **fresh** SUT from `make_sut`
/// (thermal state must not leak between probes, or the search would not be
/// monotone or reproducible). A fixed [`QPS_SEARCH_ITERS`] bisection steps
/// keep the whole search a pure function of its inputs.
///
/// # Panics
///
/// Panics if the dataset is empty, `max_qps` is not strictly positive, or
/// a probe produces no latency statistics.
pub fn find_max_qps<S, F>(
    mut make_sut: F,
    dataset_len: usize,
    settings: &TestSettings,
    target_latency: SimDuration,
    max_qps: f64,
) -> QpsSearch
where
    S: SystemUnderTest,
    F: FnMut() -> S,
{
    assert!(max_qps > 0.0 && max_qps.is_finite(), "search bound must be positive");
    let mut lo = 0.0f64;
    let mut hi = max_qps;
    let mut best: Option<(f64, PerformanceResult, RunLog)> = None;
    let mut last_fail: Option<(PerformanceResult, RunLog)> = None;
    let mut probes = 0u64;
    for _ in 0..QPS_SEARCH_ITERS {
        let qps = 0.5 * (lo + hi);
        let mut sut = make_sut();
        let mut log = RunLog::new();
        let result = run_server(&mut sut, dataset_len, qps, settings, &mut log);
        probes += 1;
        let p90 = result.latency.as_ref().expect("server runs record latencies").p90_ns;
        if p90 <= target_latency.as_nanos() {
            lo = qps;
            best = Some((qps, result, log));
        } else {
            hi = qps;
            last_fail = Some((result, log));
        }
    }
    match best {
        Some((qps, result, log)) => {
            QpsSearch { max_passing_qps: qps, target_latency, probes, result, log }
        }
        None => {
            let (result, log) = last_fail.expect("at least one probe runs");
            QpsSearch { max_passing_qps: 0.0, target_latency, probes, result, log }
        }
    }
}

/// Runs the multi-stream performance scenario at a fixed stream count.
///
/// # Panics
///
/// Panics if the dataset is empty or `streams` is zero.
pub fn run_multi_stream<S: SystemUnderTest>(
    sut: &mut S,
    dataset_len: usize,
    streams: u64,
    settings: &TestSettings,
    log: &mut RunLog,
) -> PerformanceResult {
    run_multi_stream_traced(sut, dataset_len, streams, settings, log, None)
}

/// Runs the multi-stream performance scenario with an optional trace sink.
///
/// Frames of `streams` queries are issued every `multi_stream_interval`,
/// on schedule regardless of overrun, through the discrete-event executor.
/// All lanes of a frame dispatch at the frame instant (the accelerator
/// processes the N streams concurrently); the frame's latency is the
/// **maximum** over its lanes, and those frame latencies are the
/// statistics the scenario is scored on. The run covers enough frames to
/// satisfy both `min_frame_count` and `min_duration` of offered load.
/// Device idle gaps between a frame's last completion and the next frame
/// are reported to the SUT for thermal cooldown. Tracing never perturbs
/// the result.
///
/// # Panics
///
/// Panics if the dataset is empty or `streams` is zero.
pub fn run_multi_stream_traced<S: SystemUnderTest>(
    sut: &mut S,
    dataset_len: usize,
    streams: u64,
    settings: &TestSettings,
    log: &mut RunLog,
    mut trace: Option<&mut RunTrace>,
) -> PerformanceResult {
    assert!(dataset_len > 0, "empty dataset");
    assert!(streams >= 1, "multi-stream needs at least one stream");
    let interval = settings.multi_stream_interval;
    assert!(interval > SimDuration::ZERO, "frame interval must be positive");
    log.start(Scenario::MultiStream, TestMode::Performance, settings.seed, sut.description());
    if let Some(t) = trace.as_deref_mut() {
        t.begin(Scenario::MultiStream, TestMode::Performance, settings.seed, sut.description());
    }
    let by_duration = settings.min_duration.as_nanos().div_ceil(interval.as_nanos());
    let frames = settings.min_frame_count.max(1).max(by_duration);
    let samples = performance_sample_set(settings.seed, dataset_len, frames * streams);

    /// Events of the multi-stream simulation.
    enum Ev {
        /// Frame `k` is issued (all lanes dispatch).
        Frame(u64),
        /// A frame's slowest lane finished.
        FrameDone,
    }
    let mut events = EventQueue::new();
    for k in 0..frames {
        let at = SimInstant::EPOCH + SimDuration::from_nanos(k * interval.as_nanos());
        events.schedule(at, Ev::Frame(k));
    }
    let mut busy_until = SimInstant::EPOCH;
    let mut frame_latencies = Vec::with_capacity(frames as usize);
    let mut was_throttled = false;
    let mut end = SimInstant::EPOCH;
    let mut query_index = 0u64;
    while let Some((now, _seq, ev)) = events.pop() {
        match ev {
            Ev::Frame(k) => {
                if now > busy_until {
                    let gap = now.duration_since(busy_until);
                    if gap > SimDuration::ZERO {
                        sut.idle(gap);
                    }
                }
                let mut frame_latency = SimDuration::ZERO;
                for lane in 0..streams {
                    let s = samples[(k * streams + lane) as usize];
                    let (latency, _response) = sut.issue_query(s);
                    log.query(now, s, latency);
                    let telemetry = sut.last_telemetry();
                    if let Some(t) = &telemetry {
                        if t.is_throttled() != was_throttled {
                            was_throttled = t.is_throttled();
                            log.throttle(now, t.freq_factor, t.temperature_c);
                        }
                    }
                    if let Some(t) = trace.as_deref_mut() {
                        t.record_span(QuerySpan {
                            query_index,
                            sample_index: s,
                            issue_ns: now.as_nanos(),
                            dispatch_ns: now.as_nanos(),
                            complete_ns: (now + latency).as_nanos(),
                            latency_ns: latency.as_nanos(),
                            telemetry,
                        });
                    }
                    query_index += 1;
                    if latency > frame_latency {
                        frame_latency = latency;
                    }
                }
                log.frame(k, streams, frame_latency);
                frame_latencies.push(frame_latency.as_nanos());
                let done = now + frame_latency;
                if done > busy_until {
                    busy_until = done;
                }
                events.schedule(done, Ev::FrameDone);
            }
            Ev::FrameDone => {
                if now > end {
                    end = now;
                }
            }
        }
    }
    // The run spans the full offered-load window even when the last frame
    // finishes early.
    let offered = SimDuration::from_nanos(frames * interval.as_nanos());
    let mut duration = end.duration_since(SimInstant::EPOCH);
    if offered > duration {
        duration = offered;
    }
    let queries = frames * streams;
    log.push(LogRecord::TestEnd { queries, duration_ns: duration.as_nanos() });
    PerformanceResult {
        scenario: Scenario::MultiStream,
        queries,
        duration,
        latency: Some(LatencyStats::from_latencies(&frame_latencies)),
        throughput_fps: queries as f64 / duration.as_secs_f64(),
        offered_qps: None,
        streams: Some(streams),
    }
}

/// Outcome of the multi-stream stream-count binary search.
#[derive(Debug, Clone)]
pub struct StreamSearch {
    /// Largest stream count whose p90 frame latency fits the interval;
    /// `0` if even one stream misses it (then `result`/`log` hold the
    /// failing one-stream run).
    pub streams: u64,
    /// The frame interval the search held probes to.
    pub interval: SimDuration,
    /// Probe runs executed.
    pub probes: u64,
    /// The winning probe's result (its `streams` is the headline).
    pub result: PerformanceResult,
    /// The winning probe's unedited run log.
    pub log: RunLog,
}

/// Binary-searches the largest stream count `N` in `[1, max_streams]`
/// whose p90 frame latency stays within the frame interval.
///
/// Each probe runs [`run_multi_stream`] against a **fresh** SUT from
/// `make_sut` so thermal state cannot leak between probes; the integer
/// bisection keeps the probe sequence a pure function of its inputs.
///
/// # Panics
///
/// Panics if the dataset is empty or a probe produces no latency
/// statistics.
pub fn find_max_streams<S, F>(
    mut make_sut: F,
    dataset_len: usize,
    settings: &TestSettings,
) -> StreamSearch
where
    S: SystemUnderTest,
    F: FnMut() -> S,
{
    let interval = settings.multi_stream_interval;
    let mut probes = 0u64;
    let probe = |make_sut: &mut F, n: u64, probes: &mut u64| {
        let mut sut = make_sut();
        let mut log = RunLog::new();
        let result = run_multi_stream(&mut sut, dataset_len, n, settings, &mut log);
        *probes += 1;
        let pass = result.latency.as_ref().expect("multi-stream runs record frame latencies").p90_ns
            <= interval.as_nanos();
        (pass, result, log)
    };
    let (pass1, r1, log1) = probe(&mut make_sut, 1, &mut probes);
    if !pass1 {
        return StreamSearch { streams: 0, interval, probes, result: r1, log: log1 };
    }
    let max = settings.max_streams.max(1);
    if max == 1 {
        return StreamSearch { streams: 1, interval, probes, result: r1, log: log1 };
    }
    let (pass_max, r_max, log_max) = probe(&mut make_sut, max, &mut probes);
    if pass_max {
        return StreamSearch { streams: max, interval, probes, result: r_max, log: log_max };
    }
    // Invariant: lo passes, hi fails.
    let mut lo = 1u64;
    let mut hi = max;
    let mut best = (r1, log1);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let (pass, result, log) = probe(&mut make_sut, mid, &mut probes);
        if pass {
            lo = mid;
            best = (result, log);
        } else {
            hi = mid;
        }
    }
    StreamSearch { streams: lo, interval, probes, result: best.0, log: best.1 }
}

/// Runs accuracy mode: the entire validation set, each sample once.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn run_accuracy<S: SystemUnderTest>(
    sut: &mut S,
    dataset_len: usize,
    settings: &TestSettings,
    log: &mut RunLog,
) -> AccuracyResult<S::Response> {
    assert!(dataset_len > 0, "empty dataset");
    log.start(
        Scenario::SingleStream,
        TestMode::Accuracy,
        settings.seed,
        sut.description(),
    );
    let mut now = SimInstant::EPOCH;
    let mut predictions = Vec::with_capacity(dataset_len);
    for s in 0..dataset_len {
        let (latency, response) = sut.issue_query(s);
        now += latency;
        predictions.push((s, response));
    }
    let duration = now.duration_since(SimInstant::EPOCH);
    log.push(LogRecord::TestEnd { queries: dataset_len as u64, duration_ns: duration.as_nanos() });
    AccuracyResult { predictions, duration }
}

/// The device-advance half of [`run_accuracy`]: walks the whole
/// validation set through [`SplitQuery::advance_query`], producing the
/// same state evolution, log records and duration as the full accuracy
/// run — without synthesizing a single prediction.
///
/// Callers that already know the accuracy outcome (e.g. a sweep cache
/// that has scored this exact `(dataset, quality)` pair before) use this
/// to keep the thermal trajectory and the unedited log byte-identical to
/// a from-scratch run.
///
/// [`SplitQuery::advance_query`]: crate::sut::SplitQuery::advance_query
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn run_accuracy_advance<S: crate::sut::SplitQuery>(
    sut: &mut S,
    dataset_len: usize,
    settings: &TestSettings,
    log: &mut RunLog,
) -> SimDuration {
    assert!(dataset_len > 0, "empty dataset");
    log.start(
        Scenario::SingleStream,
        TestMode::Accuracy,
        settings.seed,
        sut.description(),
    );
    let mut now = SimInstant::EPOCH;
    for s in 0..dataset_len {
        now += sut.advance_query(s);
    }
    let duration = now.duration_since(SimInstant::EPOCH);
    log.push(LogRecord::TestEnd { queries: dataset_len as u64, duration_ns: duration.as_nanos() });
    duration
}

/// [`run_accuracy`] with the prediction work spread over `threads`
/// workers.
///
/// The device advance stays serial — each query's latency depends on the
/// state the previous one left behind — while the predictions, pure
/// per-sample functions under the [`SplitQuery`] contract, run through an
/// order-preserving chunked [`crate::par::par_map_chunked`]. The returned
/// result and the log records are **byte-identical** to the serial
/// [`run_accuracy`] for any thread count (enforced by
/// `accuracy_parallel_is_byte_identical_to_serial` below).
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn run_accuracy_parallel<S>(
    sut: &mut S,
    dataset_len: usize,
    settings: &TestSettings,
    log: &mut RunLog,
    threads: usize,
) -> AccuracyResult<S::Response>
where
    S: crate::sut::SplitQuery + Sync,
    S::Response: Send,
{
    let duration = run_accuracy_advance(sut, dataset_len, settings, log);
    let samples: Vec<usize> = (0..dataset_len).collect();
    let responses = crate::par::par_map_chunked(&samples, threads, |&s| sut.predict(s));
    let predictions = samples.into_iter().zip(responses).collect();
    AccuracyResult { predictions, duration }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sut::ConstantSut;

    #[test]
    fn single_stream_meets_min_duration() {
        // 100 ms per query, 60 s minimum -> at least 600 queries even
        // though min_query_count is 1024... both constraints bind.
        let mut sut = ConstantSut::new(SimDuration::from_millis(100));
        let mut log = RunLog::new();
        let settings = TestSettings::default();
        let r = run_single_stream(&mut sut, 5000, &settings, &mut log);
        assert!(r.queries >= 1024);
        assert!(r.duration >= SimDuration::from_secs(60));
        // 1024 queries at 100ms = 102.4s > 60s: count binds.
        assert_eq!(r.queries, 1024);
    }

    #[test]
    fn single_stream_extends_past_count_for_duration() {
        // 1 ms per query: 1024 queries = 1.024 s << 60 s, so the LoadGen
        // keeps issuing until 60 s pass.
        let mut sut = ConstantSut::new(SimDuration::from_millis(1));
        let mut log = RunLog::new();
        let settings = TestSettings::default();
        let r = run_single_stream(&mut sut, 5000, &settings, &mut log);
        assert!(r.queries >= 60_000, "queries {}", r.queries);
        assert!(r.duration >= SimDuration::from_secs(60));
    }

    #[test]
    fn single_stream_p90_of_constant_is_constant() {
        let mut sut = ConstantSut::new(SimDuration::from_millis(7));
        let mut log = RunLog::new();
        let r = run_single_stream(&mut sut, 100, &TestSettings::smoke_test(), &mut log);
        assert_eq!(r.latency.as_ref().unwrap().p90_ns, 7_000_000);
        assert!((r.score() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn offline_issues_24576() {
        let mut sut = ConstantSut::new(SimDuration::from_micros(100));
        let mut log = RunLog::new();
        let r = run_offline_scenario(&mut sut, 50_000, &TestSettings::default(), &mut log);
        assert_eq!(r.queries, 24_576);
        assert_eq!(sut.queries_served, 24_576);
        // 100us per sample sequentially -> 10k fps.
        assert!((r.throughput_fps - 10_000.0).abs() < 1.0);
        // Offline has no per-sample completion times to report.
        assert!(r.latency.is_none());
        assert!((r.score() - r.throughput_fps).abs() < 1e-12);
    }

    #[test]
    fn accuracy_covers_entire_dataset() {
        let mut sut = ConstantSut::new(SimDuration::from_micros(10));
        let mut log = RunLog::new();
        let r = run_accuracy(&mut sut, 1234, &TestSettings::smoke_test(), &mut log);
        assert_eq!(r.predictions.len(), 1234);
        // Every sample exactly once, in order.
        assert!(r.predictions.iter().enumerate().all(|(i, (s, _))| i == *s));
    }

    #[test]
    fn sample_selection_is_seeded() {
        let a = performance_sample_set(1, 1000, 64);
        let b = performance_sample_set(1, 1000, 64);
        let c = performance_sample_set(2, 1000, 64);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&i| i < 1000));
    }

    #[test]
    fn log_records_every_query() {
        let mut sut = ConstantSut::new(SimDuration::from_millis(2));
        let mut log = RunLog::new();
        let r = run_single_stream(&mut sut, 100, &TestSettings::smoke_test(), &mut log);
        assert_eq!(log.latencies_ns().len() as u64, r.queries);
    }

    /// A stateful split SUT: latency grows with every query served (so any
    /// reordering of the advance loop desynchronizes the duration), while
    /// the prediction is a pure per-sample function.
    struct WarmingSut {
        queries_served: u64,
    }

    impl crate::sut::SystemUnderTest for WarmingSut {
        type Response = u64;
        fn issue_query(&mut self, sample_index: usize) -> (SimDuration, u64) {
            use crate::sut::SplitQuery;
            let latency = self.advance_query(sample_index);
            (latency, self.predict(sample_index))
        }
        fn description(&self) -> String {
            "warming split SUT".to_owned()
        }
    }

    impl crate::sut::SplitQuery for WarmingSut {
        fn advance_query(&mut self, _sample_index: usize) -> SimDuration {
            self.queries_served += 1;
            SimDuration::from_micros(100 + self.queries_served * 3)
        }
        fn predict(&self, sample_index: usize) -> u64 {
            (sample_index as u64).wrapping_mul(0x9E37_79B9).rotate_left(13)
        }
    }

    #[test]
    fn batched_lanes_match_scalar_runs() {
        // Heterogeneous lane latencies so lanes retire at different
        // times: 7 ms lanes stop at the query count, the 40 us lane has
        // to keep going until min_duration. Every lane must be
        // byte-identical to its own scalar run.
        let latencies = [
            SimDuration::from_millis(7),
            SimDuration::from_micros(40),
            SimDuration::from_millis(7),
            SimDuration::from_millis(2),
        ];
        let settings = TestSettings::smoke_test();
        let mut batch = crate::sut::ConstantBatchSut::new(&latencies);
        let mut logs: Vec<RunLog> = (0..latencies.len()).map(|_| RunLog::new()).collect();
        let results = run_single_stream_batched(&mut batch, 100, &settings, &mut logs);
        assert!(batch.suts.is_empty(), "every lane must retire");
        for (k, &latency) in latencies.iter().enumerate() {
            let mut scalar = ConstantSut::new(latency);
            let mut scalar_log = RunLog::new();
            let reference = run_single_stream(&mut scalar, 100, &settings, &mut scalar_log);
            assert_eq!(reference, results[k], "lane {k} diverged");
            assert_eq!(
                serde_json::to_string(&scalar_log).unwrap(),
                serde_json::to_string(&logs[k]).unwrap(),
                "lane {k} log must be byte-identical to its scalar run"
            );
        }
    }

    #[test]
    fn batched_single_lane_matches_scalar() {
        let settings = TestSettings::smoke_test();
        let mut batch = crate::sut::ConstantBatchSut::new(&[SimDuration::from_millis(3)]);
        let mut logs = vec![RunLog::new()];
        let results = run_single_stream_batched(&mut batch, 64, &settings, &mut logs);
        let mut scalar = ConstantSut::new(SimDuration::from_millis(3));
        let mut scalar_log = RunLog::new();
        let reference = run_single_stream(&mut scalar, 64, &settings, &mut scalar_log);
        assert_eq!(vec![reference], results);
    }

    /// A SUT whose latency warms with every query and cools during idle
    /// gaps — a cheap stand-in for the DVFS/thermal model, so the
    /// queueing-heat interaction is testable inside the loadgen crate.
    struct ThermalToySut {
        /// Accumulated "heat" in per-query nanoseconds of extra latency.
        heat_ns: u64,
        /// Base service time.
        base: SimDuration,
        /// Heat added per query (ns).
        heat_per_query_ns: u64,
        /// Total idle time reported by the run loop.
        idle_total: SimDuration,
    }

    impl ThermalToySut {
        fn new(base: SimDuration, heat_per_query_ns: u64) -> Self {
            ThermalToySut { heat_ns: 0, base, heat_per_query_ns, idle_total: SimDuration::ZERO }
        }
    }

    impl crate::sut::SystemUnderTest for ThermalToySut {
        type Response = usize;
        fn issue_query(&mut self, sample_index: usize) -> (SimDuration, usize) {
            let latency = self.base + SimDuration::from_nanos(self.heat_ns);
            self.heat_ns += self.heat_per_query_ns;
            (latency, sample_index)
        }
        fn idle(&mut self, dt: SimDuration) {
            self.idle_total += dt;
            // Cool 1 heat-ns per idle microsecond.
            self.heat_ns = self.heat_ns.saturating_sub(dt.as_nanos() / 1000);
        }
        fn description(&self) -> String {
            "thermal toy SUT".to_owned()
        }
    }

    #[test]
    fn server_low_load_latency_is_service_time() {
        // 1 ms service at 10 qps (100 ms mean gaps): queries almost never
        // queue, so arrival-to-completion latency equals the service time.
        let mut sut = ConstantSut::new(SimDuration::from_millis(1));
        let mut log = RunLog::new();
        let settings = TestSettings::smoke_test();
        let r = run_server(&mut sut, 100, 10.0, &settings, &mut log);
        assert_eq!(r.scenario, Scenario::Server);
        assert!(r.queries >= settings.min_query_count);
        assert_eq!(r.offered_qps, Some(10.0));
        let stats = r.latency.as_ref().unwrap();
        assert_eq!(stats.p50_ns, 1_000_000, "no queueing at 1% utilization");
        assert!((r.score() - 10.0).abs() < 1e-12, "server score is the offered load");
    }

    #[test]
    fn server_saturation_adds_queueing_delay() {
        // 10 ms service, concurrency 2 -> capacity 200 qps. Offered 400
        // qps: the backlog grows and p90 latency far exceeds the service
        // time.
        let mut sut = ConstantSut::new(SimDuration::from_millis(10));
        let mut log = RunLog::new();
        let settings = TestSettings::smoke_test();
        let r = run_server(&mut sut, 100, 400.0, &settings, &mut log);
        let stats = r.latency.as_ref().unwrap();
        assert!(
            stats.p90_ns > 20_000_000,
            "saturated server must show queueing delay, p90 {} ns",
            stats.p90_ns
        );
        // Every arrival was eventually served and logged.
        assert_eq!(log.latencies_ns().len() as u64, r.queries);
    }

    #[test]
    fn server_same_seed_is_byte_identical() {
        let settings = TestSettings::smoke_test();
        let run = || {
            let mut sut = ThermalToySut::new(SimDuration::from_millis(2), 40_000);
            let mut log = RunLog::new();
            let r = run_server(&mut sut, 64, 150.0, &settings, &mut log);
            (r, log.to_json_lines())
        };
        let (ra, la) = run();
        let (rb, lb) = run();
        assert_eq!(ra, rb);
        assert_eq!(la, lb, "same-seed server logs must be byte-identical");
        let mut other = settings.clone();
        other.seed = 8;
        let mut sut = ThermalToySut::new(SimDuration::from_millis(2), 40_000);
        let mut log = RunLog::new();
        let rc = run_server(&mut sut, 64, 150.0, &other, &mut log);
        assert_ne!(ra.latency, rc.latency, "different seed, different arrivals");
    }

    #[test]
    fn server_traced_matches_untraced_and_respects_concurrency() {
        let settings = TestSettings::smoke_test();
        let mut sut = ConstantSut::new(SimDuration::from_millis(5));
        let mut log = RunLog::new();
        let untraced = run_server(&mut sut, 64, 300.0, &settings, &mut log);
        let mut sut2 = ConstantSut::new(SimDuration::from_millis(5));
        let mut log2 = RunLog::new();
        let mut trace = RunTrace::new();
        let traced = run_server_traced(&mut sut2, 64, 300.0, &settings, &mut log2, Some(&mut trace));
        assert_eq!(untraced, traced);
        assert_eq!(log.to_json_lines(), log2.to_json_lines());
        trace.validate().unwrap();
        assert_eq!(trace.span_count(), traced.queries);
        // At 300 qps over 5 ms service the device saturates: both slots
        // are used, and never more than the scenario bound.
        assert_eq!(trace.max_concurrent(), settings.server_concurrency);
    }

    #[test]
    fn server_idle_gaps_cool_the_device() {
        // At 5 qps (200 ms gaps) a 1 ms-service device idles ~99% of the
        // time; the run loop must report those gaps.
        let settings = TestSettings::smoke_test();
        let mut sut = ThermalToySut::new(SimDuration::from_millis(1), 100_000);
        let mut log = RunLog::new();
        let r = run_server(&mut sut, 64, 5.0, &settings, &mut log);
        assert!(sut.idle_total > r.duration / 2, "idle {} of {}", sut.idle_total, r.duration);
        // Cooling keeps latencies near base despite per-query heating.
        assert!(r.latency.as_ref().unwrap().p50_ns < 2_000_000);
    }

    #[test]
    fn find_max_qps_brackets_the_knee() {
        let settings = TestSettings::smoke_test();
        // 10 ms constant service, concurrency 2 -> capacity 200 qps; a
        // 12 ms bound forbids meaningful queueing.
        let search = find_max_qps(
            || ConstantSut::new(SimDuration::from_millis(10)),
            64,
            &settings,
            SimDuration::from_millis(12),
            800.0,
        );
        assert!(search.max_passing_qps > 0.0, "some load must pass");
        assert!(search.max_passing_qps < 800.0, "the bound must bind");
        assert_eq!(search.probes, u64::from(QPS_SEARCH_ITERS));
        assert_eq!(search.result.offered_qps, Some(search.max_passing_qps));
        // The stored result reproduces exactly from a fresh SUT.
        let mut sut = ConstantSut::new(SimDuration::from_millis(10));
        let mut log = RunLog::new();
        let rerun = run_server(&mut sut, 64, search.max_passing_qps, &settings, &mut log);
        assert_eq!(rerun, search.result);
        assert_eq!(log.to_json_lines(), search.log.to_json_lines());
    }

    #[test]
    fn find_max_qps_reports_zero_when_nothing_passes() {
        let settings = TestSettings::smoke_test();
        // Service time alone exceeds the bound: no offered load can pass.
        let search = find_max_qps(
            || ConstantSut::new(SimDuration::from_millis(50)),
            64,
            &settings,
            SimDuration::from_millis(1),
            100.0,
        );
        assert_eq!(search.max_passing_qps, 0.0);
        assert!(search.result.latency.unwrap().p90_ns > 1_000_000);
    }

    #[test]
    fn multi_stream_frame_latency_is_max_over_lanes() {
        /// Lane latencies cycle 1,2,3,4 ms within each frame.
        struct CyclingSut {
            step: u64,
        }
        impl crate::sut::SystemUnderTest for CyclingSut {
            type Response = usize;
            fn issue_query(&mut self, sample_index: usize) -> (SimDuration, usize) {
                let latency = SimDuration::from_millis(self.step % 4 + 1);
                self.step += 1;
                (latency, sample_index)
            }
        }
        let settings = TestSettings::smoke_test();
        let mut sut = CyclingSut { step: 0 };
        let mut log = RunLog::new();
        let r = run_multi_stream(&mut sut, 64, 4, &settings, &mut log);
        assert_eq!(r.scenario, Scenario::MultiStream);
        assert_eq!(r.streams, Some(4));
        assert_eq!(r.queries, settings.min_frame_count * 4);
        // Every frame's latency is the slowest lane: 4 ms.
        let stats = r.latency.as_ref().unwrap();
        assert_eq!(stats.min_ns, 4_000_000);
        assert_eq!(stats.max_ns, 4_000_000);
        assert!((r.score() - 4.0).abs() < 1e-12, "multi-stream score is the stream count");
        // Frame records carry the accounting the checker verifies.
        let frames = log
            .records()
            .iter()
            .filter(|rec| matches!(rec, LogRecord::FrameComplete { .. }))
            .count() as u64;
        assert_eq!(frames, settings.min_frame_count);
    }

    #[test]
    fn multi_stream_traced_matches_untraced() {
        let settings = TestSettings::smoke_test();
        let mut sut = ThermalToySut::new(SimDuration::from_millis(3), 100_000);
        let mut log = RunLog::new();
        let untraced = run_multi_stream(&mut sut, 64, 3, &settings, &mut log);
        let mut sut2 = ThermalToySut::new(SimDuration::from_millis(3), 100_000);
        let mut log2 = RunLog::new();
        let mut trace = RunTrace::new();
        let traced =
            run_multi_stream_traced(&mut sut2, 64, 3, &settings, &mut log2, Some(&mut trace));
        assert_eq!(untraced, traced);
        assert_eq!(log.to_json_lines(), log2.to_json_lines());
        trace.validate().unwrap();
        assert_eq!(trace.span_count(), traced.queries);
        // All three lanes of a frame dispatch together.
        assert!(trace.max_concurrent() >= 3);
    }

    #[test]
    fn multi_stream_covers_min_duration() {
        // Interval 50 ms, min_duration 50 ms, min_frame_count 8: the
        // frame-count rule dominates and the duration spans all frames.
        let settings = TestSettings::smoke_test();
        let mut sut = ConstantSut::new(SimDuration::from_millis(1));
        let mut log = RunLog::new();
        let r = run_multi_stream(&mut sut, 64, 2, &settings, &mut log);
        assert!(r.duration >= settings.min_duration);
        assert!(
            r.duration.as_nanos()
                >= settings.min_frame_count * settings.multi_stream_interval.as_nanos()
        );
    }

    #[test]
    fn find_max_streams_finds_the_knee() {
        let settings = TestSettings::smoke_test();
        // Heating SUT: more streams per frame warm the device faster, so
        // late-frame latencies cross the 50 ms interval at some N.
        let search = find_max_streams(
            || ThermalToySut::new(SimDuration::from_millis(1), 500_000),
            64,
            &settings,
        );
        assert!(search.streams >= 1, "one stream must fit a 50 ms interval");
        assert!(search.streams < settings.max_streams, "the interval must bind");
        assert_eq!(search.result.streams, Some(search.streams));
        // The stored result reproduces exactly from a fresh SUT.
        let mut sut = ThermalToySut::new(SimDuration::from_millis(1), 500_000);
        let mut log = RunLog::new();
        let rerun = run_multi_stream(&mut sut, 64, search.streams, &settings, &mut log);
        assert_eq!(rerun, search.result);
        assert_eq!(log.to_json_lines(), search.log.to_json_lines());
    }

    #[test]
    fn find_max_streams_reports_zero_when_one_stream_fails() {
        let settings = TestSettings::smoke_test();
        let search = find_max_streams(
            || ConstantSut::new(SimDuration::from_millis(200)),
            64,
            &settings,
        );
        assert_eq!(search.streams, 0);
        assert_eq!(search.result.streams, Some(1), "the artifact is the failing 1-stream run");
    }

    #[test]
    fn find_max_streams_saturates_at_the_cap() {
        let settings = TestSettings::smoke_test();
        let search = find_max_streams(
            || ConstantSut::new(SimDuration::from_micros(10)),
            64,
            &settings,
        );
        assert_eq!(search.streams, settings.max_streams);
        assert_eq!(search.probes, 2, "1 and max both pass; no bisection needed");
    }

    #[test]
    fn accuracy_parallel_is_byte_identical_to_serial() {
        let settings = TestSettings::smoke_test();
        let mut serial_log = RunLog::new();
        let serial = run_accuracy(&mut WarmingSut { queries_served: 0 }, 777, &settings, &mut serial_log);
        for threads in [1, 2, 5, 16] {
            let mut log = RunLog::new();
            let par = run_accuracy_parallel(
                &mut WarmingSut { queries_served: 0 },
                777,
                &settings,
                &mut log,
                threads,
            );
            assert_eq!(serial.predictions, par.predictions, "{threads} threads");
            assert_eq!(serial.duration, par.duration, "{threads} threads");
            assert_eq!(
                serde_json::to_string(&serial_log).unwrap(),
                serde_json::to_string(&log).unwrap(),
                "accuracy log must be byte-identical at {threads} threads"
            );
        }
    }
}
