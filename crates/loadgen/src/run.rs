//! The LoadGen run loops (paper Section 4).
//!
//! Single-stream: inject one query, wait for completion, record, repeat —
//! until at least `min_query_count` samples AND `min_duration` of simulated
//! time have elapsed. Offline: one burst of `offline_sample_count` samples.
//! Accuracy mode feeds the entire validation set. All on the simulated
//! clock.

use crate::log::{LogRecord, RunLog};
use crate::scenario::{Scenario, TestMode, TestSettings};
use crate::sut::SystemUnderTest;
use crate::trace::{QuerySpan, RunTrace};
use mobile_metrics::latency::LatencyStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use soc_sim::time::{SimDuration, SimInstant};

/// Performance-mode result for one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerformanceResult {
    /// Scenario measured.
    pub scenario: Scenario,
    /// Queries issued.
    pub queries: u64,
    /// Total simulated duration.
    pub duration: SimDuration,
    /// Per-query latency statistics. `Some` for single-stream, where every
    /// query's completion is observed individually; `None` for offline,
    /// which measures one burst — per-sample completion times don't exist
    /// there, and fabricating them from the mean would be reporting fake
    /// percentiles.
    pub latency: Option<LatencyStats>,
    /// Average throughput in samples/second (the offline score).
    pub throughput_fps: f64,
}

impl PerformanceResult {
    /// The scenario's headline score: p90 latency (ms) for single-stream,
    /// throughput (FPS) for offline.
    ///
    /// # Panics
    ///
    /// Panics on a single-stream result without latency statistics (the
    /// run loops never produce one).
    #[must_use]
    pub fn score(&self) -> f64 {
        match self.scenario {
            Scenario::SingleStream => self
                .latency
                .as_ref()
                .expect("single-stream runs record per-query latencies")
                .score_ms(),
            Scenario::Offline => self.throughput_fps,
        }
    }
}

/// Accuracy-mode result: every validation sample's prediction.
#[derive(Debug, Clone)]
pub struct AccuracyResult<R> {
    /// Predictions indexed by dataset sample index.
    pub predictions: Vec<(usize, R)>,
    /// Total simulated duration of the accuracy pass.
    pub duration: SimDuration,
}

/// Selects the performance sample set: `n` indices drawn by the seeded RNG
/// from the dataset — "a seed and random-number generator allows the
/// LoadGen to select samples, precluding unrealistic data-set-specific
/// optimizations".
///
/// The draw is **with replacement**: each of the `n` indices is an
/// independent uniform pick from `0..dataset_len`, so duplicates are
/// expected whenever `n` approaches or exceeds the dataset size (for
/// `n == dataset_len` about `1 - 1/e ≈ 63%` of samples appear at least
/// once). That matches the real LoadGen's behavior — performance queries
/// replay whatever the RNG picks; coverage of every sample is an accuracy-
/// mode concern, not a performance-mode one. Identical `(seed,
/// dataset_len, n)` triples always produce the identical sequence.
///
/// # Panics
///
/// Panics if the dataset is empty.
#[must_use]
pub fn performance_sample_set(seed: u64, dataset_len: usize, n: u64) -> Vec<usize> {
    assert!(dataset_len > 0, "empty dataset");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..dataset_len)).collect()
}

/// Runs the single-stream performance scenario.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn run_single_stream<S: SystemUnderTest>(
    sut: &mut S,
    dataset_len: usize,
    settings: &TestSettings,
    log: &mut RunLog,
) -> PerformanceResult {
    run_single_stream_traced(sut, dataset_len, settings, log, None)
}

/// Runs the single-stream performance scenario with an optional trace
/// sink.
///
/// When `trace` is `Some`, every query's span (issue/complete
/// sim-timestamps, sample index, latency) plus the SUT's telemetry is
/// recorded into it. Tracing is purely observational: the result is
/// bit-identical to [`run_single_stream`] with or without a sink attached
/// (the `parallel_determinism` integration tests enforce this end to end).
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn run_single_stream_traced<S: SystemUnderTest>(
    sut: &mut S,
    dataset_len: usize,
    settings: &TestSettings,
    log: &mut RunLog,
    mut trace: Option<&mut RunTrace>,
) -> PerformanceResult {
    log.start(
        Scenario::SingleStream,
        TestMode::Performance,
        settings.seed,
        sut.description(),
    );
    if let Some(t) = trace.as_deref_mut() {
        t.begin(
            Scenario::SingleStream,
            TestMode::Performance,
            settings.seed,
            sut.description(),
        );
    }
    let samples = performance_sample_set(settings.seed, dataset_len, settings.min_query_count);
    let mut now = SimInstant::EPOCH;
    // At least min_query_count latencies will be recorded; slow-query runs
    // stop right at the count, so this usually avoids every regrowth.
    let mut latencies = Vec::with_capacity(settings.min_query_count as usize);
    let mut queries = 0u64;
    let mut was_throttled = false;
    // Repeat until both the sample count and the minimum duration are met.
    'outer: loop {
        for &s in &samples {
            let (latency, _response) = sut.issue_query(s);
            log.query(now, s, latency);
            // Telemetry is pulled once per query and drives both the trace
            // span and the compliance log's throttle transitions, so traced
            // and untraced runs log byte-identical event streams.
            let telemetry = sut.last_telemetry();
            if let Some(t) = &telemetry {
                if t.is_throttled() != was_throttled {
                    was_throttled = t.is_throttled();
                    log.throttle(now, t.freq_factor, t.temperature_c);
                }
            }
            if let Some(t) = trace.as_deref_mut() {
                t.record_span(QuerySpan {
                    query_index: queries,
                    sample_index: s,
                    issue_ns: now.as_nanos(),
                    complete_ns: (now + latency).as_nanos(),
                    latency_ns: latency.as_nanos(),
                    telemetry,
                });
            }
            now += latency;
            latencies.push(latency.as_nanos());
            queries += 1;
            if queries >= settings.min_query_count
                && now.duration_since(SimInstant::EPOCH) >= settings.min_duration
            {
                break 'outer;
            }
        }
    }
    let duration = now.duration_since(SimInstant::EPOCH);
    log.push(LogRecord::TestEnd { queries, duration_ns: duration.as_nanos() });
    PerformanceResult {
        scenario: Scenario::SingleStream,
        queries,
        duration,
        latency: Some(LatencyStats::from_latencies(&latencies)),
        throughput_fps: queries as f64 / duration.as_secs_f64(),
    }
}

/// Runs the single-stream performance scenario for K lockstep device
/// lanes, returning one [`PerformanceResult`] per lane.
///
/// Every lane walks the same seeded sample sequence on its own virtual
/// clock; one [`crate::sut::BatchSut::issue_query_lanes`] call advances
/// all in-flight lanes per query step. A lane retires the moment it meets
/// the run rules (`min_query_count` AND `min_duration`), exactly where a
/// scalar run of that lane would have stopped; survivors keep stepping
/// from the next sample. Lane `k`'s result and log are **byte-identical**
/// to [`run_single_stream`] over the equivalent scalar SUT (enforced by
/// `batched_lanes_match_scalar_runs` below and the cross-crate
/// `batch_smoke` golden test).
///
/// # Panics
///
/// Panics if the dataset is empty, the SUT has no lanes, or `logs` does
/// not provide exactly one log per lane.
pub fn run_single_stream_batched<S: crate::sut::BatchSut>(
    sut: &mut S,
    dataset_len: usize,
    settings: &TestSettings,
    logs: &mut [RunLog],
) -> Vec<PerformanceResult> {
    let lanes = sut.lanes();
    assert!(lanes > 0, "batch needs at least one lane");
    assert_eq!(logs.len(), lanes, "one log per lane");
    for (k, log) in logs.iter_mut().enumerate() {
        log.start(
            Scenario::SingleStream,
            TestMode::Performance,
            settings.seed,
            sut.lane_description(k),
        );
    }
    let samples = performance_sample_set(settings.seed, dataset_len, settings.min_query_count);

    /// Per-lane run-loop bookkeeping, identical to the scalar loop's
    /// locals.
    struct Lane {
        now: SimInstant,
        latencies: Vec<u64>,
        queries: u64,
        was_throttled: bool,
    }
    let mut lane_state: Vec<Lane> = (0..lanes)
        .map(|_| Lane {
            now: SimInstant::EPOCH,
            latencies: Vec::with_capacity(settings.min_query_count as usize),
            queries: 0,
            was_throttled: false,
        })
        .collect();
    // active[pos] = original lane id still in flight at SUT position
    // `pos`; retirement removes positions so SUT lanes and this map shift
    // together.
    let mut active: Vec<usize> = (0..lanes).collect();
    let mut step_latencies: Vec<SimDuration> = Vec::with_capacity(lanes);
    let mut finished: Vec<usize> = Vec::new();
    'outer: loop {
        for &s in &samples {
            sut.issue_query_lanes(s, &mut step_latencies);
            debug_assert_eq!(step_latencies.len(), active.len());
            finished.clear();
            for (pos, &id) in active.iter().enumerate() {
                let latency = step_latencies[pos];
                let lane = &mut lane_state[id];
                logs[id].query(lane.now, s, latency);
                if let Some((freq_factor, temperature_c)) = sut.lane_throttle(pos) {
                    let throttled = freq_factor < 1.0;
                    if throttled != lane.was_throttled {
                        lane.was_throttled = throttled;
                        logs[id].throttle(lane.now, freq_factor, temperature_c);
                    }
                }
                lane.now += latency;
                lane.latencies.push(latency.as_nanos());
                lane.queries += 1;
                if lane.queries >= settings.min_query_count
                    && lane.now.duration_since(SimInstant::EPOCH) >= settings.min_duration
                {
                    finished.push(pos);
                }
            }
            // Retire from the highest position down so the lower
            // positions stay valid while lanes shift.
            for &pos in finished.iter().rev() {
                sut.retire_lane(pos);
                active.remove(pos);
            }
            if active.is_empty() {
                break 'outer;
            }
        }
    }
    lane_state
        .into_iter()
        .enumerate()
        .map(|(id, lane)| {
            let duration = lane.now.duration_since(SimInstant::EPOCH);
            logs[id].push(LogRecord::TestEnd { queries: lane.queries, duration_ns: duration.as_nanos() });
            PerformanceResult {
                scenario: Scenario::SingleStream,
                queries: lane.queries,
                duration,
                latency: Some(LatencyStats::from_latencies(&lane.latencies)),
                throughput_fps: lane.queries as f64 / duration.as_secs_f64(),
            }
        })
        .collect()
}

/// Runs the offline performance scenario: one burst.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn run_offline_scenario<S: SystemUnderTest>(
    sut: &mut S,
    dataset_len: usize,
    settings: &TestSettings,
    log: &mut RunLog,
) -> PerformanceResult {
    run_offline_scenario_traced(sut, dataset_len, settings, log, None)
}

/// Runs the offline performance scenario with an optional trace sink.
///
/// Offline observes one burst, so the trace records a single
/// [`crate::trace::BurstSpan`] covering the whole throughput window
/// (`end - start` equals the reported duration; `samples` equals the
/// reported query count). Tracing never perturbs the result.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn run_offline_scenario_traced<S: SystemUnderTest>(
    sut: &mut S,
    dataset_len: usize,
    settings: &TestSettings,
    log: &mut RunLog,
    trace: Option<&mut RunTrace>,
) -> PerformanceResult {
    log.start(
        Scenario::Offline,
        TestMode::Performance,
        settings.seed,
        sut.description(),
    );
    let samples =
        performance_sample_set(settings.seed, dataset_len, settings.offline_sample_count);
    let (duration, responses) = sut.issue_batch(&samples);
    assert_eq!(responses.len(), samples.len(), "SUT must answer every sample");
    if let Some(t) = trace {
        t.begin(
            Scenario::Offline,
            TestMode::Performance,
            settings.seed,
            sut.description(),
        );
        t.record_burst(0, duration.as_nanos(), samples.len() as u64);
    }
    log.push(LogRecord::BurstComplete {
        samples: samples.len() as u64,
        duration_ns: duration.as_nanos(),
    });
    log.push(LogRecord::TestEnd {
        queries: samples.len() as u64,
        duration_ns: duration.as_nanos(),
    });
    // Offline observes one burst completion, not per-sample completions:
    // there are no real latencies to aggregate, so none are reported
    // (previously this fabricated identical "latencies" from the mean,
    // which produced fictional percentiles).
    PerformanceResult {
        scenario: Scenario::Offline,
        queries: samples.len() as u64,
        duration,
        latency: None,
        throughput_fps: samples.len() as f64 / duration.as_secs_f64(),
    }
}

/// Runs accuracy mode: the entire validation set, each sample once.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn run_accuracy<S: SystemUnderTest>(
    sut: &mut S,
    dataset_len: usize,
    settings: &TestSettings,
    log: &mut RunLog,
) -> AccuracyResult<S::Response> {
    assert!(dataset_len > 0, "empty dataset");
    log.start(
        Scenario::SingleStream,
        TestMode::Accuracy,
        settings.seed,
        sut.description(),
    );
    let mut now = SimInstant::EPOCH;
    let mut predictions = Vec::with_capacity(dataset_len);
    for s in 0..dataset_len {
        let (latency, response) = sut.issue_query(s);
        now += latency;
        predictions.push((s, response));
    }
    let duration = now.duration_since(SimInstant::EPOCH);
    log.push(LogRecord::TestEnd { queries: dataset_len as u64, duration_ns: duration.as_nanos() });
    AccuracyResult { predictions, duration }
}

/// The device-advance half of [`run_accuracy`]: walks the whole
/// validation set through [`SplitQuery::advance_query`], producing the
/// same state evolution, log records and duration as the full accuracy
/// run — without synthesizing a single prediction.
///
/// Callers that already know the accuracy outcome (e.g. a sweep cache
/// that has scored this exact `(dataset, quality)` pair before) use this
/// to keep the thermal trajectory and the unedited log byte-identical to
/// a from-scratch run.
///
/// [`SplitQuery::advance_query`]: crate::sut::SplitQuery::advance_query
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn run_accuracy_advance<S: crate::sut::SplitQuery>(
    sut: &mut S,
    dataset_len: usize,
    settings: &TestSettings,
    log: &mut RunLog,
) -> SimDuration {
    assert!(dataset_len > 0, "empty dataset");
    log.start(
        Scenario::SingleStream,
        TestMode::Accuracy,
        settings.seed,
        sut.description(),
    );
    let mut now = SimInstant::EPOCH;
    for s in 0..dataset_len {
        now += sut.advance_query(s);
    }
    let duration = now.duration_since(SimInstant::EPOCH);
    log.push(LogRecord::TestEnd { queries: dataset_len as u64, duration_ns: duration.as_nanos() });
    duration
}

/// [`run_accuracy`] with the prediction work spread over `threads`
/// workers.
///
/// The device advance stays serial — each query's latency depends on the
/// state the previous one left behind — while the predictions, pure
/// per-sample functions under the [`SplitQuery`] contract, run through an
/// order-preserving chunked [`crate::par::par_map_chunked`]. The returned
/// result and the log records are **byte-identical** to the serial
/// [`run_accuracy`] for any thread count (enforced by
/// `accuracy_parallel_is_byte_identical_to_serial` below).
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn run_accuracy_parallel<S>(
    sut: &mut S,
    dataset_len: usize,
    settings: &TestSettings,
    log: &mut RunLog,
    threads: usize,
) -> AccuracyResult<S::Response>
where
    S: crate::sut::SplitQuery + Sync,
    S::Response: Send,
{
    let duration = run_accuracy_advance(sut, dataset_len, settings, log);
    let samples: Vec<usize> = (0..dataset_len).collect();
    let responses = crate::par::par_map_chunked(&samples, threads, |&s| sut.predict(s));
    let predictions = samples.into_iter().zip(responses).collect();
    AccuracyResult { predictions, duration }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sut::ConstantSut;

    #[test]
    fn single_stream_meets_min_duration() {
        // 100 ms per query, 60 s minimum -> at least 600 queries even
        // though min_query_count is 1024... both constraints bind.
        let mut sut = ConstantSut::new(SimDuration::from_millis(100));
        let mut log = RunLog::new();
        let settings = TestSettings::default();
        let r = run_single_stream(&mut sut, 5000, &settings, &mut log);
        assert!(r.queries >= 1024);
        assert!(r.duration >= SimDuration::from_secs(60));
        // 1024 queries at 100ms = 102.4s > 60s: count binds.
        assert_eq!(r.queries, 1024);
    }

    #[test]
    fn single_stream_extends_past_count_for_duration() {
        // 1 ms per query: 1024 queries = 1.024 s << 60 s, so the LoadGen
        // keeps issuing until 60 s pass.
        let mut sut = ConstantSut::new(SimDuration::from_millis(1));
        let mut log = RunLog::new();
        let settings = TestSettings::default();
        let r = run_single_stream(&mut sut, 5000, &settings, &mut log);
        assert!(r.queries >= 60_000, "queries {}", r.queries);
        assert!(r.duration >= SimDuration::from_secs(60));
    }

    #[test]
    fn single_stream_p90_of_constant_is_constant() {
        let mut sut = ConstantSut::new(SimDuration::from_millis(7));
        let mut log = RunLog::new();
        let r = run_single_stream(&mut sut, 100, &TestSettings::smoke_test(), &mut log);
        assert_eq!(r.latency.as_ref().unwrap().p90_ns, 7_000_000);
        assert!((r.score() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn offline_issues_24576() {
        let mut sut = ConstantSut::new(SimDuration::from_micros(100));
        let mut log = RunLog::new();
        let r = run_offline_scenario(&mut sut, 50_000, &TestSettings::default(), &mut log);
        assert_eq!(r.queries, 24_576);
        assert_eq!(sut.queries_served, 24_576);
        // 100us per sample sequentially -> 10k fps.
        assert!((r.throughput_fps - 10_000.0).abs() < 1.0);
        // Offline has no per-sample completion times to report.
        assert!(r.latency.is_none());
        assert!((r.score() - r.throughput_fps).abs() < 1e-12);
    }

    #[test]
    fn accuracy_covers_entire_dataset() {
        let mut sut = ConstantSut::new(SimDuration::from_micros(10));
        let mut log = RunLog::new();
        let r = run_accuracy(&mut sut, 1234, &TestSettings::smoke_test(), &mut log);
        assert_eq!(r.predictions.len(), 1234);
        // Every sample exactly once, in order.
        assert!(r.predictions.iter().enumerate().all(|(i, (s, _))| i == *s));
    }

    #[test]
    fn sample_selection_is_seeded() {
        let a = performance_sample_set(1, 1000, 64);
        let b = performance_sample_set(1, 1000, 64);
        let c = performance_sample_set(2, 1000, 64);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&i| i < 1000));
    }

    #[test]
    fn log_records_every_query() {
        let mut sut = ConstantSut::new(SimDuration::from_millis(2));
        let mut log = RunLog::new();
        let r = run_single_stream(&mut sut, 100, &TestSettings::smoke_test(), &mut log);
        assert_eq!(log.latencies_ns().len() as u64, r.queries);
    }

    /// A stateful split SUT: latency grows with every query served (so any
    /// reordering of the advance loop desynchronizes the duration), while
    /// the prediction is a pure per-sample function.
    struct WarmingSut {
        queries_served: u64,
    }

    impl crate::sut::SystemUnderTest for WarmingSut {
        type Response = u64;
        fn issue_query(&mut self, sample_index: usize) -> (SimDuration, u64) {
            use crate::sut::SplitQuery;
            let latency = self.advance_query(sample_index);
            (latency, self.predict(sample_index))
        }
        fn description(&self) -> String {
            "warming split SUT".to_owned()
        }
    }

    impl crate::sut::SplitQuery for WarmingSut {
        fn advance_query(&mut self, _sample_index: usize) -> SimDuration {
            self.queries_served += 1;
            SimDuration::from_micros(100 + self.queries_served * 3)
        }
        fn predict(&self, sample_index: usize) -> u64 {
            (sample_index as u64).wrapping_mul(0x9E37_79B9).rotate_left(13)
        }
    }

    #[test]
    fn batched_lanes_match_scalar_runs() {
        // Heterogeneous lane latencies so lanes retire at different
        // times: 7 ms lanes stop at the query count, the 40 us lane has
        // to keep going until min_duration. Every lane must be
        // byte-identical to its own scalar run.
        let latencies = [
            SimDuration::from_millis(7),
            SimDuration::from_micros(40),
            SimDuration::from_millis(7),
            SimDuration::from_millis(2),
        ];
        let settings = TestSettings::smoke_test();
        let mut batch = crate::sut::ConstantBatchSut::new(&latencies);
        let mut logs: Vec<RunLog> = (0..latencies.len()).map(|_| RunLog::new()).collect();
        let results = run_single_stream_batched(&mut batch, 100, &settings, &mut logs);
        assert!(batch.suts.is_empty(), "every lane must retire");
        for (k, &latency) in latencies.iter().enumerate() {
            let mut scalar = ConstantSut::new(latency);
            let mut scalar_log = RunLog::new();
            let reference = run_single_stream(&mut scalar, 100, &settings, &mut scalar_log);
            assert_eq!(reference, results[k], "lane {k} diverged");
            assert_eq!(
                serde_json::to_string(&scalar_log).unwrap(),
                serde_json::to_string(&logs[k]).unwrap(),
                "lane {k} log must be byte-identical to its scalar run"
            );
        }
    }

    #[test]
    fn batched_single_lane_matches_scalar() {
        let settings = TestSettings::smoke_test();
        let mut batch = crate::sut::ConstantBatchSut::new(&[SimDuration::from_millis(3)]);
        let mut logs = vec![RunLog::new()];
        let results = run_single_stream_batched(&mut batch, 64, &settings, &mut logs);
        let mut scalar = ConstantSut::new(SimDuration::from_millis(3));
        let mut scalar_log = RunLog::new();
        let reference = run_single_stream(&mut scalar, 64, &settings, &mut scalar_log);
        assert_eq!(vec![reference], results);
    }

    #[test]
    fn accuracy_parallel_is_byte_identical_to_serial() {
        let settings = TestSettings::smoke_test();
        let mut serial_log = RunLog::new();
        let serial = run_accuracy(&mut WarmingSut { queries_served: 0 }, 777, &settings, &mut serial_log);
        for threads in [1, 2, 5, 16] {
            let mut log = RunLog::new();
            let par = run_accuracy_parallel(
                &mut WarmingSut { queries_served: 0 },
                777,
                &settings,
                &mut log,
                threads,
            );
            assert_eq!(serial.predictions, par.predictions, "{threads} threads");
            assert_eq!(serial.duration, par.duration, "{threads} threads");
            assert_eq!(
                serde_json::to_string(&serial_log).unwrap(),
                serde_json::to_string(&log).unwrap(),
                "accuracy log must be byte-identical at {threads} threads"
            );
        }
    }
}
