//! Structured run logs.
//!
//! "It logs information about the system during execution to enable
//! post-run validation. Submissions include all of the mobile benchmark
//! app's log files, unedited." (paper Sections 4.1 and 6.2). The log is
//! what the submission checker and the audit consume.

use crate::scenario::{Scenario, TestMode};
use serde::{Deserialize, Serialize};
use soc_sim::time::{SimDuration, SimInstant};

/// One log event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum LogRecord {
    /// Test started.
    TestStart {
        /// Scenario under test.
        scenario: Scenario,
        /// Mode under test.
        mode: TestMode,
        /// Sample-selection seed.
        seed: u64,
        /// SUT description string.
        sut: String,
    },
    /// A query completed (performance mode records every query).
    QueryComplete {
        /// Simulated issue timestamp.
        issued_at_ns: u64,
        /// Dataset sample index.
        sample_index: usize,
        /// Observed latency in nanoseconds.
        latency_ns: u64,
    },
    /// An offline burst completed.
    BurstComplete {
        /// Samples in the burst.
        samples: u64,
        /// Total burst duration (ns).
        duration_ns: u64,
    },
    /// A multi-stream frame completed (all of its lanes finished).
    FrameComplete {
        /// Zero-based frame index.
        frame_index: u64,
        /// Streams (lanes) in the frame.
        streams: u64,
        /// Frame latency: max over the lanes (ns).
        latency_ns: u64,
    },
    /// The device's throttle state changed at a query boundary (entered
    /// throttling when `freq_factor < 1.0`, recovered otherwise). Logged
    /// so the submission checker and the audit can see thermal transitions
    /// in the unedited event stream, not just in optional traces.
    ThrottleEvent {
        /// Simulated timestamp of the observation (ns since run start).
        at_ns: u64,
        /// DVFS frequency factor now in effect.
        freq_factor: f64,
        /// Die temperature at the transition (°C).
        temperature_c: f64,
    },
    /// Test finished.
    TestEnd {
        /// Queries issued.
        queries: u64,
        /// Total simulated duration (ns).
        duration_ns: u64,
    },
}

/// An append-only event log for one test run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunLog {
    records: Vec<LogRecord>,
}

impl RunLog {
    /// Empty log.
    #[must_use]
    pub fn new() -> Self {
        RunLog::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: LogRecord) {
        self.records.push(record);
    }

    /// Appends every record of `other`, in order — used to splice the
    /// winning search probe's log segment into a combined submission log.
    pub fn append(&mut self, other: &RunLog) {
        self.records.extend(other.records.iter().cloned());
    }

    /// All records, in order.
    #[must_use]
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Convenience: records the start event.
    pub fn start(&mut self, scenario: Scenario, mode: TestMode, seed: u64, sut: String) {
        self.push(LogRecord::TestStart { scenario, mode, seed, sut });
    }

    /// Convenience: records one completed query.
    pub fn query(&mut self, issued_at: SimInstant, sample_index: usize, latency: SimDuration) {
        self.push(LogRecord::QueryComplete {
            issued_at_ns: issued_at.as_nanos(),
            sample_index,
            latency_ns: latency.as_nanos(),
        });
    }

    /// Convenience: records one completed multi-stream frame.
    pub fn frame(&mut self, frame_index: u64, streams: u64, latency: SimDuration) {
        self.push(LogRecord::FrameComplete {
            frame_index,
            streams,
            latency_ns: latency.as_nanos(),
        });
    }

    /// Convenience: records a throttle-state transition.
    pub fn throttle(&mut self, at: SimInstant, freq_factor: f64, temperature_c: f64) {
        self.push(LogRecord::ThrottleEvent {
            at_ns: at.as_nanos(),
            freq_factor,
            temperature_c,
        });
    }

    /// Serializes the log as JSON lines — the unedited artifact a
    /// submission ships.
    ///
    /// # Panics
    ///
    /// Panics only if JSON serialization of a record fails, which is
    /// impossible for these types.
    #[must_use]
    pub fn to_json_lines(&self) -> String {
        self.records
            .iter()
            .map(|r| serde_json::to_string(r).expect("log records serialize"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Parses a JSON-lines log (audit side).
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error for a malformed line.
    pub fn from_json_lines(text: &str) -> Result<Self, serde_json::Error> {
        let mut log = RunLog::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            log.push(serde_json::from_str(line)?);
        }
        Ok(log)
    }

    /// Latencies of all completed queries (ns).
    #[must_use]
    pub fn latencies_ns(&self) -> Vec<u64> {
        self.records
            .iter()
            .filter_map(|r| match r {
                LogRecord::QueryComplete { latency_ns, .. } => Some(*latency_ns),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> RunLog {
        let mut log = RunLog::new();
        log.start(Scenario::SingleStream, TestMode::Performance, 42, "test".into());
        log.query(SimInstant::EPOCH, 5, SimDuration::from_millis(3));
        log.query(SimInstant::EPOCH + SimDuration::from_millis(3), 9, SimDuration::from_millis(4));
        log.push(LogRecord::TestEnd { queries: 2, duration_ns: 7_000_000 });
        log
    }

    #[test]
    fn json_lines_round_trip() {
        let log = sample_log();
        let text = log.to_json_lines();
        assert_eq!(text.lines().count(), 4);
        let parsed = RunLog::from_json_lines(&text).unwrap();
        assert_eq!(parsed, log);
    }

    #[test]
    fn latencies_extracted() {
        let log = sample_log();
        assert_eq!(log.latencies_ns(), vec![3_000_000, 4_000_000]);
    }

    #[test]
    fn throttle_event_round_trips() {
        let mut log = RunLog::new();
        log.start(Scenario::SingleStream, TestMode::Performance, 1, "t".into());
        log.throttle(SimInstant::EPOCH + SimDuration::from_millis(8), 0.8, 71.5);
        log.push(LogRecord::TestEnd { queries: 0, duration_ns: 9_000_000 });
        let text = log.to_json_lines();
        assert!(text.contains("ThrottleEvent"), "{text}");
        let parsed = RunLog::from_json_lines(&text).unwrap();
        assert_eq!(parsed, log);
        // Throttle events are observations, not queries.
        assert!(parsed.latencies_ns().is_empty());
    }

    #[test]
    fn malformed_line_rejected() {
        assert!(RunLog::from_json_lines("{not json}").is_err());
    }

    #[test]
    fn edited_log_detectable() {
        // An "edited" log (tampered latency) still parses but no longer
        // matches the original — byte-level comparison catches it.
        let log = sample_log();
        let tampered = log.to_json_lines().replace("3000000", "1000000");
        let parsed = RunLog::from_json_lines(&tampered).unwrap();
        assert_ne!(parsed, log);
    }
}
