//! The MLPerf LoadGen (paper Section 4), on a simulated clock.
//!
//! "To enable testing of various inference platforms and use cases, we
//! devised the Load Generator, which creates inference requests in a
//! pattern and measures some parameters." This crate reproduces it:
//! scenario-driven query generation (single-stream, offline, server,
//! multi-stream), seeded sample selection, performance and accuracy modes,
//! run-rule enforcement (1024 samples / 60 s / 24 576-sample bursts /
//! frame accounting), structured logging, and the submission checker that
//! validates logs. The server and multi-stream scenarios run on a
//! deterministic discrete-event executor ([`event`]) so overlapping
//! in-flight queries stay bit-reproducible.
//!
//! Submitter modification of the LoadGen is forbidden by the rules; here
//! that invariant is structural — SUTs only see the [`sut::SystemUnderTest`]
//! trait.
//!
//! # Examples
//!
//! ```
//! use loadgen::run::run_single_stream;
//! use loadgen::scenario::TestSettings;
//! use loadgen::sut::ConstantSut;
//! use loadgen::log::RunLog;
//! use soc_sim::time::SimDuration;
//!
//! let mut sut = ConstantSut::new(SimDuration::from_millis(5));
//! let mut log = RunLog::new();
//! let result = run_single_stream(&mut sut, 1000, &TestSettings::default(), &mut log);
//! assert!(result.queries >= 1024);
//! assert!(result.duration >= SimDuration::from_secs(60));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod checker;
pub mod event;
pub mod log;
pub mod par;
pub mod run;
pub mod scenario;
pub mod sut;
pub mod trace;

pub use checker::{check_log, Violation};
pub use event::{EventQueue, PoissonIssuer};
pub use log::{LogRecord, RunLog};
pub use run::{
    find_max_qps, find_max_streams, performance_sample_set, run_accuracy,
    run_accuracy_advance, run_accuracy_parallel, run_multi_stream,
    run_multi_stream_traced, run_offline_scenario, run_offline_scenario_traced,
    run_server, run_server_traced, run_single_stream, run_single_stream_batched,
    run_single_stream_traced, AccuracyResult, PerformanceResult, QpsSearch,
    StreamSearch,
};
pub use scenario::{Scenario, TestMode, TestSettings};
pub use sut::{BatchSut, ConstantBatchSut, ConstantSut, SplitQuery, SystemUnderTest};
pub use trace::{BurstSpan, QuerySpan, QueryTelemetry, RunTrace, StageTelemetry};
