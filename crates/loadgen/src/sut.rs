//! The system-under-test interface (paper Figure 4).
//!
//! The LoadGen is deliberately ignorant of what the SUT is — a phone app
//! driving an NPU, a laptop command-line binary, or (here) a simulated SoC.
//! It issues sample indices and receives per-query durations plus opaque
//! responses that accuracy mode scores later.

use crate::trace::QueryTelemetry;
use soc_sim::time::SimDuration;

/// A system under test.
///
/// `Response` is the task-specific prediction payload (class label,
/// detection list, label map, answer span) consumed by the accuracy
/// pipeline; performance mode discards it.
pub trait SystemUnderTest {
    /// Task-specific prediction type.
    type Response;

    /// Runs one inference on the sample with the given dataset index,
    /// returning the simulated latency and the prediction.
    fn issue_query(&mut self, sample_index: usize) -> (SimDuration, Self::Response);

    /// Device telemetry for the most recent [`issue_query`] call, consumed
    /// by traced run loops. SUTs without device introspection (the
    /// default) report nothing; the run loops treat `None` as "no
    /// telemetry", never as an error.
    ///
    /// [`issue_query`]: SystemUnderTest::issue_query
    fn last_telemetry(&self) -> Option<QueryTelemetry> {
        None
    }

    /// Notifies the SUT that the device sat idle for `dt` of simulated
    /// time before the next dispatch — the server and multi-stream loops
    /// call this for gaps where no query is executing, letting thermal
    /// models cool between bursts. The default does nothing.
    fn idle(&mut self, dt: SimDuration) {
        let _ = dt;
    }

    /// Runs a batched burst (offline scenario). The default issues the
    /// samples sequentially; SUTs with accelerator-level parallelism
    /// override this to run concurrent streams.
    fn issue_batch(&mut self, sample_indices: &[usize]) -> (SimDuration, Vec<Self::Response>) {
        let mut total = SimDuration::ZERO;
        let mut responses = Vec::with_capacity(sample_indices.len());
        for &i in sample_indices {
            let (d, r) = self.issue_query(i);
            total += d;
            responses.push(r);
        }
        (total, responses)
    }

    /// Human-readable SUT description for the logs.
    fn description(&self) -> String {
        "unnamed SUT".to_owned()
    }
}

/// A SUT whose query is separable into a *stateful* device advance and a
/// *pure* prediction.
///
/// Simulated (and well-instrumented real) SUTs compute a query's latency
/// from device state — DVFS, thermals, battery — while the prediction
/// depends only on the sample index. Splitting the two lets accuracy mode
/// advance the device serially (cheap, order-sensitive) and synthesize
/// predictions in parallel (expensive, order-free), see
/// [`crate::run::run_accuracy_parallel`].
///
/// # Contract
///
/// `issue_query(s)` must be observably equivalent to
/// `(advance_query(s), predict(s))` — same latency, same response, same
/// state evolution. The accuracy-path byte-identity test in
/// `run.rs` holds implementations to it.
pub trait SplitQuery: SystemUnderTest {
    /// Advances device state for one query on `sample_index`, returning
    /// the simulated latency [`SystemUnderTest::issue_query`] would have
    /// reported.
    fn advance_query(&mut self, sample_index: usize) -> SimDuration;

    /// The prediction for `sample_index` — a pure function of the sample,
    /// safe to evaluate on any thread and in any order.
    fn predict(&self, sample_index: usize) -> Self::Response;
}

/// K systems under test driven in lockstep — one query step advances
/// every in-flight lane at once.
///
/// The batched run loop ([`crate::run::run_single_stream_batched`])
/// issues a sample index, the SUT reports one latency per lane, and each
/// lane's virtual clock advances independently. Lanes that meet their run
/// rules are retired one at a time; the survivors keep stepping. The
/// contract mirrors [`SystemUnderTest`] per lane: lane `k` of a batched
/// run must be indistinguishable — results and log bytes — from a scalar
/// run of the equivalent single-lane SUT.
pub trait BatchSut {
    /// Number of lanes still in flight.
    fn lanes(&self) -> usize;

    /// Runs one inference on `sample_index` across every in-flight lane.
    /// Clears `out` and fills it with one latency per lane, in lane
    /// order.
    fn issue_query_lanes(&mut self, sample_index: usize, out: &mut Vec<SimDuration>);

    /// Dispatch-time `(freq_factor, temperature_c)` of lane `lane` for
    /// the most recent [`issue_query_lanes`] call, for throttle-event
    /// logging. `None` (the default) means no device introspection.
    ///
    /// [`issue_query_lanes`]: BatchSut::issue_query_lanes
    fn lane_throttle(&self, lane: usize) -> Option<(f64, f64)> {
        let _ = lane;
        None
    }

    /// Retires lane `lane`: it is removed and surviving lanes shift down
    /// one position, matching the run loop's bookkeeping.
    fn retire_lane(&mut self, lane: usize);

    /// Human-readable description of lane `lane` for that lane's log
    /// header — must match what the equivalent scalar SUT would report.
    fn lane_description(&self, lane: usize) -> String {
        let _ = lane;
        "unnamed batch SUT".to_owned()
    }
}

/// K independent [`ConstantSut`]s behind the [`BatchSut`] interface, for
/// LoadGen self-tests of the batched run loop.
#[derive(Debug, Clone)]
pub struct ConstantBatchSut {
    /// The per-lane SUTs still in flight.
    pub suts: Vec<ConstantSut>,
}

impl ConstantBatchSut {
    /// Creates a batch of constant-latency lanes.
    ///
    /// # Panics
    ///
    /// Panics if `latencies` is empty.
    #[must_use]
    pub fn new(latencies: &[SimDuration]) -> Self {
        assert!(!latencies.is_empty(), "batch needs at least one lane");
        ConstantBatchSut { suts: latencies.iter().map(|&l| ConstantSut::new(l)).collect() }
    }
}

impl BatchSut for ConstantBatchSut {
    fn lanes(&self) -> usize {
        self.suts.len()
    }

    fn issue_query_lanes(&mut self, sample_index: usize, out: &mut Vec<SimDuration>) {
        out.clear();
        for sut in &mut self.suts {
            let (latency, _) = sut.issue_query(sample_index);
            out.push(latency);
        }
    }

    fn retire_lane(&mut self, lane: usize) {
        let _ = self.suts.remove(lane);
    }

    fn lane_description(&self, lane: usize) -> String {
        self.suts[lane].description()
    }
}

/// A deterministic synthetic SUT for LoadGen self-tests: fixed latency,
/// echoes the sample index.
#[derive(Debug, Clone)]
pub struct ConstantSut {
    /// Latency returned for every query.
    pub latency: SimDuration,
    /// Number of queries served so far.
    pub queries_served: u64,
}

impl ConstantSut {
    /// Creates a SUT with the given fixed latency.
    #[must_use]
    pub fn new(latency: SimDuration) -> Self {
        ConstantSut { latency, queries_served: 0 }
    }
}

impl SystemUnderTest for ConstantSut {
    type Response = usize;

    fn issue_query(&mut self, sample_index: usize) -> (SimDuration, usize) {
        self.queries_served += 1;
        (self.latency, sample_index)
    }

    fn description(&self) -> String {
        format!("constant-latency SUT ({})", self.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sut_counts_queries() {
        let mut sut = ConstantSut::new(SimDuration::from_millis(5));
        let (d, r) = sut.issue_query(42);
        assert_eq!(d, SimDuration::from_millis(5));
        assert_eq!(r, 42);
        assert_eq!(sut.queries_served, 1);
    }

    #[test]
    fn default_batch_sums_latencies() {
        let mut sut = ConstantSut::new(SimDuration::from_millis(2));
        let (d, rs) = sut.issue_batch(&[1, 2, 3]);
        assert_eq!(d, SimDuration::from_millis(6));
        assert_eq!(rs, vec![1, 2, 3]);
    }
}
