//! The system-under-test interface (paper Figure 4).
//!
//! The LoadGen is deliberately ignorant of what the SUT is — a phone app
//! driving an NPU, a laptop command-line binary, or (here) a simulated SoC.
//! It issues sample indices and receives per-query durations plus opaque
//! responses that accuracy mode scores later.

use crate::trace::QueryTelemetry;
use soc_sim::time::SimDuration;

/// A system under test.
///
/// `Response` is the task-specific prediction payload (class label,
/// detection list, label map, answer span) consumed by the accuracy
/// pipeline; performance mode discards it.
pub trait SystemUnderTest {
    /// Task-specific prediction type.
    type Response;

    /// Runs one inference on the sample with the given dataset index,
    /// returning the simulated latency and the prediction.
    fn issue_query(&mut self, sample_index: usize) -> (SimDuration, Self::Response);

    /// Device telemetry for the most recent [`issue_query`] call, consumed
    /// by traced run loops. SUTs without device introspection (the
    /// default) report nothing; the run loops treat `None` as "no
    /// telemetry", never as an error.
    ///
    /// [`issue_query`]: SystemUnderTest::issue_query
    fn last_telemetry(&self) -> Option<QueryTelemetry> {
        None
    }

    /// Runs a batched burst (offline scenario). The default issues the
    /// samples sequentially; SUTs with accelerator-level parallelism
    /// override this to run concurrent streams.
    fn issue_batch(&mut self, sample_indices: &[usize]) -> (SimDuration, Vec<Self::Response>) {
        let mut total = SimDuration::ZERO;
        let mut responses = Vec::with_capacity(sample_indices.len());
        for &i in sample_indices {
            let (d, r) = self.issue_query(i);
            total += d;
            responses.push(r);
        }
        (total, responses)
    }

    /// Human-readable SUT description for the logs.
    fn description(&self) -> String {
        "unnamed SUT".to_owned()
    }
}

/// A SUT whose query is separable into a *stateful* device advance and a
/// *pure* prediction.
///
/// Simulated (and well-instrumented real) SUTs compute a query's latency
/// from device state — DVFS, thermals, battery — while the prediction
/// depends only on the sample index. Splitting the two lets accuracy mode
/// advance the device serially (cheap, order-sensitive) and synthesize
/// predictions in parallel (expensive, order-free), see
/// [`crate::run::run_accuracy_parallel`].
///
/// # Contract
///
/// `issue_query(s)` must be observably equivalent to
/// `(advance_query(s), predict(s))` — same latency, same response, same
/// state evolution. The accuracy-path byte-identity test in
/// `run.rs` holds implementations to it.
pub trait SplitQuery: SystemUnderTest {
    /// Advances device state for one query on `sample_index`, returning
    /// the simulated latency [`SystemUnderTest::issue_query`] would have
    /// reported.
    fn advance_query(&mut self, sample_index: usize) -> SimDuration;

    /// The prediction for `sample_index` — a pure function of the sample,
    /// safe to evaluate on any thread and in any order.
    fn predict(&self, sample_index: usize) -> Self::Response;
}

/// A deterministic synthetic SUT for LoadGen self-tests: fixed latency,
/// echoes the sample index.
#[derive(Debug, Clone)]
pub struct ConstantSut {
    /// Latency returned for every query.
    pub latency: SimDuration,
    /// Number of queries served so far.
    pub queries_served: u64,
}

impl ConstantSut {
    /// Creates a SUT with the given fixed latency.
    #[must_use]
    pub fn new(latency: SimDuration) -> Self {
        ConstantSut { latency, queries_served: 0 }
    }
}

impl SystemUnderTest for ConstantSut {
    type Response = usize;

    fn issue_query(&mut self, sample_index: usize) -> (SimDuration, usize) {
        self.queries_served += 1;
        (self.latency, sample_index)
    }

    fn description(&self) -> String {
        format!("constant-latency SUT ({})", self.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sut_counts_queries() {
        let mut sut = ConstantSut::new(SimDuration::from_millis(5));
        let (d, r) = sut.issue_query(42);
        assert_eq!(d, SimDuration::from_millis(5));
        assert_eq!(r, 42);
        assert_eq!(sut.queries_served, 1);
    }

    #[test]
    fn default_batch_sums_latencies() {
        let mut sut = ConstantSut::new(SimDuration::from_millis(2));
        let (d, rs) = sut.issue_batch(&[1, 2, 3]);
        assert_eq!(d, SimDuration::from_millis(6));
        assert_eq!(rs, vec![1, 2, 3]);
    }
}
