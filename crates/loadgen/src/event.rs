//! A deterministic discrete-event executor over simulated time.
//!
//! The server and multi-stream scenarios (parent MLPerf Inference spec,
//! arXiv 1911.02549) need overlapping in-flight queries, which the
//! one-query-at-a-time single-stream loop cannot express. This module
//! provides the two primitives they are built on:
//!
//! * [`EventQueue`] — a pending-event queue keyed by simulated
//!   nanoseconds with **stable tie-breaking**: events at the same instant
//!   pop in the order they were scheduled (time, then sequence id). Every
//!   pop order is therefore a pure function of the schedule calls, never
//!   of heap internals — the property the bit-determinism suite leans on.
//! * [`PoissonIssuer`] — seeded exponential inter-arrival sampling from
//!   the vendored RNG, so the server scenario's arrival process is
//!   reproducible from `(seed, qps)` alone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soc_sim::time::{SimDuration, SimInstant};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry: fires at `at`, ties broken by `seq`.
struct Pending<T> {
    at: SimInstant,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Pending<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Pending<T> {}

impl<T> PartialOrd for Pending<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Pending<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // (time, seq) first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic pending-event queue on the simulated clock.
///
/// Events pop in nondecreasing time order; events scheduled for the same
/// instant pop in scheduling order (the monotone sequence id breaks the
/// tie). The payload type carries whatever the scenario loop needs and
/// never participates in the ordering.
pub struct EventQueue<T> {
    heap: BinaryHeap<Pending<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `payload` to fire at `at`, returning the sequence id that
    /// orders it among same-instant events.
    pub fn schedule(&mut self, at: SimInstant, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Pending { at, seq, payload });
        seq
    }

    /// Removes and returns the earliest event as `(time, seq, payload)`.
    pub fn pop(&mut self) -> Option<(SimInstant, u64, T)> {
        self.heap.pop().map(|p| (p.at, p.seq, p.payload))
    }

    /// The fire time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimInstant> {
        self.heap.peek().map(|p| p.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// Seeded Poisson arrival-process sampler for the server scenario.
///
/// Inter-arrival gaps are exponentially distributed with rate `qps`:
/// `gap = -ln(1 - u) / qps` seconds for a uniform `u` in `[0, 1)` drawn
/// from the vendored [`StdRng`]. Identical `(seed, qps)` pairs always
/// produce the identical arrival sequence.
pub struct PoissonIssuer {
    rng: StdRng,
    qps: f64,
}

impl PoissonIssuer {
    /// Creates a sampler for the given seed and offered load.
    ///
    /// # Panics
    ///
    /// Panics if `qps` is not strictly positive and finite.
    #[must_use]
    pub fn new(seed: u64, qps: f64) -> Self {
        assert!(qps > 0.0 && qps.is_finite(), "offered load must be positive, got {qps}");
        PoissonIssuer { rng: StdRng::seed_from_u64(seed), qps }
    }

    /// Draws the next inter-arrival gap.
    pub fn next_interarrival(&mut self) -> SimDuration {
        let u: f64 = self.rng.gen();
        // u < 1.0 always (53-bit draw in [0, 1)), so ln(1-u) is finite.
        SimDuration::from_secs_f64(-(1.0 - u).ln() / self.qps)
    }

    /// Cumulative arrival instants (from the epoch) until both `min_count`
    /// arrivals have been generated **and** the last arrival is at or past
    /// `min_span` — the server analogue of the single-stream
    /// count-AND-duration run rule.
    ///
    /// # Panics
    ///
    /// Panics if `min_count` is zero.
    #[must_use]
    pub fn arrivals(&mut self, min_count: u64, min_span: SimDuration) -> Vec<SimInstant> {
        assert!(min_count > 0, "at least one arrival required");
        let mut out = Vec::with_capacity(min_count as usize);
        let mut t = SimInstant::EPOCH;
        while (out.len() as u64) < min_count
            || t.duration_since(SimInstant::EPOCH) < min_span
        {
            t += self.next_interarrival();
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimInstant::EPOCH + SimDuration::from_nanos(30), "c");
        q.schedule(SimInstant::EPOCH + SimDuration::from_nanos(10), "a");
        q.schedule(SimInstant::EPOCH + SimDuration::from_nanos(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimInstant::EPOCH + SimDuration::from_nanos(5);
        for i in 0..100u32 {
            q.schedule(t, i);
        }
        let popped: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimInstant::EPOCH + SimDuration::from_nanos(7), ());
        assert_eq!(q.len(), 1);
        let peeked = q.peek_time().unwrap();
        let (t, seq, ()) = q.pop().unwrap();
        assert_eq!(t, peeked);
        assert_eq!(seq, 0);
    }

    #[test]
    fn poisson_is_seeded() {
        let mut a = PoissonIssuer::new(9, 100.0);
        let mut b = PoissonIssuer::new(9, 100.0);
        let mut c = PoissonIssuer::new(10, 100.0);
        let ga: Vec<SimDuration> = (0..64).map(|_| a.next_interarrival()).collect();
        let gb: Vec<SimDuration> = (0..64).map(|_| b.next_interarrival()).collect();
        let gc: Vec<SimDuration> = (0..64).map(|_| c.next_interarrival()).collect();
        assert_eq!(ga, gb);
        assert_ne!(ga, gc);
    }

    #[test]
    fn poisson_mean_tracks_rate() {
        let mut p = PoissonIssuer::new(1, 1000.0);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| p.next_interarrival().as_nanos()).sum();
        let mean_us = total as f64 / n as f64 / 1e3;
        // Rate 1000 qps -> mean gap 1 ms = 1000 us, within a few percent.
        assert!((mean_us - 1000.0).abs() < 50.0, "mean gap {mean_us} us");
    }

    #[test]
    fn arrivals_meet_count_and_span() {
        let mut p = PoissonIssuer::new(3, 1000.0);
        let a = p.arrivals(100, SimDuration::from_millis(500));
        assert!(a.len() >= 100);
        // 100 arrivals at ~1ms gaps covers ~100ms << 500ms: span binds.
        let last = *a.last().unwrap();
        assert!(last.duration_since(SimInstant::EPOCH) >= SimDuration::from_millis(500));
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals nondecreasing");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_qps_rejected() {
        let _ = PoissonIssuer::new(1, 0.0);
    }
}
