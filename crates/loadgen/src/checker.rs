//! The submission checker: validates that a run's logs comply with the run
//! rules (paper Sections 4.3 and 6).
//!
//! "The application generates logs consistent with MLPerf rules, validated
//! by the submission checker."

use crate::log::{LogRecord, RunLog};
use crate::scenario::{Scenario, TestMode, TestSettings};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A rule violation found in a run log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// Log does not begin with a test-start record.
    MissingStart,
    /// Log does not end with a test-end record.
    MissingEnd,
    /// Fewer queries than the rules require.
    TooFewQueries {
        /// Queries found.
        got: u64,
        /// Queries required.
        required: u64,
    },
    /// Run shorter than the minimum duration.
    TooShort {
        /// Duration found (ns).
        got_ns: u64,
        /// Required duration (ns).
        required_ns: u64,
    },
    /// Offline burst smaller than required.
    ShortBurst {
        /// Samples found.
        got: u64,
        /// Samples required.
        required: u64,
    },
    /// The wrong seed was used (sample selection not reproducible).
    WrongSeed {
        /// Seed found.
        got: u64,
        /// Seed expected.
        expected: u64,
    },
    /// Query count in the end record disagrees with logged queries.
    InconsistentQueryCount {
        /// Count from the end record.
        declared: u64,
        /// Count of query records.
        logged: u64,
    },
    /// Multi-stream run with fewer frames than the rules require.
    TooFewFrames {
        /// Frames found.
        got: u64,
        /// Frames required.
        required: u64,
    },
    /// Multi-stream frame accounting broken: the lanes declared by the
    /// frame records do not add up to the query records in the segment.
    FrameAccountingMismatch {
        /// Sum of `streams` over the frame records.
        declared: u64,
        /// Count of query records.
        logged: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MissingStart => write!(f, "log missing test-start record"),
            Violation::MissingEnd => write!(f, "log missing test-end record"),
            Violation::TooFewQueries { got, required } => {
                write!(f, "only {got} queries, {required} required")
            }
            Violation::TooShort { got_ns, required_ns } => write!(
                f,
                "run lasted {:.2}s, {:.2}s required",
                *got_ns as f64 / 1e9,
                *required_ns as f64 / 1e9
            ),
            Violation::ShortBurst { got, required } => {
                write!(f, "offline burst of {got} samples, {required} required")
            }
            Violation::WrongSeed { got, expected } => {
                write!(f, "seed {got} used, {expected} expected")
            }
            Violation::InconsistentQueryCount { declared, logged } => {
                write!(f, "end record declares {declared} queries but {logged} were logged")
            }
            Violation::TooFewFrames { got, required } => {
                write!(f, "only {got} frames, {required} required")
            }
            Violation::FrameAccountingMismatch { declared, logged } => {
                write!(
                    f,
                    "frame records declare {declared} lane queries but {logged} were logged"
                )
            }
        }
    }
}

/// Checks a run log against the rules.
///
/// A log may contain several tests back to back (the app appends the
/// offline run after single-stream); each `TestStart..TestEnd` segment is
/// checked independently. Returns every violation found (empty =
/// compliant).
#[must_use]
pub fn check_log(log: &RunLog, settings: &TestSettings) -> Vec<Violation> {
    let records = log.records();
    if !matches!(records.first(), Some(LogRecord::TestStart { .. })) {
        return vec![Violation::MissingStart];
    }
    // Split into segments at TestStart records.
    let mut segments: Vec<RunLog> = Vec::new();
    for r in records {
        if matches!(r, LogRecord::TestStart { .. }) {
            segments.push(RunLog::new());
        }
        segments.last_mut().expect("starts with TestStart").push(r.clone());
    }
    segments
        .iter()
        .flat_map(|seg| check_segment(seg, settings))
        .collect()
}

fn check_segment(log: &RunLog, settings: &TestSettings) -> Vec<Violation> {
    let mut violations = Vec::new();
    let records = log.records();

    let Some(LogRecord::TestStart { scenario, mode, seed, .. }) = records.first() else {
        return vec![Violation::MissingStart];
    };
    if *seed != settings.seed {
        violations.push(Violation::WrongSeed { got: *seed, expected: settings.seed });
    }

    let Some(LogRecord::TestEnd { queries, duration_ns }) = records.last() else {
        violations.push(Violation::MissingEnd);
        return violations;
    };

    match (scenario, mode) {
        // Single-stream and server share the count-AND-duration rule:
        // both observe every query's completion individually (server's
        // latencies just include queueing delay).
        (Scenario::SingleStream | Scenario::Server, TestMode::Performance) => {
            if *queries < settings.min_query_count {
                violations.push(Violation::TooFewQueries {
                    got: *queries,
                    required: settings.min_query_count,
                });
            }
            if *duration_ns < settings.min_duration.as_nanos() {
                violations.push(Violation::TooShort {
                    got_ns: *duration_ns,
                    required_ns: settings.min_duration.as_nanos(),
                });
            }
            let logged = log.latencies_ns().len() as u64;
            if logged != *queries {
                violations.push(Violation::InconsistentQueryCount {
                    declared: *queries,
                    logged,
                });
            }
        }
        (Scenario::MultiStream, TestMode::Performance) => {
            let mut frames = 0u64;
            let mut declared_lanes = 0u64;
            for r in records {
                if let LogRecord::FrameComplete { streams, .. } = r {
                    frames += 1;
                    declared_lanes += streams;
                }
            }
            if frames < settings.min_frame_count {
                violations.push(Violation::TooFewFrames {
                    got: frames,
                    required: settings.min_frame_count,
                });
            }
            if *duration_ns < settings.min_duration.as_nanos() {
                violations.push(Violation::TooShort {
                    got_ns: *duration_ns,
                    required_ns: settings.min_duration.as_nanos(),
                });
            }
            let logged = log.latencies_ns().len() as u64;
            if declared_lanes != logged {
                violations.push(Violation::FrameAccountingMismatch {
                    declared: declared_lanes,
                    logged,
                });
            }
            if logged != *queries {
                violations.push(Violation::InconsistentQueryCount {
                    declared: *queries,
                    logged,
                });
            }
        }
        (Scenario::Offline, TestMode::Performance) => {
            let burst = records.iter().find_map(|r| match r {
                LogRecord::BurstComplete { samples, .. } => Some(*samples),
                _ => None,
            });
            match burst {
                Some(samples) if samples >= settings.offline_sample_count => {}
                Some(samples) => violations.push(Violation::ShortBurst {
                    got: samples,
                    required: settings.offline_sample_count,
                }),
                None => violations.push(Violation::ShortBurst {
                    got: 0,
                    required: settings.offline_sample_count,
                }),
            }
        }
        (_, TestMode::Accuracy) => {
            // Accuracy mode has no minimum-duration rule; coverage of the
            // whole dataset is enforced by the harness, which knows the
            // dataset length.
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_offline_scenario, run_single_stream};
    use crate::sut::ConstantSut;
    use soc_sim::time::{SimDuration, SimInstant};

    #[test]
    fn compliant_single_stream_passes() {
        let mut sut = ConstantSut::new(SimDuration::from_millis(10));
        let mut log = RunLog::new();
        let settings = TestSettings::default();
        let _ = run_single_stream(&mut sut, 1000, &settings, &mut log);
        assert!(check_log(&log, &settings).is_empty());
    }

    #[test]
    fn compliant_offline_passes() {
        let mut sut = ConstantSut::new(SimDuration::from_micros(50));
        let mut log = RunLog::new();
        let settings = TestSettings::default();
        let _ = run_offline_scenario(&mut sut, 1000, &settings, &mut log);
        assert!(check_log(&log, &settings).is_empty());
    }

    #[test]
    fn smoke_settings_flagged_against_real_rules() {
        // A run produced with scaled-down smoke settings must NOT pass the
        // real rules.
        let mut sut = ConstantSut::new(SimDuration::from_millis(1));
        let mut log = RunLog::new();
        let smoke = TestSettings::smoke_test();
        let _ = run_single_stream(&mut sut, 100, &smoke, &mut log);
        let real = TestSettings { seed: smoke.seed, ..TestSettings::default() };
        // (seed matched to isolate the count/duration violations)
        let violations = check_log(&log, &real);
        assert!(violations.iter().any(|v| matches!(v, Violation::TooFewQueries { .. })));
        assert!(violations.iter().any(|v| matches!(v, Violation::TooShort { .. })));
    }

    #[test]
    fn wrong_seed_detected() {
        let mut sut = ConstantSut::new(SimDuration::from_millis(10));
        let mut log = RunLog::new();
        let mut settings = TestSettings::default();
        let _ = run_single_stream(&mut sut, 1000, &settings, &mut log);
        settings.seed = 999; // auditor expects a different published seed
        let violations = check_log(&log, &settings);
        assert!(violations.iter().any(|v| matches!(v, Violation::WrongSeed { .. })));
    }

    #[test]
    fn truncated_log_detected() {
        let mut sut = ConstantSut::new(SimDuration::from_millis(10));
        let mut log = RunLog::new();
        let settings = TestSettings::default();
        let _ = run_single_stream(&mut sut, 1000, &settings, &mut log);
        // Drop the final record — "unedited logs" rule.
        let text = log.to_json_lines();
        let truncated: Vec<&str> = text.lines().collect();
        let truncated = truncated[..truncated.len() - 1].join("\n");
        let tampered = RunLog::from_json_lines(&truncated).unwrap();
        assert!(!check_log(&tampered, &settings).is_empty());
    }

    #[test]
    fn throttle_events_do_not_violate_rules() {
        // A log carrying throttle transitions is still compliant: the
        // checker counts only QueryComplete records against the declared
        // query count, and throttle events are observations, not queries.
        let settings = TestSettings::smoke_test();
        let mut log = RunLog::new();
        log.start(Scenario::SingleStream, TestMode::Performance, settings.seed, "t".into());
        let mut now = SimInstant::EPOCH;
        let latency = SimDuration::from_secs(1);
        for i in 0..settings.min_query_count {
            log.query(now, i as usize, latency);
            if i == 3 {
                log.throttle(now, 0.8, 72.0);
            }
            if i == 7 {
                log.throttle(now, 1.0, 64.0);
            }
            now += latency;
        }
        log.push(LogRecord::TestEnd {
            queries: settings.min_query_count,
            duration_ns: now.duration_since(SimInstant::EPOCH).as_nanos(),
        });
        assert!(check_log(&log, &settings).is_empty());

        // Round trip through the JSON-lines artifact preserves the events
        // and the verdict.
        let parsed = RunLog::from_json_lines(&log.to_json_lines()).unwrap();
        assert_eq!(parsed, log);
        assert!(check_log(&parsed, &settings).is_empty());
    }

    #[test]
    fn tampered_throttle_event_detectable() {
        // "Unedited logs": editing a throttle transition out of the stream
        // (or rewriting its temperature) survives the checker but not a
        // byte-level comparison against the original artifact.
        let mut log = RunLog::new();
        let settings = TestSettings::smoke_test();
        log.start(Scenario::SingleStream, TestMode::Performance, settings.seed, "t".into());
        log.throttle(SimInstant::EPOCH, 0.7, 75.0);
        log.push(LogRecord::TestEnd { queries: 0, duration_ns: 0 });
        let original = log.to_json_lines();

        // Tamper 1: rewrite the transition temperature.
        let rewritten = original.replace("75", "45");
        assert_ne!(RunLog::from_json_lines(&rewritten).unwrap(), log);

        // Tamper 2: drop the throttle line entirely.
        let dropped: Vec<&str> = original
            .lines()
            .filter(|l| !l.contains("ThrottleEvent"))
            .collect();
        assert_eq!(dropped.len(), original.lines().count() - 1);
        let parsed = RunLog::from_json_lines(&dropped.join("\n")).unwrap();
        assert_ne!(parsed, log, "edited log no longer matches the shipped artifact");
    }

    #[test]
    fn empty_log_fails() {
        assert_eq!(
            check_log(&RunLog::new(), &TestSettings::default()),
            vec![Violation::MissingStart]
        );
    }

    #[test]
    fn compliant_server_passes() {
        use crate::run::run_server;
        let mut sut = ConstantSut::new(SimDuration::from_millis(2));
        let mut log = RunLog::new();
        let settings = TestSettings::default();
        // 100 qps over >= 60 s satisfies both server thresholds.
        let _ = run_server(&mut sut, 1000, 100.0, &settings, &mut log);
        assert!(check_log(&log, &settings).is_empty());
    }

    #[test]
    fn server_smoke_run_rejected_under_real_rules() {
        use crate::run::run_server;
        let mut sut = ConstantSut::new(SimDuration::from_millis(2));
        let mut log = RunLog::new();
        let smoke = TestSettings::smoke_test();
        let _ = run_server(&mut sut, 100, 200.0, &smoke, &mut log);
        let real = TestSettings { seed: smoke.seed, ..TestSettings::default() };
        let violations = check_log(&log, &real);
        assert!(violations.iter().any(|v| matches!(v, Violation::TooFewQueries { .. })));
        assert!(violations.iter().any(|v| matches!(v, Violation::TooShort { .. })));
    }

    #[test]
    fn server_truncated_query_records_detected() {
        use crate::run::run_server;
        let mut sut = ConstantSut::new(SimDuration::from_millis(2));
        let mut log = RunLog::new();
        let settings = TestSettings::smoke_test();
        let _ = run_server(&mut sut, 100, 200.0, &settings, &mut log);
        // Drop one QueryComplete line: the declared count no longer adds
        // up.
        let text = log.to_json_lines();
        let mut dropped_one = false;
        let kept: Vec<&str> = text
            .lines()
            .filter(|l| {
                if !dropped_one && l.contains("QueryComplete") {
                    dropped_one = true;
                    false
                } else {
                    true
                }
            })
            .collect();
        assert!(dropped_one);
        let tampered = RunLog::from_json_lines(&kept.join("\n")).unwrap();
        let violations = check_log(&tampered, &settings);
        assert!(
            violations.iter().any(|v| matches!(v, Violation::InconsistentQueryCount { .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn compliant_multi_stream_passes() {
        use crate::run::run_multi_stream;
        let mut sut = ConstantSut::new(SimDuration::from_millis(2));
        let mut log = RunLog::new();
        let settings = TestSettings::default();
        let _ = run_multi_stream(&mut sut, 1000, 4, &settings, &mut log);
        assert!(check_log(&log, &settings).is_empty());
    }

    #[test]
    fn multi_stream_too_few_frames_detected() {
        let settings = TestSettings::smoke_test();
        let mut log = RunLog::new();
        log.start(Scenario::MultiStream, TestMode::Performance, settings.seed, "t".into());
        // Only half the required frames, each 2 lanes wide.
        let frames = settings.min_frame_count / 2;
        let mut now = SimInstant::EPOCH;
        for k in 0..frames {
            for lane in 0..2usize {
                log.query(now, lane, SimDuration::from_millis(1));
            }
            log.frame(k, 2, SimDuration::from_millis(1));
            now += settings.multi_stream_interval;
        }
        log.push(LogRecord::TestEnd {
            queries: frames * 2,
            duration_ns: settings.min_duration.as_nanos(),
        });
        let violations = check_log(&log, &settings);
        assert_eq!(
            violations,
            vec![Violation::TooFewFrames { got: frames, required: settings.min_frame_count }]
        );
    }

    #[test]
    fn multi_stream_frame_accounting_mismatch_detected() {
        use crate::run::run_multi_stream;
        let mut sut = ConstantSut::new(SimDuration::from_millis(1));
        let mut log = RunLog::new();
        let settings = TestSettings::smoke_test();
        let _ = run_multi_stream(&mut sut, 100, 3, &settings, &mut log);
        assert!(check_log(&log, &settings).is_empty(), "untampered run complies");
        // Inflate one frame's declared width: lanes no longer add up.
        let text = log.to_json_lines();
        let tampered_text = text.replacen("\"streams\":3", "\"streams\":4", 1);
        assert_ne!(text, tampered_text);
        let tampered = RunLog::from_json_lines(&tampered_text).unwrap();
        let violations = check_log(&tampered, &settings);
        assert!(
            violations.iter().any(|v| matches!(
                v,
                Violation::FrameAccountingMismatch { declared, logged }
                    if *declared == *logged + 1
            )),
            "{violations:?}"
        );
    }

    #[test]
    fn multi_stream_short_duration_detected() {
        let settings = TestSettings::smoke_test();
        let mut log = RunLog::new();
        log.start(Scenario::MultiStream, TestMode::Performance, settings.seed, "t".into());
        for k in 0..settings.min_frame_count {
            log.query(SimInstant::EPOCH, 0, SimDuration::from_millis(1));
            log.frame(k, 1, SimDuration::from_millis(1));
        }
        // Declared duration below the minimum.
        log.push(LogRecord::TestEnd {
            queries: settings.min_frame_count,
            duration_ns: settings.min_duration.as_nanos() / 2,
        });
        let violations = check_log(&log, &settings);
        assert_eq!(
            violations,
            vec![Violation::TooShort {
                got_ns: settings.min_duration.as_nanos() / 2,
                required_ns: settings.min_duration.as_nanos(),
            }]
        );
    }

    #[test]
    fn new_violations_display_and_round_trip() {
        let violations = vec![
            Violation::TooFewFrames { got: 3, required: 8 },
            Violation::FrameAccountingMismatch { declared: 12, logged: 9 },
        ];
        assert!(violations[0].to_string().contains("frames"));
        assert!(violations[1].to_string().contains("lane queries"));
        let json = serde_json::to_string(&violations).unwrap();
        let parsed: Vec<Violation> = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, violations);
    }

    #[test]
    fn combined_all_scenario_log_checked_per_segment() {
        use crate::run::{run_multi_stream, run_server};
        // The harness appends scenario segments into one log; each is
        // validated against its own rules.
        let settings = TestSettings::smoke_test();
        let mut log = RunLog::new();
        let mut sut = ConstantSut::new(SimDuration::from_millis(1));
        let _ = run_single_stream(&mut sut, 100, &settings, &mut log);
        let _ = run_offline_scenario(&mut sut, 100, &settings, &mut log);
        let _ = run_server(&mut sut, 100, 100.0, &settings, &mut log);
        let _ = run_multi_stream(&mut sut, 100, 2, &settings, &mut log);
        assert!(check_log(&log, &settings).is_empty());
        // A wrong seed is reported once per segment.
        let audited = TestSettings { seed: 12345, ..settings };
        let violations = check_log(&log, &audited);
        assert_eq!(
            violations.iter().filter(|v| matches!(v, Violation::WrongSeed { .. })).count(),
            4
        );
    }
}
