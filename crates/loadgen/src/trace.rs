//! Structured run traces: one span per query, with device telemetry.
//!
//! The [`crate::log::RunLog`] is the *compliance* artifact — the unedited
//! event stream a submission ships. A [`RunTrace`] is the *observability*
//! artifact: a per-query timeline (issue/complete sim-timestamps, sample
//! index, latency) annotated with what the simulated device was doing at
//! dispatch (DVFS level, die temperature, compute/transfer/overhead
//! split, engine occupancy). Traces explain *why* a score moved; they are
//! collected by passive sinks so that a traced run is bit-identical to an
//! untraced one.

use crate::scenario::{Scenario, TestMode};
use serde::{Deserialize, Serialize};

/// One scheduled stage of a query: which engine ran it and for how long.
///
/// The per-stage resolution is what lets trace exporters draw one timeline
/// track per SoC engine instead of one undifferentiated "compute" blob.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTelemetry {
    /// Engine name the stage occupied ("npu0", "gpu", ...).
    pub engine: String,
    /// Pure op execution time of the stage (ns).
    pub compute_ns: u64,
}

/// Device-side telemetry snapshot for one query, reported by the SUT via
/// [`crate::sut::SystemUnderTest::last_telemetry`].
///
/// All fields are plain numbers/strings so the trace schema is stable
/// regardless of which simulator (or real device shim) sits behind the
/// SUT trait.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTelemetry {
    /// DVFS frequency factor in effect at dispatch (1.0 = unthrottled).
    pub freq_factor: f64,
    /// Index into the DVFS operating-point ladder (0 = fastest).
    pub dvfs_level: usize,
    /// Die temperature at dispatch (°C).
    pub temperature_c: f64,
    /// Pure op execution time across all stages (ns).
    pub compute_ns: u64,
    /// Inter-engine tensor transfer time (ns).
    pub transfer_ns: u64,
    /// Launch + framework synchronization overhead (ns), including the
    /// fixed per-query dispatch cost.
    pub overhead_ns: u64,
    /// The per-engine runtime-launch share of `overhead_ns`.
    pub launch_ns: u64,
    /// The per-stage framework-synchronization share of `overhead_ns`.
    pub sync_ns: u64,
    /// Cumulative device energy after this query completed (joules).
    pub energy_j: f64,
    /// Per-stage engine occupancy, in schedule order.
    pub stages: Vec<StageTelemetry>,
}

impl QueryTelemetry {
    /// Whether the device was thermally/battery throttled at dispatch.
    #[must_use]
    pub fn is_throttled(&self) -> bool {
        self.freq_factor < 1.0
    }

    /// Names of the engines the query occupied, in stage order, deduped.
    #[must_use]
    pub fn engines(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for s in &self.stages {
            if !names.contains(&s.engine.as_str()) {
                names.push(&s.engine);
            }
        }
        names
    }
}

/// One query's span on the simulated timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpan {
    /// Zero-based issue order within the run.
    pub query_index: u64,
    /// Dataset sample index the query carried.
    pub sample_index: usize,
    /// Simulated issue timestamp (ns since run start). For server this is
    /// the query's Poisson arrival; the device may start it later.
    pub issue_ns: u64,
    /// Simulated dispatch timestamp (ns since run start): when the device
    /// actually began executing the query. Equals `issue_ns` for
    /// single-stream and multi-stream; for server it lags by the queueing
    /// delay.
    pub dispatch_ns: u64,
    /// Simulated completion timestamp (ns since run start).
    pub complete_ns: u64,
    /// Observed latency (ns); equals `complete_ns - issue_ns` (queueing
    /// delay included for server).
    pub latency_ns: u64,
    /// Device telemetry at dispatch, when the SUT reports it.
    pub telemetry: Option<QueryTelemetry>,
}

/// The offline scenario's single burst on the simulated timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstSpan {
    /// Burst start (ns since run start).
    pub start_ns: u64,
    /// Burst end (ns since run start).
    pub end_ns: u64,
    /// Samples processed in the burst.
    pub samples: u64,
}

/// A complete per-run trace: metadata plus the span timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    /// Scenario traced.
    pub scenario: Scenario,
    /// Mode traced.
    pub mode: TestMode,
    /// Sample-selection seed of the run.
    pub seed: u64,
    /// SUT description string.
    pub sut: String,
    /// Per-query spans (single-stream; empty for offline).
    pub spans: Vec<QuerySpan>,
    /// The burst span (offline only).
    pub burst: Option<BurstSpan>,
}

impl RunTrace {
    /// An empty trace shell; the run loop fills in metadata via
    /// [`RunTrace::begin`] and spans via the record methods.
    #[must_use]
    pub fn new() -> Self {
        RunTrace {
            scenario: Scenario::SingleStream,
            mode: TestMode::Performance,
            seed: 0,
            sut: String::new(),
            spans: Vec::new(),
            burst: None,
        }
    }

    /// Stamps the run metadata at test start.
    pub fn begin(&mut self, scenario: Scenario, mode: TestMode, seed: u64, sut: String) {
        self.scenario = scenario;
        self.mode = mode;
        self.seed = seed;
        self.sut = sut;
    }

    /// Appends one query span.
    pub fn record_span(&mut self, span: QuerySpan) {
        self.spans.push(span);
    }

    /// Records the offline burst.
    pub fn record_burst(&mut self, start_ns: u64, end_ns: u64, samples: u64) {
        self.burst = Some(BurstSpan { start_ns, end_ns, samples });
    }

    /// Number of query spans recorded.
    #[must_use]
    pub fn span_count(&self) -> u64 {
        self.spans.len() as u64
    }

    /// Queries issued while the device was throttled (requires telemetry).
    #[must_use]
    pub fn throttled_queries(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.telemetry.as_ref().is_some_and(QueryTelemetry::is_throttled))
            .count() as u64
    }

    /// Transitions from unthrottled to throttled dispatch along the span
    /// timeline (requires telemetry).
    #[must_use]
    pub fn throttle_events(&self) -> u64 {
        let mut events = 0;
        let mut was_throttled = false;
        for s in &self.spans {
            let now = s.telemetry.as_ref().is_some_and(QueryTelemetry::is_throttled);
            if now && !was_throttled {
                events += 1;
            }
            was_throttled = now;
        }
        events
    }

    /// Peak die temperature observed at any dispatch, when telemetry is
    /// present.
    #[must_use]
    pub fn peak_temperature_c(&self) -> Option<f64> {
        self.spans
            .iter()
            .filter_map(|s| s.telemetry.as_ref().map(|t| t.temperature_c))
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
    }

    /// Validates the structural trace invariants:
    ///
    /// 1. every span has `issue_ns <= dispatch_ns <= complete_ns` and a
    ///    latency equal to `complete_ns - issue_ns`,
    /// 2. single-stream spans do not overlap (each issues at or after the
    ///    previous completion) and arrive in issue order; server and
    ///    multi-stream spans may overlap but must be recorded in
    ///    nondecreasing dispatch order,
    /// 3. a burst, when present, has `start_ns <= end_ns`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), String> {
        let mut prev_complete = 0u64;
        let mut prev_dispatch = 0u64;
        for (i, s) in self.spans.iter().enumerate() {
            if s.issue_ns > s.dispatch_ns || s.dispatch_ns > s.complete_ns {
                return Err(format!(
                    "span {i}: timestamps out of order (issue {} dispatch {} complete {})",
                    s.issue_ns, s.dispatch_ns, s.complete_ns
                ));
            }
            if s.complete_ns - s.issue_ns != s.latency_ns {
                return Err(format!(
                    "span {i}: latency {} != complete - issue = {}",
                    s.latency_ns,
                    s.complete_ns - s.issue_ns
                ));
            }
            match self.scenario {
                Scenario::SingleStream => {
                    if s.issue_ns < prev_complete {
                        return Err(format!(
                            "span {i}: issued at {} before previous completion {}",
                            s.issue_ns, prev_complete
                        ));
                    }
                }
                Scenario::Server | Scenario::MultiStream => {
                    if s.dispatch_ns < prev_dispatch {
                        return Err(format!(
                            "span {i}: dispatched at {} before previous dispatch {}",
                            s.dispatch_ns, prev_dispatch
                        ));
                    }
                }
                Scenario::Offline => {}
            }
            prev_complete = s.complete_ns;
            prev_dispatch = s.dispatch_ns;
        }
        if let Some(b) = &self.burst {
            if b.start_ns > b.end_ns {
                return Err(format!("burst: start {} > end {}", b.start_ns, b.end_ns));
            }
        }
        Ok(())
    }

    /// The maximum number of spans simultaneously *executing* on the
    /// device — the peak overlap of the `[dispatch_ns, complete_ns)`
    /// windows. Single-stream traces report at most 1; a server trace
    /// never exceeds the scenario's concurrency bound (enforced by the
    /// loadgen property tests).
    #[must_use]
    pub fn max_concurrent(&self) -> u64 {
        // Sweep over +1 at dispatch / -1 at completion, completions first
        // at equal times (a slot freed at t is reusable at t).
        let mut edges: Vec<(u64, i64)> = Vec::with_capacity(self.spans.len() * 2);
        for s in &self.spans {
            edges.push((s.dispatch_ns, 1));
            edges.push((s.complete_ns, -1));
        }
        edges.sort_by_key(|&(t, delta)| (t, delta));
        let mut live = 0i64;
        let mut peak = 0i64;
        for (_, delta) in edges {
            live += delta;
            peak = peak.max(live);
        }
        peak.max(0) as u64
    }

    /// Serializes the trace to pretty JSON (the `--trace` artifact).
    ///
    /// # Panics
    ///
    /// Never for these types.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serializes")
    }

    /// Parses a serialized trace.
    ///
    /// # Errors
    ///
    /// Returns the JSON error for malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

impl Default for RunTrace {
    fn default() -> Self {
        RunTrace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(i: u64, issue: u64, complete: u64) -> QuerySpan {
        QuerySpan {
            query_index: i,
            sample_index: i as usize,
            issue_ns: issue,
            dispatch_ns: issue,
            complete_ns: complete,
            latency_ns: complete - issue,
            telemetry: None,
        }
    }

    fn telemetry(freq: f64, temp: f64) -> QueryTelemetry {
        QueryTelemetry {
            freq_factor: freq,
            dvfs_level: usize::from(freq < 1.0),
            temperature_c: temp,
            compute_ns: 100,
            transfer_ns: 0,
            overhead_ns: 10,
            launch_ns: 6,
            sync_ns: 2,
            energy_j: 0.5,
            stages: vec![StageTelemetry { engine: "npu".into(), compute_ns: 100 }],
        }
    }

    #[test]
    fn valid_trace_passes() {
        let mut t = RunTrace::new();
        t.record_span(span(0, 0, 5));
        t.record_span(span(1, 5, 11));
        assert!(t.validate().is_ok());
        assert_eq!(t.span_count(), 2);
    }

    #[test]
    fn overlapping_spans_rejected() {
        let mut t = RunTrace::new();
        t.record_span(span(0, 0, 10));
        t.record_span(span(1, 5, 15));
        let err = t.validate().unwrap_err();
        assert!(err.contains("before previous completion"), "{err}");
    }

    #[test]
    fn server_spans_may_overlap_but_dispatch_in_order() {
        let mut t = RunTrace::new();
        t.begin(Scenario::Server, TestMode::Performance, 1, "s".into());
        // Arrival 0 dispatches at 0, arrival 3 queues until 10.
        let mut a = span(0, 0, 10);
        a.dispatch_ns = 0;
        let mut b = span(1, 3, 18);
        b.dispatch_ns = 10;
        t.record_span(a);
        t.record_span(b);
        assert!(t.validate().is_ok());
        assert_eq!(t.max_concurrent(), 1, "back-to-back dispatches never overlap");
        // Out-of-order dispatch is still rejected.
        let mut c = span(2, 4, 9);
        c.dispatch_ns = 5;
        t.record_span(c);
        let err = t.validate().unwrap_err();
        assert!(err.contains("before previous dispatch"), "{err}");
    }

    #[test]
    fn dispatch_outside_span_rejected() {
        let mut t = RunTrace::new();
        t.begin(Scenario::Server, TestMode::Performance, 1, "s".into());
        let mut s = span(0, 5, 10);
        s.dispatch_ns = 2; // dispatched before arrival: impossible
        t.record_span(s);
        let err = t.validate().unwrap_err();
        assert!(err.contains("timestamps out of order"), "{err}");
    }

    #[test]
    fn max_concurrent_counts_executing_overlap() {
        let mut t = RunTrace::new();
        t.begin(Scenario::Server, TestMode::Performance, 1, "s".into());
        // Three spans executing [0,10), [2,8), [8,12): peak overlap 2.
        let mut a = span(0, 0, 10);
        a.dispatch_ns = 0;
        let mut b = span(1, 1, 8);
        b.dispatch_ns = 2;
        let mut c = span(2, 6, 12);
        c.dispatch_ns = 8;
        for s in [a, b, c] {
            t.record_span(s);
        }
        assert_eq!(t.max_concurrent(), 2);
        assert!(t.validate().is_ok());
        assert_eq!(RunTrace::new().max_concurrent(), 0);
    }

    #[test]
    fn inconsistent_latency_rejected() {
        let mut t = RunTrace::new();
        let mut s = span(0, 0, 10);
        s.latency_ns = 7;
        t.record_span(s);
        assert!(t.validate().is_err());
    }

    #[test]
    fn throttle_accounting() {
        let mut t = RunTrace::new();
        for (i, freq) in [1.0, 0.9, 0.9, 1.0, 0.8].iter().enumerate() {
            let mut s = span(i as u64, i as u64 * 10, i as u64 * 10 + 5);
            s.telemetry = Some(telemetry(*freq, 40.0 + i as f64));
            t.record_span(s);
        }
        assert_eq!(t.throttled_queries(), 3);
        assert_eq!(t.throttle_events(), 2, "two distinct entries into throttling");
        assert_eq!(t.peak_temperature_c(), Some(44.0));
    }

    #[test]
    fn engines_dedup_in_stage_order() {
        let mut t = telemetry(1.0, 40.0);
        t.stages = vec![
            StageTelemetry { engine: "npu".into(), compute_ns: 50 },
            StageTelemetry { engine: "gpu".into(), compute_ns: 20 },
            StageTelemetry { engine: "npu".into(), compute_ns: 30 },
        ];
        assert_eq!(t.engines(), vec!["npu", "gpu"]);
    }

    #[test]
    fn json_round_trip() {
        let mut t = RunTrace::new();
        t.begin(Scenario::Offline, TestMode::Performance, 7, "sut".into());
        t.record_burst(0, 1_000, 256);
        let parsed = RunTrace::from_json(&t.to_json()).unwrap();
        assert_eq!(parsed, t);
    }
}
