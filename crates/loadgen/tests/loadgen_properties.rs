//! Property tests over the LoadGen with heteroscedastic SUTs: the run
//! rules and percentile semantics must hold under arbitrary latency
//! distributions.

use loadgen::checker::check_log;
use loadgen::log::RunLog;
use loadgen::run::{
    performance_sample_set, run_accuracy, run_offline_scenario, run_single_stream,
};
use loadgen::scenario::TestSettings;
use loadgen::sut::SystemUnderTest;
use proptest::prelude::*;
use soc_sim::time::SimDuration;

/// A SUT whose latency varies per query from a fixed pattern (e.g. a
/// device alternating between cached and cold paths).
struct PatternSut {
    pattern_us: Vec<u64>,
    cursor: usize,
}

impl PatternSut {
    fn new(pattern_us: Vec<u64>) -> Self {
        assert!(!pattern_us.is_empty());
        PatternSut { pattern_us, cursor: 0 }
    }
}

impl SystemUnderTest for PatternSut {
    type Response = ();

    fn issue_query(&mut self, _sample: usize) -> (SimDuration, ()) {
        let us = self.pattern_us[self.cursor % self.pattern_us.len()];
        self.cursor += 1;
        (SimDuration::from_micros(us.max(1)), ())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn single_stream_always_rule_compliant(
        pattern in proptest::collection::vec(100u64..200_000, 1..16),
    ) {
        let mut sut = PatternSut::new(pattern);
        let mut log = RunLog::new();
        let settings = TestSettings::default();
        let r = run_single_stream(&mut sut, 1000, &settings, &mut log);
        prop_assert!(r.queries >= settings.min_query_count);
        prop_assert!(r.duration >= settings.min_duration);
        prop_assert!(check_log(&log, &settings).is_empty());
        // p90 bounded by the pattern's extremes.
        let lo = *sut.pattern_us.iter().min().unwrap() * 1_000;
        let hi = *sut.pattern_us.iter().max().unwrap() * 1_000;
        let lat = r.latency.as_ref().unwrap();
        prop_assert!(lat.p90_ns >= lo.max(1_000));
        prop_assert!(lat.p90_ns <= hi);
    }

    #[test]
    fn p90_dominates_median(
        pattern in proptest::collection::vec(100u64..50_000, 2..12),
    ) {
        let mut sut = PatternSut::new(pattern);
        let mut log = RunLog::new();
        let r = run_single_stream(&mut sut, 500, &TestSettings::smoke_test(), &mut log);
        let lat = r.latency.as_ref().unwrap();
        prop_assert!(lat.p90_ns >= lat.p50_ns);
        prop_assert!(lat.max_ns >= lat.p90_ns);
        prop_assert!(lat.min_ns <= lat.p50_ns);
    }

    #[test]
    fn offline_throughput_is_duration_consistent(
        per_sample_us in 10u64..5_000,
    ) {
        let mut sut = PatternSut::new(vec![per_sample_us]);
        let mut log = RunLog::new();
        let settings = TestSettings::default();
        let r = run_offline_scenario(&mut sut, 2048, &settings, &mut log);
        prop_assert_eq!(r.queries, settings.offline_sample_count);
        let implied = r.queries as f64 / r.duration.as_secs_f64();
        prop_assert!((implied / r.throughput_fps - 1.0).abs() < 1e-9);
        // A burst has no per-sample completion times.
        prop_assert!(r.latency.is_none());
    }

    #[test]
    fn sample_set_is_bounded_and_seed_stable(
        seed in 0u64..1_000,
        len in 1usize..5_000,
        n in 1u64..4_096,
    ) {
        let a = performance_sample_set(seed, len, n);
        prop_assert_eq!(a.len(), n as usize);
        prop_assert!(a.iter().all(|&i| i < len));
        // Same (seed, len, n) -> identical sequence.
        prop_assert_eq!(&a, &performance_sample_set(seed, len, n));
    }

    #[test]
    fn sample_set_draws_with_replacement(seed in 0u64..500) {
        // n == len independent uniform draws cover ~(1 - 1/e) = 63% of
        // the dataset. Without replacement coverage would be exactly 100%,
        // so this pins down the draw-with-replacement contract.
        let len = 1_000usize;
        let draws = performance_sample_set(seed, len, len as u64);
        let mut unique = draws;
        unique.sort_unstable();
        unique.dedup();
        let coverage = unique.len() as f64 / len as f64;
        prop_assert!((0.55..0.72).contains(&coverage), "coverage {}", coverage);
    }

    #[test]
    fn accuracy_mode_visits_each_sample_once(len in 1usize..700) {
        let mut sut = PatternSut::new(vec![50]);
        let mut log = RunLog::new();
        let r = run_accuracy(&mut sut, len, &TestSettings::smoke_test(), &mut log);
        prop_assert_eq!(r.predictions.len(), len);
        let mut seen: Vec<usize> = r.predictions.iter().map(|(i, ())| *i).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), len);
    }
}

#[test]
fn identical_seeds_produce_identical_logs() {
    let run = || {
        let mut sut = PatternSut::new(vec![900, 1_700, 2_500]);
        let mut log = RunLog::new();
        let _ = run_single_stream(&mut sut, 777, &TestSettings::smoke_test(), &mut log);
        log.to_json_lines()
    };
    assert_eq!(run(), run(), "the whole pipeline must be deterministic");
}
