//! Property tests over the discrete-event executor: the determinism and
//! ordering invariants the server and multi-stream scenarios are built on.

use loadgen::event::{EventQueue, PoissonIssuer};
use loadgen::run::{run_multi_stream_traced, run_server, run_server_traced};
use loadgen::scenario::TestSettings;
use loadgen::sut::ConstantSut;
use loadgen::trace::RunTrace;
use loadgen::RunLog;
use proptest::prelude::*;
use soc_sim::time::{SimDuration, SimInstant};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Events pop in nondecreasing time regardless of schedule order.
    #[test]
    fn events_pop_in_nondecreasing_time(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimInstant::EPOCH + SimDuration::from_nanos(t), i);
        }
        let mut prev = SimInstant::EPOCH;
        let mut popped = 0usize;
        while let Some((t, _seq, _payload)) = q.pop() {
            prop_assert!(t >= prev, "pop at {t:?} after {prev:?}");
            prev = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Events scheduled for the same instant pop in scheduling order: the
    /// sequence id is the tie-break.
    #[test]
    fn ties_break_by_sequence_id(
        times in proptest::collection::vec(0u64..16, 2..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimInstant::EPOCH + SimDuration::from_nanos(t), i);
        }
        let mut last_at_time: Option<(SimInstant, u64)> = None;
        while let Some((t, seq, payload)) = q.pop() {
            prop_assert_eq!(seq as usize, payload, "seq ids are assigned in schedule order");
            if let Some((prev_t, prev_seq)) = last_at_time {
                if prev_t == t {
                    prop_assert!(
                        seq > prev_seq,
                        "tie at {t:?}: seq {seq} popped after {prev_seq}"
                    );
                }
            }
            last_at_time = Some((t, seq));
        }
    }

    /// Identical (seed, qps) produce identical arrival sequences; a
    /// different seed diverges. Arrivals are strictly ordered in time.
    #[test]
    fn poisson_arrivals_are_seeded_and_ordered(
        seed in 0u64..1_000,
        qps_milli in 1u64..1_000_000,
        count in 1u64..256,
    ) {
        let qps = qps_milli as f64 / 1_000.0;
        let span = SimDuration::ZERO;
        let a = PoissonIssuer::new(seed, qps).arrivals(count, span);
        let b = PoissonIssuer::new(seed, qps).arrivals(count, span);
        prop_assert_eq!(&a, &b, "same seed must reproduce the arrival times");
        prop_assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals nondecreasing");
        let c = PoissonIssuer::new(seed.wrapping_add(1), qps).arrivals(count, span);
        prop_assert!(a != c, "different seed must diverge");
    }

    /// A server run never executes more queries simultaneously than the
    /// scenario's concurrency bound, at any offered load.
    #[test]
    fn server_in_flight_never_exceeds_concurrency(
        concurrency in 1u64..5,
        qps_x10 in 10u64..5_000,
        service_us in 50u64..20_000,
    ) {
        let mut settings = TestSettings::smoke_test();
        settings.min_query_count = 24;
        settings.server_concurrency = concurrency;
        let mut sut = ConstantSut::new(SimDuration::from_micros(service_us));
        let mut log = RunLog::new();
        let mut trace = RunTrace::new();
        let r = run_server_traced(
            &mut sut,
            64,
            qps_x10 as f64 / 10.0,
            &settings,
            &mut log,
            Some(&mut trace),
        );
        trace.validate().expect("server trace must validate");
        prop_assert_eq!(trace.span_count(), r.queries);
        prop_assert!(
            trace.max_concurrent() <= concurrency,
            "{} executing with bound {}",
            trace.max_concurrent(),
            concurrency
        );
    }

    /// Same-seed server reruns are byte-identical end to end (results and
    /// unedited logs), for any load/service combination.
    #[test]
    fn server_rerun_is_byte_identical(
        seed in 0u64..500,
        qps_x10 in 10u64..3_000,
        service_us in 50u64..20_000,
    ) {
        let mut settings = TestSettings::smoke_test();
        settings.min_query_count = 24;
        settings.seed = seed;
        let run = || {
            let mut sut = ConstantSut::new(SimDuration::from_micros(service_us));
            let mut log = RunLog::new();
            let r = run_server(&mut sut, 64, qps_x10 as f64 / 10.0, &settings, &mut log);
            (r, log.to_json_lines())
        };
        let (ra, la) = run();
        let (rb, lb) = run();
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(la, lb);
    }

    /// Multi-stream frame latencies are the max over the lanes, every
    /// lane of every frame is logged, and traced == untraced.
    #[test]
    fn multi_stream_accounting_holds(
        streams in 1u64..8,
        service_us in 50u64..20_000,
    ) {
        let settings = TestSettings::smoke_test();
        let mut sut = ConstantSut::new(SimDuration::from_micros(service_us));
        let mut log = RunLog::new();
        let mut trace = RunTrace::new();
        let r = run_multi_stream_traced(&mut sut, 64, streams, &settings, &mut log, Some(&mut trace));
        trace.validate().expect("multi-stream trace must validate");
        prop_assert_eq!(r.queries, settings.min_frame_count * streams);
        prop_assert_eq!(log.latencies_ns().len() as u64, r.queries);
        // Constant lanes: frame latency equals the service time exactly.
        let stats = r.latency.as_ref().unwrap();
        prop_assert_eq!(stats.p90_ns, service_us * 1_000);
        prop_assert!(loadgen::check_log(&log, &settings).is_empty());
    }
}
