//! Property tests over the run-trace layer: the invariants every trace
//! must satisfy regardless of the SUT's latency distribution — spans
//! never overlap in single-stream, issue precedes completion, the span
//! count equals the query count, and the offline burst accounts for the
//! whole throughput window.

use loadgen::log::RunLog;
use loadgen::run::{run_offline_scenario_traced, run_single_stream_traced};
use loadgen::scenario::TestSettings;
use loadgen::sut::SystemUnderTest;
use loadgen::trace::RunTrace;
use proptest::prelude::*;
use soc_sim::time::SimDuration;

/// A SUT cycling through a fixed latency pattern, with synthetic
/// telemetry so traced runs exercise the telemetry path too.
struct PatternSut {
    pattern_us: Vec<u64>,
    cursor: usize,
}

impl PatternSut {
    fn new(pattern_us: Vec<u64>) -> Self {
        assert!(!pattern_us.is_empty());
        PatternSut { pattern_us, cursor: 0 }
    }
}

impl SystemUnderTest for PatternSut {
    type Response = ();

    fn issue_query(&mut self, _sample: usize) -> (SimDuration, ()) {
        let us = self.pattern_us[self.cursor % self.pattern_us.len()];
        self.cursor += 1;
        (SimDuration::from_micros(us.max(1)), ())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn single_stream_spans_satisfy_invariants(
        pattern in proptest::collection::vec(100u64..200_000, 1..16),
        dataset_len in 1usize..2_000,
    ) {
        let mut sut = PatternSut::new(pattern);
        let mut log = RunLog::new();
        let mut trace = RunTrace::new();
        let settings = TestSettings::smoke_test();
        let r = run_single_stream_traced(&mut sut, dataset_len, &settings, &mut log, Some(&mut trace));

        // Structural invariants hold wholesale...
        prop_assert!(trace.validate().is_ok(), "{:?}", trace.validate());
        // ...and specifically: one span per query,
        prop_assert_eq!(trace.span_count(), r.queries);
        // every span's issue precedes its completion by its latency,
        for s in &trace.spans {
            prop_assert!(s.issue_ns <= s.complete_ns);
            prop_assert_eq!(s.complete_ns - s.issue_ns, s.latency_ns);
        }
        // spans never overlap and query indices are sequential,
        for (i, w) in trace.spans.windows(2).enumerate() {
            prop_assert!(w[0].complete_ns <= w[1].issue_ns,
                "span {i} overlaps its successor: {} > {}", w[0].complete_ns, w[1].issue_ns);
            prop_assert_eq!(w[1].query_index, w[0].query_index + 1);
        }
        // sample indices address the dataset,
        prop_assert!(trace.spans.iter().all(|s| s.sample_index < dataset_len));
        // and the timeline covers the measured duration.
        let last = trace.spans.last().unwrap();
        prop_assert_eq!(last.complete_ns, r.duration.as_nanos());
    }

    #[test]
    fn offline_burst_sums_to_throughput_window(
        per_sample_us in 10u64..5_000,
    ) {
        let mut sut = PatternSut::new(vec![per_sample_us]);
        let mut log = RunLog::new();
        let mut trace = RunTrace::new();
        let settings = TestSettings::smoke_test();
        let r = run_offline_scenario_traced(&mut sut, 512, &settings, &mut log, Some(&mut trace));

        prop_assert!(trace.validate().is_ok());
        let burst = trace.burst.as_ref().expect("offline records a burst");
        // The burst spans exactly the throughput window...
        prop_assert_eq!(burst.end_ns - burst.start_ns, r.duration.as_nanos());
        // ...covers every sample...
        prop_assert_eq!(burst.samples, r.queries);
        // ...and reproduces the reported throughput.
        let implied = burst.samples as f64 / ((burst.end_ns - burst.start_ns) as f64 / 1e9);
        prop_assert!((implied / r.throughput_fps - 1.0).abs() < 1e-9);
        // Offline is a burst, not per-query spans.
        prop_assert_eq!(trace.span_count(), 0);
    }

    #[test]
    fn tracing_does_not_change_results(
        pattern in proptest::collection::vec(100u64..100_000, 1..8),
    ) {
        let settings = TestSettings::smoke_test();
        let run = |trace: Option<&mut RunTrace>| {
            let mut sut = PatternSut::new(pattern.clone());
            let mut log = RunLog::new();
            let r = run_single_stream_traced(&mut sut, 500, &settings, &mut log, trace);
            (r, log.to_json_lines())
        };
        let (plain, plain_log) = run(None);
        let mut trace = RunTrace::new();
        let (traced, traced_log) = run(Some(&mut trace));
        // Bit-identical scores and identical unedited logs.
        prop_assert_eq!(plain.queries, traced.queries);
        prop_assert_eq!(plain.duration, traced.duration);
        let (a, b) = (plain.latency.as_ref().unwrap(), traced.latency.as_ref().unwrap());
        prop_assert_eq!(a.p90_ns, b.p90_ns);
        prop_assert_eq!(plain_log, traced_log);
    }
}

#[test]
fn trace_json_round_trips_through_files() {
    let mut sut = PatternSut::new(vec![900, 1_700, 2_500]);
    let mut log = RunLog::new();
    let mut trace = RunTrace::new();
    let _ = run_single_stream_traced(
        &mut sut,
        777,
        &TestSettings::smoke_test(),
        &mut log,
        Some(&mut trace),
    );
    let parsed = RunTrace::from_json(&trace.to_json()).unwrap();
    assert_eq!(parsed, trace, "serialization must be lossless");
}
